"""Fixture-based tests for the repro.lint invariant linter.

For every rule there is one known-bad and one known-good snippet, laid
out on disk the way the real tree is (``src/repro/...``) so the dotted
module-name matching is exercised for real.  The suite also checks the
suppression syntax, the CLI exit-code contract, and — the point of the
whole subsystem — that the repository itself lints clean.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import LintConfig, Violation, lint_paths, load_config
from repro.lint.config import config_from_mapping

REPO = Path(__file__).resolve().parent.parent
DEFAULT_CONFIG = config_from_mapping({})


def lint_snippet(
    tmp_path: Path,
    relpath: str,
    source: str,
    config: LintConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """Write ``source`` at ``tmp_path/relpath`` and lint the tree."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], config, root=tmp_path)


def rule_ids(violations: list[Violation]) -> set[str]:
    return {violation.rule for violation in violations}


# ---------------------------------------------------------------------------
# GT001 — no mutation of frame-typed inputs
# ---------------------------------------------------------------------------


GT001_BAD = """
    __all__ = ["clobber"]

    def clobber(frame: "LabeledFrame") -> None:
        frame.values[0, 0] = 1
        frame.labels = ()
        frame.values.sort()
"""

GT001_GOOD = """
    __all__ = ["project"]

    def project(frame: "LabeledFrame") -> "LabeledFrame":
        mask = frame.any_mask(frame.col_labels)
        out = frame.select_rows(mask)
        return out
"""


def test_gt001_flags_input_mutation(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/core/operators.py", GT001_BAD)
    gt001 = [v for v in violations if v.rule == "GT001"]
    assert len(gt001) == 3
    assert "immutable" in gt001[0].message


def test_gt001_accepts_functional_style(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/core/operators.py", GT001_GOOD)
    assert "GT001" not in rule_ids(violations)


def test_gt001_rebound_parameter_is_not_tracked(tmp_path: Path) -> None:
    source = """
        __all__ = ["shrink"]

        def shrink(frame: "LabeledFrame") -> "LabeledFrame":
            frame = frame.select_rows([])
            frame.values[0] = 1  # mutation of the local copy, not the input
            return frame
    """
    violations = lint_snippet(tmp_path, "src/repro/core/operators.py", source)
    assert "GT001" not in rule_ids(violations)


def test_gt001_ignores_modules_outside_scope(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/analysis/scratch.py", GT001_BAD)
    assert "GT001" not in rule_ids(violations)


# ---------------------------------------------------------------------------
# GT002 — vectorization of hot modules
# ---------------------------------------------------------------------------


GT002_BAD = """
    __all__ = ["total", "indexed", "comprehended"]

    def total(frame: "LabeledFrame") -> int:
        acc = 0
        for label, row in frame.iter_rows():
            acc += int(row.sum())
        return acc

    def indexed(frame: "LabeledFrame") -> int:
        acc = 0
        for i in range(frame.n_rows):
            acc += i
        return acc

    def comprehended(frame: "LabeledFrame") -> list:
        return [row for _, row in frame.iter_rows()]
"""

GT002_GOOD = """
    __all__ = ["total"]

    def total(frame: "LabeledFrame") -> int:
        return int(frame.values.sum())
"""


def test_gt002_flags_row_loops(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/core/fast.py", GT002_BAD)
    gt002 = [v for v in violations if v.rule == "GT002"]
    assert len(gt002) == 3
    assert "vectorized" in gt002[0].message


def test_gt002_accepts_whole_array_code(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/core/fast.py", GT002_GOOD)
    assert "GT002" not in rule_ids(violations)


def test_gt002_only_applies_to_hot_modules(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/datasets/loader.py", GT002_BAD)
    assert "GT002" not in rule_ids(violations)


# ---------------------------------------------------------------------------
# GT003 — error taxonomy
# ---------------------------------------------------------------------------


GT003_BAD = """
    __all__ = ["check"]

    def check(x: int) -> None:
        if x < 0:
            raise ValueError("x must be >= 0")
"""

GT003_GOOD = """
    from repro.errors import ValidationError

    __all__ = ["check"]

    def check(x: int) -> None:
        if x < 0:
            raise ValidationError("x must be >= 0")
"""


def test_gt003_flags_bare_builtin_raise(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/analysis/checks.py", GT003_BAD)
    gt003 = [v for v in violations if v.rule == "GT003"]
    assert len(gt003) == 1
    assert "ValueError" in gt003[0].message


def test_gt003_accepts_taxonomy_raise(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/analysis/checks.py", GT003_GOOD)
    assert "GT003" not in rule_ids(violations)


def test_gt003_reraise_and_custom_classes_allowed(tmp_path: Path) -> None:
    source = """
        __all__ = ["passthrough"]

        def passthrough() -> None:
            try:
                helper()
            except Exception:
                raise

        def helper() -> None:
            raise NotImplementedError
    """
    violations = lint_snippet(tmp_path, "src/repro/analysis/checks.py", source)
    assert "GT003" not in rule_ids(violations)


# ---------------------------------------------------------------------------
# GT004 — dependency hygiene
# ---------------------------------------------------------------------------


GT004_BAD = """
    import pandas as pd

    __all__ = ["load"]

    def load() -> "pd.DataFrame":
        return pd.DataFrame()
"""

GT004_GOOD = """
    import json

    import numpy as np

    from repro.errors import ValidationError

    __all__ = ["load"]

    def load() -> "np.ndarray":
        return np.zeros(1)
"""


def test_gt004_flags_third_party_import(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/frames/loader.py", GT004_BAD)
    gt004 = [v for v in violations if v.rule == "GT004"]
    assert len(gt004) == 1
    assert "pandas" in gt004[0].message


def test_gt004_accepts_numpy_stdlib_first_party(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/frames/loader.py", GT004_GOOD)
    assert "GT004" not in rule_ids(violations)


def test_gt004_outer_layers_may_use_third_party(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/interop/pandas_io.py", GT004_BAD)
    assert "GT004" not in rule_ids(violations)


# ---------------------------------------------------------------------------
# GT005 — public API declarations
# ---------------------------------------------------------------------------


GT005_BAD_MISSING = """
    def helper() -> int:
        return 1
"""

GT005_BAD_UNRESOLVED = """
    __all__ = ["helper", "ghost"]

    def helper() -> int:
        return 1
"""

GT005_GOOD = """
    __all__ = ["helper", "CONSTANT"]

    CONSTANT = 3

    def helper() -> int:
        return CONSTANT
"""


def test_gt005_flags_missing_all(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/olap/extras.py", GT005_BAD_MISSING)
    gt005 = [v for v in violations if v.rule == "GT005"]
    assert len(gt005) == 1
    assert "__all__" in gt005[0].message


def test_gt005_flags_unresolved_name(tmp_path: Path) -> None:
    violations = lint_snippet(
        tmp_path, "src/repro/olap/extras.py", GT005_BAD_UNRESOLVED
    )
    gt005 = [v for v in violations if v.rule == "GT005"]
    assert len(gt005) == 1
    assert "ghost" in gt005[0].message


def test_gt005_accepts_complete_all(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/olap/extras.py", GT005_GOOD)
    assert "GT005" not in rule_ids(violations)


def test_gt005_module_getattr_satisfies_resolution(tmp_path: Path) -> None:
    source = """
        __all__ = ["lazy_thing"]

        def __getattr__(name: str) -> object:
            raise AttributeError(name)
    """
    violations = lint_snippet(tmp_path, "src/repro/olap/extras.py", source)
    assert "GT005" not in rule_ids(violations)


def test_gt005_private_modules_exempt(tmp_path: Path) -> None:
    violations = lint_snippet(
        tmp_path, "src/repro/olap/_internal.py", GT005_BAD_MISSING
    )
    assert "GT005" not in rule_ids(violations)


# ---------------------------------------------------------------------------
# GT006 — no print in library code
# ---------------------------------------------------------------------------


GT006_BAD = """
    __all__ = ["report"]

    def report() -> None:
        print("done")
"""

GT006_GOOD = """
    import logging

    __all__ = ["report"]

    logger = logging.getLogger(__name__)

    def report() -> None:
        logger.info("done")
"""


def test_gt006_flags_print(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/olap/report.py", GT006_BAD)
    gt006 = [v for v in violations if v.rule == "GT006"]
    assert len(gt006) == 1
    assert "logging" in gt006[0].message


def test_gt006_accepts_logging(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/olap/report.py", GT006_GOOD)
    assert "GT006" not in rule_ids(violations)


def test_gt006_cli_modules_exempt(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/cli.py", GT006_BAD)
    assert "GT006" not in rule_ids(violations)


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


def test_line_suppression(tmp_path: Path) -> None:
    source = """
        __all__ = ["check"]

        def check() -> None:
            raise ValueError("known exception")  # lint: ignore[GT003]
    """
    violations = lint_snippet(tmp_path, "src/repro/analysis/checks.py", source)
    assert "GT003" not in rule_ids(violations)


def test_line_suppression_is_rule_specific(tmp_path: Path) -> None:
    source = """
        __all__ = ["check"]

        def check() -> None:
            raise ValueError("still flagged")  # lint: ignore[GT001]
    """
    violations = lint_snippet(tmp_path, "src/repro/analysis/checks.py", source)
    assert "GT003" in rule_ids(violations)


def test_file_suppression(tmp_path: Path) -> None:
    source = """
        # lint: ignore-file[GT005]

        def helper() -> int:
            return 1
    """
    violations = lint_snippet(tmp_path, "src/repro/olap/extras.py", source)
    assert "GT005" not in rule_ids(violations)


def test_bare_ignore_suppresses_all_rules(tmp_path: Path) -> None:
    source = """
        __all__ = ["check"]

        def check() -> None:
            raise ValueError("anything")  # lint: ignore
    """
    violations = lint_snippet(tmp_path, "src/repro/analysis/checks.py", source)
    assert violations == []


# ---------------------------------------------------------------------------
# Engine / config behaviour
# ---------------------------------------------------------------------------


def test_syntax_error_reported_as_gt000(tmp_path: Path) -> None:
    violations = lint_snippet(tmp_path, "src/repro/olap/broken.py", "def f(:\n")
    assert rule_ids(violations) == {"GT000"}


def test_config_select_subset(tmp_path: Path) -> None:
    config = config_from_mapping({"select": ["GT006"]})
    source = """
        def helper() -> None:
            print(1)
    """
    # missing __all__ (GT005) goes unreported; only the selected rule runs
    violations = lint_snippet(tmp_path, "src/repro/olap/report.py", source, config)
    assert rule_ids(violations) == {"GT006"}


def test_config_rejects_unknown_keys() -> None:
    with pytest.raises(ConfigurationError):
        config_from_mapping({"selekt": ["GT001"]})


def test_config_rejects_unknown_rule_ids(tmp_path: Path) -> None:
    config = config_from_mapping({"select": ["GT999"]})
    with pytest.raises(ConfigurationError):
        lint_paths([tmp_path], config, root=tmp_path)


def test_pyproject_overrides_defaults(tmp_path: Path) -> None:
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.repro-lint]\nselect = ["GT003"]\n'
        '[tool.repro-lint.GT003]\nmodules = ["repro.*"]\nexempt = ["repro.legacy"]\n'
    )
    config = load_config(pyproject)
    assert config.select == ("GT003",)
    assert config.rule_settings("GT003").exempt == ("repro.legacy",)
    # unspecified options keep their defaults
    assert "ValueError" in config.rule_settings("GT003").option("forbidden")


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------


def run_cli(*args: str, cwd: Path) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_absolute_paths_outside_root_still_match_rules(tmp_path: Path) -> None:
    """Module names anchor at the `src` segment wherever the tree lives,
    so linting an absolute path from an unrelated cwd still applies the
    `repro.*`-scoped rules (regression: they used to silently pass)."""
    target = tmp_path / "src" / "repro" / "analysis" / "checks.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(GT003_BAD))
    violations = lint_paths([tmp_path / "src"], DEFAULT_CONFIG, root=REPO)
    assert "GT003" in rule_ids(violations)


def test_cli_exit_one_on_violations(tmp_path: Path) -> None:
    target = tmp_path / "src" / "repro" / "olap" / "report.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(GT006_BAD))
    result = run_cli("src", cwd=tmp_path)
    assert result.returncode == 1
    assert "GT006" in result.stdout


def test_cli_exit_zero_on_clean_tree(tmp_path: Path) -> None:
    target = tmp_path / "src" / "repro" / "olap" / "report.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(GT006_GOOD))
    result = run_cli("src", cwd=tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_exit_two_on_bad_config(tmp_path: Path) -> None:
    result = run_cli("--config", "missing.toml", cwd=tmp_path)
    assert result.returncode == 2
    assert "error" in result.stderr


def test_cli_list_rules(tmp_path: Path) -> None:
    result = run_cli("--list-rules", cwd=tmp_path)
    assert result.returncode == 0
    for rule_id in ("GT001", "GT002", "GT003", "GT004", "GT005", "GT006"):
        assert rule_id in result.stdout


# ---------------------------------------------------------------------------
# The repository itself lints clean — the acceptance gate of the subsystem.
# ---------------------------------------------------------------------------


def test_repository_lints_clean() -> None:
    config = load_config(REPO / "pyproject.toml")
    violations = lint_paths(
        [REPO / "src", REPO / "tests"], config, root=REPO
    )
    assert violations == [], "\n".join(v.render() for v in violations)


def test_repository_lints_clean_via_cli() -> None:
    result = run_cli("src", cwd=REPO)
    assert result.returncode == 0, result.stdout + result.stderr
