"""Round-trip tests for CSV persistence of frames and tables."""

import pytest

from repro.frames import (
    LabeledFrame,
    Table,
    read_frame_csv,
    read_table_csv,
    write_frame_csv,
    write_table_csv,
)


class TestFrameCsv:
    def test_roundtrip_ints(self, tmp_path):
        frame = LabeledFrame(["u1", "u2"], [2000, 2001], [[1, 0], [0, 1]])
        path = tmp_path / "frame.csv"
        write_frame_csv(frame, path)
        loaded = read_frame_csv(path, col_parser=int, value_parser=int)
        assert loaded.row_labels == ("u1", "u2")
        assert loaded.col_labels == (2000, 2001)
        assert loaded.cell("u2", 2001) == 1

    def test_roundtrip_none_cells(self, tmp_path):
        frame = LabeledFrame(["u1"], ["t0", "t1"], [[3, None]])
        path = tmp_path / "frame.csv"
        write_frame_csv(frame, path)
        loaded = read_frame_csv(path, value_parser=int)
        assert loaded.cell("u1", "t0") == 3
        assert loaded.cell("u1", "t1") is None

    def test_roundtrip_empty_frame(self, tmp_path):
        frame = LabeledFrame.empty(["t0", "t1"])
        path = tmp_path / "frame.csv"
        write_frame_csv(frame, path)
        loaded = read_frame_csv(path)
        assert loaded.n_rows == 0
        assert loaded.col_labels == ("t0", "t1")

    def test_row_parser(self, tmp_path):
        frame = LabeledFrame([10, 20], ["t0"], [[1], [0]])
        path = tmp_path / "frame.csv"
        write_frame_csv(frame, path)
        loaded = read_frame_csv(path, row_parser=int, value_parser=int)
        assert loaded.row_labels == (10, 20)


class TestTableCsv:
    def test_roundtrip(self, tmp_path):
        table = Table(["id", "value"], [("u1", "3"), ("u2", "1")])
        path = tmp_path / "table.csv"
        write_table_csv(table, path)
        loaded = read_table_csv(path)
        assert loaded == table

    def test_roundtrip_with_parser(self, tmp_path):
        table = Table(["a"], [("1",), ("2",)])
        path = tmp_path / "table.csv"
        write_table_csv(table, path)
        loaded = read_table_csv(path, value_parser=int)
        assert loaded.rows == [(1,), (2,)]

    def test_none_roundtrip(self, tmp_path):
        table = Table(["a", "b"], [("x", None)])
        path = tmp_path / "table.csv"
        write_table_csv(table, path)
        loaded = read_table_csv(path)
        assert loaded.rows == [("x", None)]

    def test_empty_table(self, tmp_path):
        table = Table(["a", "b"])
        path = tmp_path / "table.csv"
        write_table_csv(table, path)
        loaded = read_table_csv(path)
        assert loaded.columns == ("a", "b")
        assert len(loaded) == 0
