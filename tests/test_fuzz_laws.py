"""Every registered law holds on seeded random graphs (fuzz smoke).

One pytest case per law keeps failures attributable: a red
``test_law_holds[evolution-partition]`` names the broken identity
directly, and the report carries the ``repro fuzz`` replay line.
"""

import pytest

from repro.testing import law_registry, run_fuzz
from repro.testing.oracle import DIFFERENTIAL_LAW_NAMES

pytestmark = pytest.mark.fuzz

LAW_NAMES = sorted(law_registry())


def test_registry_covers_paper_identities():
    # The tentpole promises ~15 metamorphic identities plus the
    # differential oracle laws.
    assert len(LAW_NAMES) >= 15
    assert set(DIFFERENTIAL_LAW_NAMES) <= set(LAW_NAMES)


def test_laws_carry_descriptions():
    for law in law_registry().values():
        assert law.name
        assert law.description
        assert isinstance(law.hostile_safe, bool)


@pytest.mark.parametrize("law_name", LAW_NAMES)
def test_law_holds(law_name, test_seed):
    report = run_fuzz(seed=test_seed, cases=24, laws=[law_name], shrink=False)
    assert report.ok, report.summary() + "".join(
        f"\n{failure}" for failure in report.failures
    )
