"""Unit tests for Interval and Timeline."""

import pytest

from repro.core import Interval, Timeline


class TestInterval:
    def test_point(self):
        interval = Interval.point(3)
        assert interval.is_point
        assert interval.length == 1

    def test_length(self):
        assert Interval(2, 5).length == 4

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Interval(-1, 0)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_indices(self):
        assert list(Interval(1, 3).indices()) == [1, 2, 3]

    def test_iter(self):
        assert list(Interval(0, 1)) == [0, 1]

    def test_contains_index(self):
        interval = Interval(2, 4)
        assert 2 in interval and 4 in interval
        assert 1 not in interval and 5 not in interval

    def test_contains_non_int(self):
        assert "x" not in Interval(0, 1)

    def test_contains_interval(self):
        assert Interval(0, 5).contains(Interval(2, 3))
        assert not Interval(2, 3).contains(Interval(0, 5))

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(2, 4))
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_precedes(self):
        assert Interval(0, 1).precedes(Interval(2, 3))
        assert not Interval(0, 2).precedes(Interval(2, 3))

    def test_extend_right(self):
        assert Interval(1, 2).extend_right() == Interval(1, 3)
        assert Interval(1, 2).extend_right(3) == Interval(1, 5)

    def test_extend_left(self):
        assert Interval(2, 3).extend_left() == Interval(1, 3)

    def test_extend_left_below_zero_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 1).extend_left()

    def test_ordering(self):
        assert Interval(0, 1) < Interval(0, 2) < Interval(1, 1)

    def test_str(self):
        assert str(Interval.point(2)) == "[2]"
        assert str(Interval(1, 4)) == "[1..4]"

    def test_hashable(self):
        assert len({Interval(0, 1), Interval(0, 1), Interval(0, 2)}) == 2


class TestTimeline:
    @pytest.fixture()
    def timeline(self):
        return Timeline([2000, 2001, 2002, 2003])

    def test_len_and_iter(self, timeline):
        assert len(timeline) == 4
        assert list(timeline) == [2000, 2001, 2002, 2003]

    def test_contains(self, timeline):
        assert 2001 in timeline
        assert 1999 not in timeline

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Timeline([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Timeline([2000, 2000])

    def test_index_of(self, timeline):
        assert timeline.index_of(2002) == 2

    def test_index_of_unknown(self, timeline):
        with pytest.raises(KeyError):
            timeline.index_of(1999)

    def test_label_at(self, timeline):
        assert timeline.label_at(0) == 2000

    def test_label_at_out_of_range(self, timeline):
        with pytest.raises(IndexError):
            timeline.label_at(4)

    def test_labels_for(self, timeline):
        assert timeline.labels_for(Interval(1, 2)) == (2001, 2002)

    def test_labels_for_out_of_range(self, timeline):
        with pytest.raises(IndexError):
            timeline.labels_for(Interval(2, 9))

    def test_interval_of(self, timeline):
        assert timeline.interval_of([2001, 2002]) == Interval(1, 2)

    def test_interval_of_unordered_input(self, timeline):
        assert timeline.interval_of([2002, 2001]) == Interval(1, 2)

    def test_interval_of_non_contiguous(self, timeline):
        with pytest.raises(ValueError):
            timeline.interval_of([2000, 2002])

    def test_interval_of_empty(self, timeline):
        with pytest.raises(ValueError):
            timeline.interval_of([])

    def test_span(self, timeline):
        assert timeline.span(2001, 2003) == (2001, 2002, 2003)

    def test_full_interval(self, timeline):
        assert timeline.full_interval() == Interval(0, 3)

    def test_consecutive_pairs(self, timeline):
        pairs = timeline.consecutive_pairs()
        assert len(pairs) == 3
        assert pairs[0] == (Interval.point(0), Interval.point(1))

    def test_equality(self, timeline):
        assert timeline == Timeline([2000, 2001, 2002, 2003])
        assert timeline != Timeline([2000])

    def test_equality_other_type(self, timeline):
        assert timeline.__eq__(5) is NotImplemented

    def test_repr(self, timeline):
        assert "2000" in repr(timeline)

    def test_string_labels(self):
        timeline = Timeline(["May", "Jun"])
        assert timeline.span("May", "Jun") == ("May", "Jun")
