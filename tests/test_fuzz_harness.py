"""The fuzz driver itself: reporting, skipping, shrinking, reproducers.

The centerpiece is the mutation check: deliberately corrupt one
aggregation engine and assert the differential oracle catches it,
shrinks the counterexample to a handful of nodes, and writes a
syntactically valid reproducer script.
"""

import pytest

import repro.core.fast as fast
from repro.core import AggregateGraph
from repro.errors import AggregationError, ConfigurationError
from repro.testing import (
    HOSTILE_EVERY,
    GraphSpec,
    random_temporal_graph,
    run_fuzz,
)

pytestmark = pytest.mark.fuzz


class TestRunFuzz:
    def test_smoke_run_is_clean(self, test_seed):
        report = run_fuzz(seed=test_seed, cases=16)
        assert report.ok
        assert report.checks > 0
        # Every HOSTILE_EVERY-th case is hostile, so some unsafe-law
        # checks must have been skipped.
        assert report.skipped > 0
        assert "OK" in report.summary()

    def test_law_selection(self, test_seed):
        report = run_fuzz(seed=test_seed, cases=4, laws=["union-commutes"])
        assert report.laws == ("union-commutes",)
        assert report.checks == 4

    def test_hostile_unsafe_law_skipped_on_hostile_case(self, test_seed):
        report = run_fuzz(
            seed=test_seed, cases=HOSTILE_EVERY, laws=["union-store-agrees"]
        )
        assert report.skipped == 1
        assert report.checks == HOSTILE_EVERY - 1

    def test_unknown_law_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fuzz(cases=1, laws=["no-such-law"])

    def test_zero_cases_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fuzz(cases=0)

    def test_deterministic_across_runs(self, test_seed):
        first = run_fuzz(seed=test_seed, cases=8)
        second = run_fuzz(seed=test_seed, cases=8)
        assert first == second


class TestErrorParity:
    def test_engines_fail_identically_on_dangling_edges(self, test_seed):
        graph = random_temporal_graph(
            GraphSpec(dangling_edges=2), seed=test_seed
        )
        for name, engine in fast.aggregation_engines().items():
            with pytest.raises(AggregationError):
                engine(graph, ["gender"], distinct=True)


def _corrupting(real_engine):
    """Wrap an engine with an off-by-one node-weight bug."""

    def engine(graph, attributes, distinct=True, times=None):
        result = real_engine(graph, attributes, distinct=distinct, times=times)
        weights = dict(result.node_weights)
        if weights:
            key = sorted(weights, key=repr)[0]
            weights[key] += 1
        return AggregateGraph(
            result.attributes, weights, result.edge_weights, result.distinct
        )

    return engine


class TestInjectedBug:
    """Acceptance check: a deliberately broken engine is caught & shrunk."""

    def test_bug_caught_shrunk_and_reproduced(
        self, test_seed, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(
            fast._ENGINES, "fast", _corrupting(fast._ENGINES["fast"])
        )
        report = run_fuzz(
            seed=test_seed,
            cases=12,
            laws=["engines-agree"],
            out_dir=tmp_path,
        )
        assert not report.ok

        smallest = min(report.failures, key=lambda f: f.n_nodes)
        assert smallest.n_nodes <= 5

        reproducer = report.failures[0].reproducer
        assert reproducer is not None and reproducer.exists()
        source = reproducer.read_text(encoding="utf-8")
        compile(source, str(reproducer), "exec")  # syntactically valid
        # Replaying the script under the still-corrupted engine must
        # report the violation (reproducers exit via SystemExit).
        with pytest.raises(SystemExit, match="law violated"):
            exec(compile(source, str(reproducer), "exec"), {})

    def test_relative_out_dir_is_pinned_to_launch_cwd(
        self, test_seed, monkeypatch, tmp_path
    ):
        # A cwd-relative out_dir must resolve where the run started, and
        # the reported reproducer paths must come back absolute so they
        # stay valid even if something chdirs afterwards.
        monkeypatch.setitem(
            fast._ENGINES, "fast", _corrupting(fast._ENGINES["fast"])
        )
        monkeypatch.chdir(tmp_path)
        report = run_fuzz(
            seed=test_seed,
            cases=12,
            laws=["engines-agree"],
            out_dir="repros",
            shrink=False,
        )
        assert not report.ok
        reproducer = report.failures[0].reproducer
        assert reproducer is not None
        assert reproducer.is_absolute()
        assert reproducer.is_relative_to(tmp_path / "repros")
        assert reproducer.exists()

    def test_reproducer_passes_once_bug_is_fixed(
        self, test_seed, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(
            fast._ENGINES, "fast", _corrupting(fast._ENGINES["fast"])
        )
        report = run_fuzz(
            seed=test_seed, cases=12, laws=["engines-agree"], out_dir=tmp_path
        )
        assert not report.ok
        source = report.failures[0].reproducer.read_text(encoding="utf-8")
        monkeypatch.undo()  # "fix" the engine
        with pytest.raises(SystemExit, match="law passed"):
            exec(compile(source, "<reproducer>", "exec"), {})
