"""Tests for the analysis metrics."""

import pytest

from repro.analysis import densification, homophily, stability_ratio, turnover
from repro.core import AggregateGraph, aggregate, aggregate_evolution, union


class TestHomophily:
    def test_paper_union_graph(self, paper_graph):
        agg = aggregate(union(paper_graph, ["t0", "t1"]), ["gender"])
        # Edges: (u1,u2) m->f, (u2,u3) f->f, (u1,u4) m->f, (u4,u2) f->f.
        assert homophily(agg) == 0.5

    def test_perfect_homophily(self):
        agg = AggregateGraph(
            ("g",), {("a",): 2}, {(("a",), ("a",)): 5}
        )
        assert homophily(agg) == 1.0

    def test_zero_homophily(self):
        agg = AggregateGraph(
            ("g",), {("a",): 1, ("b",): 1}, {(("a",), ("b",)): 5}
        )
        assert homophily(agg) == 0.0

    def test_edgeless_rejected(self):
        agg = AggregateGraph(("g",), {("a",): 1}, {})
        with pytest.raises(ValueError):
            homophily(agg)

    def test_weighted(self):
        agg = AggregateGraph(
            ("g",),
            {("a",): 1, ("b",): 1},
            {(("a",), ("a",)): 3, (("a",), ("b",)): 1},
        )
        assert homophily(agg) == 0.75


class TestTurnover:
    def test_paper_edges(self, paper_graph):
        evo = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        # St=1, Gr=1, Shr=2 -> churn 3/4.
        assert turnover(evo) == 0.75

    def test_paper_nodes(self, paper_graph):
        evo = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        # St=3, Gr=0, Shr=1 -> churn 1/4.
        assert turnover(evo, entity="nodes") == 0.25

    def test_bad_entity(self, paper_graph):
        evo = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        with pytest.raises(ValueError):
            turnover(evo, entity="triangles")

    def test_empty_rejected(self, paper_graph):
        evo = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        empty = type(evo)(
            attributes=evo.attributes,
            old_times=evo.old_times,
            new_times=evo.new_times,
            node_weights={},
            edge_weights={},
        )
        with pytest.raises(ValueError):
            turnover(empty)


class TestStabilityRatio:
    def test_edges_t0_t1(self, paper_graph):
        # t0 edges: 3; t1 edges: 2; common: 1; union: 4.
        assert stability_ratio(paper_graph, ["t0"], ["t1"]) == 0.25

    def test_nodes_t0_t1(self, paper_graph):
        # t0 nodes: u1-u4; t1 nodes: u1, u2, u4 -> 3/4.
        assert stability_ratio(paper_graph, ["t0"], ["t1"], entity="nodes") == 0.75

    def test_identical_windows(self, paper_graph):
        assert stability_ratio(paper_graph, ["t0"], ["t0"]) == 1.0

    def test_window_semantics_are_union(self, paper_graph):
        value = stability_ratio(paper_graph, ["t0", "t1"], ["t2"], entity="nodes")
        # Window nodes: {u1..u4} vs {u2, u4, u5}: common 2, union 5.
        assert value == pytest.approx(0.4)

    def test_bad_entity(self, paper_graph):
        with pytest.raises(ValueError):
            stability_ratio(paper_graph, ["t0"], ["t1"], entity="paths")


class TestDensification:
    def test_series_shape(self, paper_graph):
        series = densification(paper_graph)
        assert [t for t, _ in series] == ["t0", "t1", "t2"]
        assert series[0][1] == 0.75  # 3 edges / 4 nodes

    def test_dblp_densifies(self, small_dblp):
        series = densification(small_dblp)
        first = series[0][1]
        last = series[-1][1]
        assert last > first  # the Table 3 trend
