"""Tests for the evolution graph (Definition 2.7) and its aggregation."""

import pytest

from repro.core import (
    EvolutionWeights,
    aggregate_evolution,
    difference,
    evolution,
    intersection,
)


class TestEvolutionGraph:
    @pytest.fixture()
    def evo(self, paper_graph):
        return evolution(paper_graph, ["t0"], ["t1"])

    def test_components_match_operators(self, paper_graph, evo):
        assert set(evo.stable.edges) == set(
            intersection(paper_graph, ["t0"], ["t1"]).edges
        )
        assert set(evo.shrunk.edges) == set(
            difference(paper_graph, ["t0"], ["t1"]).edges
        )
        assert set(evo.grown.edges) == set(
            difference(paper_graph, ["t1"], ["t0"]).edges
        )

    def test_node_kinds(self, evo):
        kinds = evo.node_kinds()
        assert "stability" in kinds["u2"]
        assert kinds["u3"] == {"shrinkage"}
        # u1 remains but loses edge (u1,u4): both stable and in the
        # shrinkage component (Definition 2.5's edge clause).
        assert kinds["u1"] == {"stability", "shrinkage"}

    def test_edge_kinds_are_disjoint(self, evo):
        for kinds in evo.edge_kinds().values():
            assert len(kinds) == 1

    def test_counts(self, evo):
        assert evo.n_nodes == 4  # u1, u2, u3, u4
        assert evo.n_edges == 4

    def test_empty_side_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            evolution(paper_graph, [], ["t1"])

    def test_interval_windows(self, paper_graph):
        evo = evolution(paper_graph, ["t0", "t1"], ["t2"])
        assert evo.old_times == ("t0", "t1")
        assert set(evo.grown.nodes) >= {"u5"}


class TestEvolutionWeights:
    def test_total(self):
        weights = EvolutionWeights(stability=2, growth=1, shrinkage=3)
        assert weights.total == 6

    def test_ratio(self):
        weights = EvolutionWeights(stability=2, growth=1, shrinkage=1)
        assert weights.ratio("stability") == 0.5

    def test_ratio_empty(self):
        assert EvolutionWeights().ratio("growth") == 0.0

    def test_ratio_unknown_kind(self):
        with pytest.raises(ValueError):
            EvolutionWeights().ratio("churn")


class TestAggregateEvolution:
    @pytest.fixture()
    def evo_agg(self, paper_graph):
        return aggregate_evolution(
            paper_graph, ["t0"], ["t1"], ["gender", "publications"]
        )

    def test_figure4b_f1(self, evo_agg):
        """The paper's worked example: node (f, 1) has St=Gr=Shr=1."""
        weights = evo_agg.node(("f", 1))
        assert (weights.stability, weights.growth, weights.shrinkage) == (1, 1, 1)

    def test_attribute_change_scores_growth_and_shrinkage(self, evo_agg):
        # u1 goes (m,3) -> (m,1): old tuple shrinks, new tuple grows.
        assert evo_agg.node(("m", 3)).shrinkage == 1
        assert evo_agg.node(("m", 1)).growth == 1

    def test_f2_shrinks(self, evo_agg):
        # u4 goes (f,2) -> (f,1).
        weights = evo_agg.node(("f", 2))
        assert (weights.stability, weights.growth, weights.shrinkage) == (0, 0, 1)

    def test_missing_key_is_zero(self, evo_agg):
        assert evo_agg.node(("x", 0)).total == 0
        assert evo_agg.edge(("x",), ("y",)).total == 0

    def test_edge_weights(self, paper_graph):
        evo_agg = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        # (u1,u2) m->f stable; (u2,u3) f->f and (u1,u4) m->f shrink;
        # (u4,u2) f->f grows.
        assert evo_agg.edge(("m",), ("f",)).stability == 1
        assert evo_agg.edge(("m",), ("f",)).shrinkage == 1
        assert evo_agg.edge(("f",), ("f",)).shrinkage == 1
        assert evo_agg.edge(("f",), ("f",)).growth == 1

    def test_totals(self, paper_graph):
        evo_agg = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        totals = evo_agg.totals()
        # Gender appearances: t0 {u1:m,u2:f,u3:f,u4:f}, t1 {u1:m,u2:f,u4:f}.
        # Stable: u1, u2, u4 -> 3; shrink: u3 -> 1; growth: 0.
        assert (totals.stability, totals.growth, totals.shrinkage) == (3, 0, 1)

    def test_edge_totals(self, paper_graph):
        evo_agg = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        totals = evo_agg.edge_totals()
        assert (totals.stability, totals.growth, totals.shrinkage) == (1, 1, 2)

    def test_interval_old_window(self, paper_graph):
        evo_agg = aggregate_evolution(
            paper_graph, ["t0", "t1"], ["t2"], ["gender"]
        )
        # u5 (m) appears only at t2 -> growth for (m,).
        assert evo_agg.node(("m",)).growth == 1
        # u1 (m) exists in the old window but not at t2 -> shrinkage.
        assert evo_agg.node(("m",)).shrinkage == 1

    def test_empty_attributes_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate_evolution(paper_graph, ["t0"], ["t1"], [])

    def test_empty_window_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate_evolution(paper_graph, ["t0"], [], ["gender"])

    def test_consistency_with_event_counts(self, small_dblp):
        """For a static attribute, evolution aggregation matches the
        exploration event counter on every (event, tuple) pair."""
        from repro.exploration import EntityKind, EventCounter, EventType, Side

        evo_agg = aggregate_evolution(
            small_dblp,
            [small_dblp.timeline.labels[0]],
            [small_dblp.timeline.labels[1]],
            ["gender"],
        )
        for key in (("m",), ("f",)):
            counter = EventCounter(
                small_dblp, entity=EntityKind.NODES,
                attributes=["gender"], key=key,
            )
            old, new = Side.point(0), Side.point(1)
            assert counter.count(EventType.STABILITY, old, new) == evo_agg.node(key).stability
            assert counter.count(EventType.GROWTH, old, new) == evo_agg.node(key).growth
            assert counter.count(EventType.SHRINKAGE, old, new) == evo_agg.node(key).shrinkage
