"""Tests for the serving layer: normalizer, result cache, planner,
server, workload driver, and session integration."""

import pytest

from repro import GraphTempoSession
from repro.core import aggregate, union
from repro.core.operators import presence_signature
from repro.core.updates import SnapshotUpdate
from repro.errors import ConfigurationError, ValidationError
from repro.obs.metrics import get_metrics
from repro.query import run_query
from repro.query.evaluator import QueryBindingError, evaluate
from repro.query.parser import parse
from repro.serving import (
    QueryServer,
    ResultCache,
    mixed_queries,
    normalize_query,
    percentile,
    plan_query,
    run_workload,
)
from repro.streaming import StreamingStore


def _key(graph, text):
    return normalize_query(graph, parse(text)).cache_key


def _same_result(served, naive):
    if hasattr(served, "diff"):
        assert not served.diff(naive), served.diff(naive)
    else:
        assert presence_signature(served) == presence_signature(naive)


UPDATE = SnapshotUpdate(
    time="t3",
    nodes={
        "u1": {"publications": 3},
        "u2": {"publications": 1},
        "u6": {"publications": 2},
    },
    static={"u6": {"gender": "f"}},
    edges=[("u1", "u2"), ("u2", "u6")],
)


class TestNormalize:
    def test_union_window_order_folds(self, paper_graph):
        assert _key(
            paper_graph, "aggregate gender all over union [t1], [t0]"
        ) == _key(paper_graph, "aggregate gender all over union [t0], [t1]")

    def test_single_point_project_is_union(self, paper_graph):
        assert _key(paper_graph, "project [t1]") == _key(
            paper_graph, "union [t1]"
        )

    def test_multi_point_project_stays_project(self, paper_graph):
        assert _key(paper_graph, "project [t0..t1]") != _key(
            paper_graph, "union [t0..t1]"
        )

    def test_intersection_commutes(self, paper_graph):
        assert _key(paper_graph, "intersection [t1], [t0]") == _key(
            paper_graph, "intersection [t0], [t1]"
        )

    def test_difference_keeps_order(self, paper_graph):
        assert _key(paper_graph, "difference [t1], [t0]") != _key(
            paper_graph, "difference [t0], [t1]"
        )

    def test_attribute_order_canonicalized(self, paper_graph):
        forward = normalize_query(
            paper_graph,
            parse("aggregate gender, publications all over union [t0]"),
        )
        swapped = normalize_query(
            paper_graph,
            parse("aggregate publications, gender all over union [t0]"),
        )
        assert forward.cache_key == swapped.cache_key
        assert forward.output != swapped.output
        assert not forward.needs_permutation
        assert swapped.needs_permutation

    def test_span_and_list_windows_fold(self, paper_graph):
        assert _key(
            paper_graph, "aggregate gender all over union [t0..t1]"
        ) == _key(paper_graph, "aggregate gender all over union [t0], [t1]")

    def test_unknown_time_label_raises_binding_error(self, paper_graph):
        with pytest.raises(QueryBindingError):
            normalize_query(paper_graph, parse("union [t9]"))

    def test_unknown_attribute_kept_as_written(self, paper_graph):
        normalized = normalize_query(
            paper_graph, parse("aggregate height all over union [t0]")
        )
        assert normalized.attributes == ("height",)


class TestResultCache:
    def test_hit_and_miss(self):
        cache = ResultCache(capacity=4)
        assert cache.get((0, ("a",))) is None
        cache.put((0, ("a",)), "value")
        assert cache.get((0, ("a",))) == "value"

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put((0, ("a",)), 1)
        cache.put((0, ("b",)), 2)
        cache.get((0, ("a",)))  # refresh a; b becomes LRU
        cache.put((0, ("c",)), 3)
        assert cache.get((0, ("b",))) is None
        assert cache.get((0, ("a",))) == 1
        assert cache.get((0, ("c",))) == 3

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put((0, ("a",)), 1)
        assert cache.get((0, ("a",))) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache(capacity=-1)

    def test_first_put_wins(self):
        cache = ResultCache(capacity=4)
        first = cache.put((0, ("a",)), "first")
        second = cache.put((0, ("a",)), "second")
        assert first == "first"
        assert second == "first"

    def test_invalidate_before_drops_older_versions(self):
        cache = ResultCache(capacity=8)
        cache.put((0, ("a",)), 1)
        cache.put((1, ("a",)), 2)
        cache.put((2, ("a",)), 3)
        assert cache.invalidate_before(2) == 2
        assert cache.get((0, ("a",))) is None
        assert cache.get((1, ("a",))) is None
        assert cache.get((2, ("a",))) == 3

    def test_clear(self):
        cache = ResultCache(capacity=8)
        cache.put((0, ("a",)), 1)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestPlanner:
    @pytest.fixture()
    def server(self, paper_graph):
        return QueryServer(paper_graph)

    def _plan(self, server, text):
        normalized = normalize_query(server.graph, parse(text))
        return plan_query(server.graph, server.cube, normalized)

    def test_cold_aggregate_plans_base(self, server):
        plan = self._plan(server, "aggregate gender all over union [t0]")
        assert plan.route == "base"
        assert plan.cube_route is not None

    def test_warm_aggregate_plans_exact(self, server):
        server.serve("aggregate gender all over union [t0]")
        plan = self._plan(server, "aggregate gender all over union [t0]")
        assert plan.route == "exact"
        assert plan.cost == 0.0

    def test_superset_enables_rollup(self, server):
        server.cube.materialize(["gender", "publications"], times=["t0"])
        plan = self._plan(server, "aggregate gender all over union [t0]")
        assert plan.route == "rollup"
        assert plan.cube_route.source == ("gender", "publications")

    def test_per_point_enables_time_sum(self, server):
        server.cube.materialize(["gender"], per_time_point=True)
        plan = self._plan(server, "aggregate gender all over union [t0..t2]")
        assert plan.route == "time_sum"

    def test_multi_point_project_plans_base(self, server):
        plan = self._plan(server, "aggregate gender all over project [t0..t2]")
        assert plan.route == "base"
        assert plan.cube_route is None

    def test_evolution_and_operator_plan_base(self, server):
        assert self._plan(server, "evolution [t0] -> [t1] by gender").route == "base"
        assert self._plan(server, "union [t0], [t1]").route == "base"

    def test_describe_mentions_route(self, server):
        plan = self._plan(server, "aggregate gender all over union [t0]")
        assert "base" in plan.describe()


class TestServer:
    def test_mixed_parity_cold_and_cached(self, paper_graph):
        server = QueryServer(paper_graph)
        for text in mixed_queries(paper_graph, ["gender", "publications"]):
            naive = run_query(paper_graph, text)
            _same_result(server.serve(text).result, naive)
            again = server.serve(text)
            assert again.route == "cache"
            assert again.cached
            _same_result(again.result, naive)

    def test_permuted_attributes_share_entry_bit_exactly(self, paper_graph):
        server = QueryServer(paper_graph)
        server.serve("aggregate gender, publications all over union [t0..t1]")
        swapped = server.serve(
            "aggregate publications, gender all over union [t0..t1]"
        )
        assert swapped.route == "cache"  # same canonical entry
        naive = run_query(
            paper_graph, "aggregate publications, gender all over union [t0..t1]"
        )
        _same_result(swapped.result, naive)
        assert swapped.result.attributes == ("publications", "gender")

    def test_permuted_evolution_bit_exact(self, paper_graph):
        server = QueryServer(paper_graph)
        server.serve("evolution [t0] -> [t1] by gender, publications")
        swapped = server.serve(
            "evolution [t0] -> [t1] by publications, gender"
        )
        assert swapped.route == "cache"
        naive = run_query(
            paper_graph, "evolution [t0] -> [t1] by publications, gender"
        )
        _same_result(swapped.result, naive)

    def test_commuted_windows_share_entry(self, paper_graph):
        server = QueryServer(paper_graph)
        server.serve("aggregate gender all over union [t0], [t1]")
        assert (
            server.serve("aggregate gender all over union [t1], [t0]").route
            == "cache"
        )
        assert len(server.cache) == 1

    def test_follows_streaming_store(self, paper_graph):
        store = StreamingStore(paper_graph)
        with QueryServer(store) as server:
            text = "aggregate gender all over union [t0..t2]"
            before = server.serve(text)
            assert before.version == 0
            store.append_snapshot(UPDATE)
            assert server.version == 1
            after = server.serve("aggregate gender all over union [t0..t3]")
            assert after.version == 1
            naive = run_query(
                store.graph, "aggregate gender all over union [t0..t3]"
            )
            _same_result(after.result, naive)

    def test_append_evicts_superseded_entries(self, paper_graph):
        store = StreamingStore(paper_graph)
        with QueryServer(store) as server:
            server.serve("aggregate gender all over union [t0]")
            assert len(server.cache) == 1
            store.append_snapshot(UPDATE)
            assert len(server.cache) == 0

    def test_close_stops_following(self, paper_graph):
        store = StreamingStore(paper_graph)
        server = QueryServer(store)
        server.close()
        server.close()  # idempotent
        store.append_snapshot(UPDATE)
        assert server.version == 0

    def test_rebind_bare_graph_bumps_version(self, paper_graph):
        server = QueryServer(paper_graph)
        assert server.version == 0
        new_version = server.rebind(paper_graph)
        assert new_version == 1
        assert server.version == 1

    def test_adopted_cube_must_match_graph(self, paper_graph, tiny_graph):
        from repro.olap import TemporalGraphCube

        with pytest.raises(ConfigurationError):
            QueryServer(paper_graph, cube=TemporalGraphCube(tiny_graph))

    def test_explain_does_not_execute_or_cache(self, paper_graph):
        server = QueryServer(paper_graph)
        text = "aggregate gender all over union [t0]"
        explanation = server.explain(text)
        assert "miss" in explanation and "base" in explanation
        assert len(server.cache) == 0
        server.serve(text)
        assert "hit" in server.explain(text)

    def test_serving_metrics_counted(self, paper_graph):
        metrics = get_metrics()
        before = dict(metrics.snapshot()["counters"])
        server = QueryServer(paper_graph)
        text = "aggregate gender all over union [t0]"
        server.serve(text)
        server.serve(text)
        counters = metrics.snapshot()["counters"]

        def delta(name):
            return counters.get(name, 0) - before.get(name, 0)

        assert delta("serving.queries") == 2
        assert delta("serving.cache.misses") == 1
        assert delta("serving.cache.hits") == 1
        assert delta("serving.route.cache") == 1

    def test_negative_parse_capacity_rejected(self, paper_graph):
        with pytest.raises(ConfigurationError):
            QueryServer(paper_graph, parse_capacity=-1)

    def test_query_returns_bare_result(self, paper_graph):
        server = QueryServer(paper_graph)
        result = server.query("aggregate gender all over union [t0]")
        naive = run_query(paper_graph, "aggregate gender all over union [t0]")
        _same_result(result, naive)


class TestWorkload:
    def test_report_shape(self, paper_graph):
        server = QueryServer(paper_graph)
        report = run_workload(
            server.serve,
            mixed_queries(paper_graph, ["gender"]),
            requests=24,
            threads=3,
        )
        assert report.requests == 24
        assert report.threads == 3
        assert report.qps > 0
        assert report.p50_ms <= report.p99_ms
        assert "QPS" in report.describe()

    def test_empty_queries_rejected(self):
        with pytest.raises(ValidationError):
            run_workload(lambda text: text, [], requests=1)

    def test_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            run_workload(lambda text: text, ["q"], requests=0)
        with pytest.raises(ConfigurationError):
            run_workload(lambda text: text, ["q"], requests=1, threads=0)

    def test_worker_error_propagates(self):
        def boom(text):
            raise ValidationError("no")

        with pytest.raises(ValidationError):
            run_workload(boom, ["q"], requests=4, threads=2)

    def test_threads_capped_by_requests(self):
        report = run_workload(lambda text: text, ["q"], requests=2, threads=8)
        assert report.threads == 2

    def test_percentile(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        with pytest.raises(ValidationError):
            percentile([], 50)

    def test_mixed_queries_need_attributes(self, paper_graph):
        with pytest.raises(ValidationError):
            mixed_queries(paper_graph, [])


class TestSessionServing:
    def test_query_parity_and_caching(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        text = "aggregate gender all over union [t0], [t1]"
        _same_result(session.query(text), run_query(paper_graph, text))
        assert session.serve(text).route == "cache"

    def test_materialized_cube_serves_queries(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        session.materialize(["gender"], per_time_point=True)
        served = session.serve("aggregate gender all over union [t0..t2]")
        assert served.route == "time_sum"
        direct = aggregate(
            union(paper_graph, ("t0", "t1", "t2")), ["gender"], distinct=False
        )
        _same_result(served.result, direct)

    def test_append_refreshes_serving(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        before = session.serve("aggregate gender all over union [t0..t2]")
        assert before.version == 0
        session.append(UPDATE)
        served = session.serve("aggregate gender all over union [t0..t3]")
        assert served.version == 1
        naive = run_query(
            session.graph, "aggregate gender all over union [t0..t3]"
        )
        _same_result(served.result, naive)
        # The refreshed server shares the refreshed session cube.
        assert session.serving.cube is session.cube

    def test_serve_expr_matches_evaluate(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        expr = parse("difference [t2], [t0]")
        served = session.serving.serve_expr(expr)
        _same_result(served.result, evaluate(paper_graph, expr))
