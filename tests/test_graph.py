"""Unit tests for TemporalGraph and TemporalGraphBuilder."""

import numpy as np
import pytest

from repro.core import (
    GraphIntegrityError,
    TemporalGraph,
    TemporalGraphBuilder,
    Timeline,
)
from repro.frames import LabeledFrame


def build_simple() -> TemporalGraph:
    builder = TemporalGraphBuilder(
        ["t0", "t1"], static=["gender"], varying=["pubs"]
    )
    builder.add_node("a", {"gender": "m"})
    builder.add_node("b", {"gender": "f"})
    builder.set_node_presence("a", "t0", pubs=1)
    builder.set_node_presence("a", "t1", pubs=2)
    builder.set_node_presence("b", "t0", pubs=3)
    builder.add_edge("a", "b", ["t0"])
    return builder.build()


class TestBuilder:
    def test_builds_graph(self):
        graph = build_simple()
        assert graph.n_nodes == 2
        assert graph.n_edges == 1

    def test_presence_recorded(self):
        graph = build_simple()
        assert graph.node_times("a") == ("t0", "t1")
        assert graph.node_times("b") == ("t0",)

    def test_varying_values(self):
        graph = build_simple()
        assert graph.attribute_value("a", "pubs", "t1") == 2
        assert graph.attribute_value("b", "pubs", "t1") is None

    def test_static_values(self):
        graph = build_simple()
        assert graph.attribute_value("b", "gender") == "f"

    def test_presence_before_add_node(self):
        builder = TemporalGraphBuilder(["t0"])
        with pytest.raises(KeyError):
            builder.set_node_presence("ghost", "t0")

    def test_unknown_static_attribute(self):
        builder = TemporalGraphBuilder(["t0"], static=["gender"])
        with pytest.raises(KeyError):
            builder.add_node("a", {"height": 3})

    def test_unknown_varying_attribute(self):
        builder = TemporalGraphBuilder(["t0"])
        builder.add_node("a")
        with pytest.raises(KeyError):
            builder.set_node_presence("a", "t0", pubs=1)

    def test_unknown_time(self):
        builder = TemporalGraphBuilder(["t0"])
        builder.add_node("a")
        with pytest.raises(KeyError):
            builder.set_node_presence("a", "t9")

    def test_self_loop_rejected_by_default(self):
        builder = TemporalGraphBuilder(["t0"])
        builder.add_node("a")
        with pytest.raises(ValueError):
            builder.add_edge("a", "a")

    def test_self_loop_allowed_when_opted_in(self):
        builder = TemporalGraphBuilder(["t0"], allow_self_loops=True)
        builder.add_node("a")
        builder.set_node_presence("a", "t0")
        builder.add_edge("a", "a", ["t0"])
        assert builder.build().n_edges == 1

    def test_edge_unknown_endpoint(self):
        builder = TemporalGraphBuilder(["t0"])
        builder.add_node("a")
        with pytest.raises(KeyError):
            builder.add_edge("a", "b")

    def test_edge_requires_active_endpoints(self):
        builder = TemporalGraphBuilder(["t0", "t1"])
        builder.add_node("a")
        builder.add_node("b")
        builder.set_node_presence("a", "t0")
        builder.set_node_presence("b", "t1")
        with pytest.raises(ValueError):
            builder.add_edge("a", "b", ["t0"])

    def test_set_edge_presence_requires_existing_edge(self):
        builder = TemporalGraphBuilder(["t0"])
        builder.add_node("a")
        builder.add_node("b")
        with pytest.raises(KeyError):
            builder.set_edge_presence("a", "b", "t0")

    def test_re_add_node_merges_static(self):
        builder = TemporalGraphBuilder(["t0"], static=["gender"])
        builder.add_node("a", {"gender": "m"})
        builder.add_node("a", {"gender": "f"})
        builder.set_node_presence("a", "t0")
        assert builder.build().attribute_value("a", "gender") == "f"


class TestValidation:
    def _frames(self):
        times = ("t0", "t1")
        nodes = LabeledFrame(["a", "b"], times, [[1, 1], [1, 0]])
        edges = LabeledFrame([("a", "b")], times, [[1, 0]])
        static = LabeledFrame(["a", "b"], ["gender"], [["m"], ["f"]])
        return times, nodes, edges, static

    def test_valid_graph(self):
        times, nodes, edges, static = self._frames()
        graph = TemporalGraph(Timeline(times), nodes, edges, static, {})
        assert graph.n_nodes == 2

    def test_edge_missing_endpoint(self):
        times, nodes, _, static = self._frames()
        edges = LabeledFrame([("a", "zz")], times, [[1, 0]])
        with pytest.raises(GraphIntegrityError):
            TemporalGraph(Timeline(times), nodes, edges, static, {})

    def test_edge_active_when_endpoint_absent(self):
        times, nodes, _, static = self._frames()
        edges = LabeledFrame([("a", "b")], times, [[1, 1]])  # b absent at t1
        with pytest.raises(GraphIntegrityError):
            TemporalGraph(Timeline(times), nodes, edges, static, {})

    def test_validation_can_be_skipped(self):
        times, nodes, _, static = self._frames()
        edges = LabeledFrame([("a", "b")], times, [[1, 1]])
        graph = TemporalGraph(
            Timeline(times), nodes, edges, static, {}, validate=False
        )
        assert graph.n_edges == 1

    def test_non_tuple_edge_labels_rejected(self):
        times, nodes, _, static = self._frames()
        edges = LabeledFrame(["a->b"], times, [[1, 0]])
        with pytest.raises(GraphIntegrityError):
            TemporalGraph(Timeline(times), nodes, edges, static, {})

    def test_node_column_mismatch(self):
        times, nodes, edges, static = self._frames()
        bad_nodes = LabeledFrame(["a", "b"], ["x", "y"], [[1, 1], [1, 0]])
        with pytest.raises(GraphIntegrityError):
            TemporalGraph(Timeline(times), bad_nodes, edges, static, {})

    def test_static_row_mismatch(self):
        times, nodes, edges, _ = self._frames()
        bad_static = LabeledFrame(["a"], ["gender"], [["m"]])
        with pytest.raises(GraphIntegrityError):
            TemporalGraph(Timeline(times), nodes, edges, bad_static, {})

    def test_varying_column_mismatch(self):
        times, nodes, edges, static = self._frames()
        varying = {"pubs": LabeledFrame(["a", "b"], ["x", "y"], [[1, 1], [1, 1]])}
        with pytest.raises(GraphIntegrityError):
            TemporalGraph(Timeline(times), nodes, edges, static, varying)

    def test_attribute_declared_twice(self):
        times, nodes, edges, _ = self._frames()
        static = LabeledFrame(["a", "b"], ["pubs"], [[1], [2]])
        varying = {
            "pubs": LabeledFrame(["a", "b"], times, [[1, 1], [1, None]])
        }
        with pytest.raises(GraphIntegrityError):
            TemporalGraph(Timeline(times), nodes, edges, static, varying)


class TestAccessors:
    def test_nodes_edges(self, paper_graph):
        assert set(paper_graph.nodes) == {"u1", "u2", "u3", "u4", "u5"}
        assert ("u1", "u2") in paper_graph.edges

    def test_attribute_names(self, paper_graph):
        assert paper_graph.attribute_names == ("gender", "publications")

    def test_is_static(self, paper_graph):
        assert paper_graph.is_static("gender")
        assert not paper_graph.is_static("publications")

    def test_is_static_unknown(self, paper_graph):
        with pytest.raises(KeyError):
            paper_graph.is_static("height")

    def test_attribute_value_varying_needs_time(self, paper_graph):
        with pytest.raises(ValueError):
            paper_graph.attribute_value("u1", "publications")

    def test_edge_times(self, paper_graph):
        assert paper_graph.edge_times(("u1", "u2")) == ("t0", "t1")

    def test_nodes_at(self, paper_graph):
        assert set(paper_graph.nodes_at("t2")) == {"u2", "u4", "u5"}

    def test_counts_at(self, paper_graph):
        assert paper_graph.n_nodes_at("t0") == 4
        assert paper_graph.n_edges_at("t2") == 3

    def test_size_table(self, paper_graph):
        table = paper_graph.size_table()
        assert table[0] == ("t0", 4, 3)

    def test_repr(self, paper_graph):
        assert "5 nodes" in repr(paper_graph)

    def test_equality(self, paper_graph):
        from repro.datasets import paper_example

        assert paper_graph == paper_example()

    def test_equality_other_type(self, paper_graph):
        assert paper_graph.__eq__(1) is NotImplemented


class TestRestricted:
    def test_restricted_subset(self, paper_graph):
        sub = paper_graph.restricted(
            ["u1", "u2"], [("u1", "u2")], ["t0", "t1"]
        )
        assert sub.n_nodes == 2
        assert sub.n_edges == 1
        assert sub.timeline.labels == ("t0", "t1")

    def test_restricted_attributes_follow(self, paper_graph):
        sub = paper_graph.restricted(["u2"], [], ["t1"])
        assert sub.attribute_value("u2", "gender") == "f"
        assert sub.attribute_value("u2", "publications", "t1") == 1

    def test_restricted_empty(self, paper_graph):
        sub = paper_graph.restricted([], [], ["t0"])
        assert sub.n_nodes == 0
        assert sub.n_edges == 0
