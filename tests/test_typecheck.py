"""Run mypy under the committed configuration, when mypy is installed.

The strict sections of ``[tool.mypy]`` in ``pyproject.toml`` cover
``repro.frames``, ``repro.core``, ``repro.exploration``, ``repro.obs``
and ``repro.parallel``; CI installs the ``typecheck`` extra so this
gate always runs there.  Locally the test skips if mypy is absent (the
library itself depends only on numpy).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO = Path(__file__).resolve().parent.parent


@pytest.mark.slow
def test_mypy_passes_committed_config() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
