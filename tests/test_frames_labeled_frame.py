"""Unit tests for the LabeledFrame storage primitive."""

import numpy as np
import pytest

from repro.frames import (
    DuplicateLabelError,
    LabeledFrame,
    LabelError,
    ShapeError,
)


@pytest.fixture()
def frame():
    return LabeledFrame(
        ["u1", "u2", "u3"],
        ["t0", "t1", "t2"],
        [[1, 1, 0], [0, 1, 1], [0, 0, 0]],
    )


class TestConstruction:
    def test_shape(self, frame):
        assert frame.shape == (3, 3)
        assert frame.n_rows == 3
        assert frame.n_cols == 3

    def test_labels_are_tuples(self, frame):
        assert frame.row_labels == ("u1", "u2", "u3")
        assert frame.col_labels == ("t0", "t1", "t2")

    def test_values_are_copied(self):
        data = np.zeros((2, 2))
        frame = LabeledFrame(["a", "b"], ["x", "y"], data)
        data[0, 0] = 99
        assert frame.cell("a", "x") == 0

    def test_duplicate_row_labels_rejected(self):
        with pytest.raises(DuplicateLabelError):
            LabeledFrame(["a", "a"], ["x"], [[1], [2]])

    def test_duplicate_col_labels_rejected(self):
        with pytest.raises(DuplicateLabelError):
            LabeledFrame(["a"], ["x", "x"], [[1, 2]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            LabeledFrame(["a", "b"], ["x"], [[1]])

    def test_empty_constructor(self):
        frame = LabeledFrame.empty(["x", "y"])
        assert frame.n_rows == 0
        assert frame.col_labels == ("x", "y")

    def test_from_rows(self):
        frame = LabeledFrame.from_rows({"a": [1, 2], "b": [3, 4]}, ["x", "y"])
        assert frame.cell("b", "y") == 4

    def test_from_rows_empty(self):
        frame = LabeledFrame.from_rows({}, ["x", "y"])
        assert frame.n_rows == 0

    def test_from_rows_bad_width(self):
        with pytest.raises(ShapeError):
            LabeledFrame.from_rows({"a": [1]}, ["x", "y"])

    def test_zeros(self):
        frame = LabeledFrame.zeros(["a", "b"], ["x"])
        assert frame.values.sum() == 0
        assert frame.values.dtype == np.uint8

    def test_tuple_row_labels_supported(self):
        frame = LabeledFrame([("u", "v"), ("v", "w")], ["t0"], [[1], [0]])
        assert frame.cell(("u", "v"), "t0") == 1


class TestAccess:
    def test_cell(self, frame):
        assert frame.cell("u1", "t0") == 1
        assert frame.cell("u2", "t0") == 0

    def test_unknown_row_raises_label_error(self, frame):
        with pytest.raises(LabelError):
            frame.cell("nope", "t0")

    def test_unknown_col_raises_label_error(self, frame):
        with pytest.raises(LabelError):
            frame.cell("u1", "nope")

    def test_label_error_is_key_error(self, frame):
        with pytest.raises(KeyError):
            frame.row_position("nope")

    def test_set_cell(self, frame):
        frame.set_cell("u3", "t2", 1)
        assert frame.cell("u3", "t2") == 1

    def test_row_returns_copy(self, frame):
        row = frame.row("u1")
        row[0] = 42
        assert frame.cell("u1", "t0") == 1

    def test_row_dict(self, frame):
        assert frame.row_dict("u2") == {"t0": 0, "t1": 1, "t2": 1}

    def test_column(self, frame):
        assert frame.column("t1").tolist() == [1, 1, 0]

    def test_iter_rows_order(self, frame):
        labels = [label for label, _ in frame.iter_rows()]
        assert labels == ["u1", "u2", "u3"]

    def test_contains(self, frame):
        assert "u1" in frame
        assert "zz" not in frame

    def test_len(self, frame):
        assert len(frame) == 3

    def test_has_row_has_col(self, frame):
        assert frame.has_row("u2")
        assert not frame.has_row("t0")
        assert frame.has_col("t0")
        assert not frame.has_col("u2")


class TestSelection:
    def test_restrict_cols(self, frame):
        sub = frame.restrict_cols(["t1", "t2"])
        assert sub.col_labels == ("t1", "t2")
        assert sub.row("u1").tolist() == [1, 0]

    def test_restrict_cols_reorders(self, frame):
        sub = frame.restrict_cols(["t2", "t0"])
        assert sub.row("u1").tolist() == [0, 1]

    def test_restrict_cols_unknown(self, frame):
        with pytest.raises(LabelError):
            frame.restrict_cols(["bogus"])

    def test_select_rows(self, frame):
        sub = frame.select_rows(["u3", "u1"])
        assert sub.row_labels == ("u3", "u1")

    def test_select_rows_present_skips_unknown(self, frame):
        sub = frame.select_rows_present(["u1", "ghost"])
        assert sub.row_labels == ("u1",)

    def test_mask_rows(self, frame):
        sub = frame.mask_rows(np.array([True, False, True]))
        assert sub.row_labels == ("u1", "u3")

    def test_mask_rows_wrong_shape(self, frame):
        with pytest.raises(ShapeError):
            frame.mask_rows(np.array([True]))


class TestBooleanReductions:
    def test_any_mask_all_cols(self, frame):
        assert frame.any_mask().tolist() == [True, True, False]

    def test_any_mask_subset(self, frame):
        assert frame.any_mask(["t0"]).tolist() == [True, False, False]

    def test_any_mask_empty_cols_is_false(self, frame):
        assert frame.any_mask([]).tolist() == [False, False, False]

    def test_all_mask(self, frame):
        assert frame.all_mask(["t0", "t1"]).tolist() == [True, False, False]

    def test_all_mask_empty_cols_is_true(self, frame):
        # Vacuous truth, matching numpy.all over an empty axis.
        assert frame.all_mask([]).tolist() == [True, True, True]

    def test_none_mask(self, frame):
        assert frame.none_mask(["t2"]).tolist() == [True, False, True]

    def test_rows_any(self, frame):
        assert frame.rows_any(["t1"]) == ("u1", "u2")

    def test_rows_all(self, frame):
        assert frame.rows_all(["t1", "t2"]) == ("u2",)

    def test_count_nonzero_by_row(self, frame):
        counts = frame.count_nonzero_by_row()
        assert counts == {"u1": 2, "u2": 2, "u3": 0}

    def test_count_nonzero_by_row_subset(self, frame):
        counts = frame.count_nonzero_by_row(["t0"])
        assert counts == {"u1": 1, "u2": 0, "u3": 0}

    def test_count_nonzero_empty_cols(self, frame):
        counts = frame.count_nonzero_by_row([])
        assert counts == {"u1": 0, "u2": 0, "u3": 0}


class TestCombination:
    def test_concat_rows(self, frame):
        other = LabeledFrame(["u4"], ["t0", "t1", "t2"], [[1, 0, 1]])
        combined = frame.concat_rows(other)
        assert combined.n_rows == 4
        assert combined.cell("u4", "t2") == 1

    def test_concat_rows_column_mismatch(self, frame):
        other = LabeledFrame(["u4"], ["t0"], [[1]])
        with pytest.raises(ShapeError):
            frame.concat_rows(other)

    def test_concat_rows_duplicate_labels(self, frame):
        with pytest.raises(DuplicateLabelError):
            frame.concat_rows(frame)

    def test_copy_is_independent(self, frame):
        clone = frame.copy()
        clone.set_cell("u1", "t0", 0)
        assert frame.cell("u1", "t0") == 1

    def test_equality(self, frame):
        assert frame == frame.copy()
        assert frame != LabeledFrame.empty(["t0", "t1", "t2"])

    def test_equality_other_type(self, frame):
        assert frame.__eq__(42) is NotImplemented


class TestRendering:
    def test_to_string_contains_labels(self, frame):
        text = frame.to_string()
        assert "u1" in text and "t2" in text

    def test_to_string_truncates(self, frame):
        text = frame.to_string(max_rows=1)
        assert "more rows" in text

    def test_repr(self, frame):
        assert "3 rows x 3 cols" in repr(frame)
