"""Tests for threshold initialization (Section 3.5)."""

import pytest

from repro.core import TemporalGraphBuilder
from repro.exploration import (
    EntityKind,
    EventType,
    ExtendSide,
    Goal,
    consecutive_event_counts,
    explore,
    suggest_threshold,
    threshold_ladder,
)


class TestConsecutiveEventCounts:
    def test_length(self, paper_graph):
        counts = consecutive_event_counts(paper_graph, EventType.STABILITY)
        assert len(counts) == len(paper_graph.timeline) - 1

    def test_paper_graph_stability_edges(self, paper_graph):
        counts = consecutive_event_counts(paper_graph, EventType.STABILITY)
        # t0->t1: (u1,u2) stable; t1->t2: (u4,u2) stable.
        assert counts == [1, 1]

    def test_paper_graph_growth_edges(self, paper_graph):
        counts = consecutive_event_counts(paper_graph, EventType.GROWTH)
        # t0->t1: (u4,u2); t1->t2: (u5,u4), (u5,u2).
        assert counts == [1, 2]

    def test_paper_graph_shrinkage_nodes(self, paper_graph):
        counts = consecutive_event_counts(
            paper_graph, EventType.SHRINKAGE, entity=EntityKind.NODES
        )
        # Node deletion events count nodes whose *presence* disappears
        # (u3 at t0->t1, u1 at t1->t2).  Unlike the difference operator's
        # V_-, surviving endpoints of deleted edges are not deletion
        # events — they are kept by Definition 2.5 only so E_- stays
        # well-formed.
        assert counts == [1, 1]

    def test_key_filter(self, paper_graph):
        counts = consecutive_event_counts(
            paper_graph,
            EventType.GROWTH,
            attributes=["gender"],
            key=(("f",), ("f",)),
        )
        assert counts == [1, 0]


class TestSuggestThreshold:
    def test_max_mode(self, paper_graph):
        assert suggest_threshold(paper_graph, EventType.GROWTH, mode="max") == 2

    def test_min_mode(self, paper_graph):
        assert suggest_threshold(paper_graph, EventType.GROWTH, mode="min") == 1

    def test_zeros_ignored_when_possible(self, paper_graph):
        w = suggest_threshold(
            paper_graph,
            EventType.GROWTH,
            mode="min",
            attributes=["gender"],
            key=(("f",), ("f",)),
        )
        assert w == 1  # the zero count of t1->t2 is skipped

    def test_bad_mode(self, paper_graph):
        with pytest.raises(ValueError):
            suggest_threshold(paper_graph, EventType.GROWTH, mode="median")

    def test_matches_manual_max(self, small_dblp):
        counts = consecutive_event_counts(small_dblp, EventType.STABILITY)
        assert suggest_threshold(small_dblp, EventType.STABILITY, "max") == max(
            c for c in counts if c > 0
        )


class TestThresholdLadder:
    def test_scaling(self):
        assert threshold_ladder(100, (1.0, 0.5, 0.1)) == [100, 50, 10]

    def test_floors_at_one(self):
        assert threshold_ladder(10, (0.001,)) == [1]

    def test_rounding(self):
        assert threshold_ladder(86, (1 / 86,)) == [1]
        assert threshold_ladder(33968, (1 / 12,)) == [2831]

    def test_growth_factors(self):
        assert threshold_ladder(60, (1.0, 5.0, 20.0)) == [60, 300, 1200]

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ValueError):
            threshold_ladder(10, (0.0,))
        with pytest.raises(ValueError):
            threshold_ladder(10, (-1.0,))


class TestAllZeroCountsFloor:
    """Regression: when every consecutive count is zero, the suggestion
    is floored at 1 — the smallest threshold ``explore`` accepts — not 0."""

    @staticmethod
    def _frozen_graph():
        # Identical nodes and edges at every time point: no growth and no
        # shrinkage anywhere on the timeline.
        builder = TemporalGraphBuilder([0, 1, 2], static=["gender"])
        for node in ("a", "b", "c"):
            builder.add_node(node, {"gender": "f"})
            for t in (0, 1, 2):
                builder.set_node_presence(node, t)
        builder.add_edge("a", "b", [0, 1, 2])
        builder.add_edge("b", "c", [0, 1, 2])
        return builder.build()

    def test_counts_are_all_zero(self):
        graph = self._frozen_graph()
        assert consecutive_event_counts(graph, EventType.GROWTH) == [0, 0]
        assert consecutive_event_counts(graph, EventType.SHRINKAGE) == [0, 0]

    @pytest.mark.parametrize("mode", ["max", "min"])
    @pytest.mark.parametrize("event", [EventType.GROWTH, EventType.SHRINKAGE])
    def test_floored_at_one(self, event, mode):
        assert suggest_threshold(self._frozen_graph(), event, mode=mode) == 1

    def test_suggestion_is_accepted_by_explore(self):
        graph = self._frozen_graph()
        k = suggest_threshold(graph, EventType.GROWTH, mode="min")
        result = explore(
            graph, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k
        )
        assert result.pairs == ()  # nothing grows, but no ValueError either
