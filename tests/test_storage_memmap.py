"""On-disk persistence for the columnar backend (``np.memmap``).

``ColumnarBackend.save`` writes a versioned directory layout (one
``.npy`` per numeric array plus a pickled sidecar for labels and object
pools); ``ColumnarBackend.open`` maps it back read-only.  The tests
cover the full persistence contract:

* write / reopen round-trip (mapped and eagerly loaded) is bit-exact;
* mapped arrays are genuine read-only memmaps — mutation raises;
* corrupt or version-skewed layouts fail from the GT003 taxonomy
  (:class:`~repro.errors.StorageError`), never a bare ``OSError``;
* a memmapped backend pickles as its *path* and reopens on the other
  side, so fork- and spawn-started workers share pages instead of
  copying arrays (GT007 fork-safety);
* ``repro.parallel`` parity: aggregation and exploration over a
  memmapped graph under ``workers=2`` match the serial run bit for bit.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from tests.conftest import TEST_SEED, make_tiny_graph
from repro.core import aggregate, presence_signature
from repro.errors import StorageError
from repro.exploration import EventType, ExtendSide, Goal, explore
from repro.parallel import parallelism_scope
from repro.storage import ColumnarBackend, frames_of


@pytest.fixture(scope="module")
def graph():
    return make_tiny_graph(seed=41 + TEST_SEED, n_times=6)


@pytest.fixture()
def saved(graph, tmp_path):
    """A saved columnar layout and the in-memory backend it came from."""
    backend = ColumnarBackend.from_graph(graph)
    target = backend.save(tmp_path / "graph.columnar")
    return backend, target


def test_save_writes_a_versioned_layout(saved):
    _, target = saved
    assert (target / "meta.pkl").is_file()
    assert (target / "node_packed.npy").is_file()
    assert (target / "src_rows.npy").is_file()


@pytest.mark.parametrize("mmap", [True, False], ids=["mapped", "eager"])
def test_reopen_roundtrip_is_bit_exact(graph, saved, mmap):
    backend, target = saved
    reopened = ColumnarBackend.open(target, mmap=mmap)
    assert reopened.is_memmapped is mmap
    assert (reopened.path is not None) and str(target) == reopened.path
    assert backend.times == reopened.times
    assert backend.node_labels == reopened.node_labels
    assert backend.edge_labels == reopened.edge_labels
    reference = frames_of(graph)
    frames = reopened.to_frames()
    assert np.array_equal(
        frames.node_presence.values.astype(bool),
        reference.node_presence.values.astype(bool),
    )
    assert frames.static_attrs == reference.static_attrs
    for name, frame in reference.varying_attrs.items():
        assert frames.varying_attrs[name] == frame
    assert presence_signature(reopened.to_graph()) == presence_signature(graph)


def test_mapped_arrays_reject_mutation(graph, saved):
    _, target = saved
    reopened = ColumnarBackend.open(target)
    matrix = reopened.presence_matrix("nodes")  # a copy: writable is fine
    assert matrix.flags.writeable
    for array in reopened._numeric_arrays().values():
        assert not array.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            array[(0,) * array.ndim] = 1


def test_masks_match_in_memory_backend(graph, saved):
    backend, target = saved
    reopened = ColumnarBackend.open(target)
    window = list(graph.timeline.labels[1:4])
    for entity in ("nodes", "edges"):
        for mode in ("any", "all", "none"):
            assert np.array_equal(
                backend.presence_mask(entity, window, mode),
                reopened.presence_mask(entity, window, mode),
            )


def test_missing_layout_raises_storage_error(tmp_path):
    with pytest.raises(StorageError, match="cannot open"):
        ColumnarBackend.open(tmp_path / "nowhere")


def test_version_skew_raises_storage_error(saved):
    _, target = saved
    meta = pickle.loads((target / "meta.pkl").read_bytes())
    meta["layout_version"] = 999
    (target / "meta.pkl").write_bytes(pickle.dumps(meta))
    with pytest.raises(StorageError, match="version"):
        ColumnarBackend.open(target)


def test_corrupt_array_raises_storage_error(saved):
    _, target = saved
    (target / "node_packed.npy").write_bytes(b"not an npy file")
    with pytest.raises(StorageError, match="node_packed"):
        ColumnarBackend.open(target)


def test_memmapped_backend_pickles_as_its_path(saved):
    _, target = saved
    reopened = ColumnarBackend.open(target)
    payload = pickle.dumps(reopened)
    # The wire format carries the directory path, not the arrays.
    assert len(payload) < 1024
    clone = pickle.loads(payload)
    assert clone.is_memmapped
    assert clone.path == reopened.path
    assert np.array_equal(
        clone.presence_matrix("nodes"), reopened.presence_matrix("nodes")
    )


def test_in_memory_backend_pickles_by_value(graph):
    backend = ColumnarBackend.from_graph(graph)
    clone = pickle.loads(pickle.dumps(backend))
    assert clone.path is None
    assert np.array_equal(
        clone.presence_matrix("edges"), backend.presence_matrix("edges")
    )


def test_worker_parity_over_a_memmapped_graph(graph, saved, monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_MIN_WORK", "0")
    _, target = saved
    mapped = ColumnarBackend.open(target).to_graph()
    for distinct in (True, False):
        serial = aggregate(graph, ["color", "level"], distinct=distinct)
        pooled = aggregate(
            mapped, ["color", "level"], distinct=distinct, parallelism=2
        )
        assert serial.diff(pooled) == ()
    baseline = explore(graph, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 1)
    with parallelism_scope(2):
        pooled_explore = explore(
            mapped, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 1
        )
    assert baseline.diff(pooled_explore) == ()
    assert baseline.evaluations == pooled_explore.evaluations
