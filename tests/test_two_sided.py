"""Tests for two-sided exploration and the non-monotonicity claim."""

import math
import time

import pytest

from repro.core import Interval, TemporalGraphBuilder
from repro.exploration import (
    EventType,
    Goal,
    Semantics,
    TwoSidedPair,
    explore,
    ExtendSide,
    find_non_monotonic_path,
    two_sided_counts,
    two_sided_explore,
)


class TestTwoSidedCounts:
    def test_enumerates_non_overlapping_pairs(self, paper_graph):
        pairs = two_sided_counts(
            paper_graph, EventType.GROWTH, Semantics.UNION
        )
        for pair in pairs:
            assert pair.old.precedes(pair.new)
        # n=3: old/new split possibilities: 5 pairs.
        assert len(pairs) == 5

    def test_counts_match_event_counter(self, paper_graph):
        pairs = {
            (p.old, p.new): p.count
            for p in two_sided_counts(
                paper_graph, EventType.GROWTH, Semantics.UNION
            )
        }
        # t0 -> t1 growth: 1 edge; t1 -> t2: 2 edges.
        assert pairs[(Interval(0, 0), Interval(1, 1))] == 1
        assert pairs[(Interval(1, 1), Interval(2, 2))] == 2

    def test_guard_on_space_size(self, small_dblp):
        with pytest.raises(ValueError):
            two_sided_counts(
                small_dblp, EventType.GROWTH, Semantics.UNION, max_pairs=10
            )

    def test_guard_fails_fast_on_long_timeline(self):
        """Regression: the candidate count is computed arithmetically
        (``C(n+2, 4)``) *before* enumeration, so a long timeline fails
        immediately instead of materializing an O(n^4) pair list first."""
        n = 200  # C(202, 4) ~ 67 million quadruples: enumeration would hang
        builder = TemporalGraphBuilder(list(range(n)))
        builder.add_node("a")
        builder.add_node("b")
        for t in range(n):
            builder.set_node_presence("a", t)
            builder.set_node_presence("b", t)
        builder.add_edge("a", "b", range(n))
        graph = builder.build()
        start = time.perf_counter()
        with pytest.raises(ValueError) as excinfo:
            two_sided_counts(graph, EventType.GROWTH, Semantics.UNION)
        assert time.perf_counter() - start < 1.0
        assert str(math.comb(n + 2, 4)) in str(excinfo.value)

    def test_guard_count_matches_enumeration(self, paper_graph):
        """The arithmetic size formula agrees with what is enumerated."""
        n = len(paper_graph.timeline)
        pairs = two_sided_counts(
            paper_graph, EventType.GROWTH, Semantics.UNION
        )
        assert len(pairs) == math.comb(n + 2, 4)


class TestNonMonotonicity:
    def test_paper_claim_on_movielens(self, small_movielens):
        """Section 3.3: with both sides extending, the difference
        operator is non-monotonic.  A concrete witness must exist on
        ordinary data."""
        witness = find_non_monotonic_path(
            small_movielens, EventType.GROWTH, Semantics.UNION
        )
        assert witness is not None
        a, b, c = witness
        assert b.contains(a) or (b.old.contains(a.old) and b.new.contains(a.new))
        not_monotone_up = not (a.count <= b.count <= c.count)
        not_monotone_down = not (a.count >= b.count >= c.count)
        assert not_monotone_up and not_monotone_down

    def test_witness_shape(self, small_movielens):
        witness = find_non_monotonic_path(
            small_movielens, EventType.GROWTH, Semantics.UNION
        )
        a, b, c = witness
        # The chain grows old side then new side.
        assert b.old == a.old.extend_left()
        assert c.new == b.new.extend_right()


class TestTwoSidedExplore:
    def test_minimal_pairs_not_dominated(self, small_movielens):
        pairs = two_sided_explore(
            small_movielens, EventType.GROWTH, Goal.MINIMAL, 50
        )
        assert pairs
        for pair in pairs:
            for other in pairs:
                if other is not pair:
                    assert not pair.contains(other)

    def test_maximal_pairs_not_dominated(self, small_movielens):
        pairs = two_sided_explore(
            small_movielens, EventType.STABILITY, Goal.MAXIMAL, 1
        )
        assert pairs
        for pair in pairs:
            for other in pairs:
                if other is not pair:
                    assert not other.contains(pair)

    def test_threshold_respected(self, small_movielens):
        for pair in two_sided_explore(
            small_movielens, EventType.SHRINKAGE, Goal.MINIMAL, 30
        ):
            assert pair.count >= 30

    def test_single_sided_results_are_in_the_passing_space(self, small_movielens):
        """The paper's reference-point pairs are a subset of the
        two-sided passing space (they may not all be two-sided-minimal)."""
        k = 30
        single = explore(
            small_movielens, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k
        )
        passing = {
            (p.old, p.new)
            for p in two_sided_counts(
                small_movielens, EventType.GROWTH, Semantics.UNION
            )
            if p.count >= k
        }
        for pair in single.pairs:
            assert (pair.old.interval, pair.new.interval) in passing

    def test_bad_k(self, small_movielens):
        with pytest.raises(ValueError):
            two_sided_explore(
                small_movielens, EventType.GROWTH, Goal.MINIMAL, 0
            )


class TestTwoSidedPair:
    def test_contains(self):
        big = TwoSidedPair(Interval(0, 2), Interval(3, 5), 10)
        small = TwoSidedPair(Interval(1, 2), Interval(3, 4), 5)
        assert big.contains(small)
        assert not small.contains(big)
