"""Tests for graph aggregation (Definition 2.6, Algorithm 2)."""

import pytest

from repro.core import AggregateGraph, aggregate, union
from repro.core.aggregation import (
    _aggregate_general,
    _aggregate_static_fast,
)


class TestTimePointAggregation:
    def test_figure3a_t0(self, paper_graph):
        agg = aggregate(paper_graph, ["gender", "publications"], times=["t0"])
        assert agg.node_weight(("m", 3)) == 1  # u1
        assert agg.node_weight(("f", 1)) == 2  # u2, u3
        assert agg.node_weight(("f", 2)) == 1  # u4

    def test_figure3b_t1(self, paper_graph):
        agg = aggregate(paper_graph, ["gender", "publications"], times=["t1"])
        assert agg.node_weight(("m", 1)) == 1
        assert agg.node_weight(("f", 1)) == 2  # u2, u4

    def test_timepoint_dist_equals_all(self, paper_graph):
        """On a single time point DIST and ALL coincide (Section 2.2)."""
        for time in paper_graph.timeline.labels:
            dist = aggregate(
                paper_graph, ["gender", "publications"], distinct=True, times=[time]
            )
            non_dist = aggregate(
                paper_graph, ["gender", "publications"], distinct=False, times=[time]
            )
            assert dict(dist.node_weights) == dict(non_dist.node_weights)
            assert dict(dist.edge_weights) == dict(non_dist.edge_weights)

    def test_edge_weights_t0(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        # Edges at t0: (u1,u2), (u2,u3), (u1,u4) -> m->f, f->f, m->f.
        assert agg.edge_weight(("m",), ("f",)) == 2
        assert agg.edge_weight(("f",), ("f",)) == 1


class TestUnionAggregation:
    def test_figure3d_distinct(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        agg = aggregate(u, ["gender", "publications"], distinct=True)
        assert agg.node_weight(("f", 1)) == 3  # u2, u3, u4

    def test_figure3e_non_distinct(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        agg = aggregate(u, ["gender", "publications"], distinct=False)
        assert agg.node_weight(("f", 1)) == 4  # u2 twice, u3, u4

    def test_distinct_never_exceeds_all(self, paper_graph):
        u = union(paper_graph, ["t0", "t1", "t2"])
        dist = aggregate(u, ["gender", "publications"], distinct=True)
        non_dist = aggregate(u, ["gender", "publications"], distinct=False)
        for key, weight in dist.node_weights.items():
            assert weight <= non_dist.node_weight(key)
        for (s, t), weight in dist.edge_weights.items():
            assert weight <= non_dist.edge_weight(s, t)

    def test_static_distinct_counts_distinct_entities(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        agg = aggregate(u, ["gender"], distinct=True)
        assert agg.node_weight(("f",)) == 3
        assert agg.node_weight(("m",)) == 1

    def test_static_all_counts_appearances(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        agg = aggregate(u, ["gender"], distinct=False)
        # f appearances: u2(t0,t1), u3(t0), u4(t0,t1) = 5.
        assert agg.node_weight(("f",)) == 5
        assert agg.node_weight(("m",)) == 2


class TestStaticFastPath:
    def test_matches_general_path_dist(self, small_dblp):
        times = small_dblp.timeline.labels[:4]
        fast = _aggregate_static_fast(small_dblp, ["gender"], times, True)
        general = _aggregate_general(small_dblp, ["gender"], times, True)
        assert dict(fast.node_weights) == dict(general.node_weights)
        assert dict(fast.edge_weights) == dict(general.edge_weights)

    def test_matches_general_path_all(self, small_dblp):
        times = small_dblp.timeline.labels[:4]
        fast = _aggregate_static_fast(small_dblp, ["gender"], times, False)
        general = _aggregate_general(small_dblp, ["gender"], times, False)
        assert dict(fast.node_weights) == dict(general.node_weights)
        assert dict(fast.edge_weights) == dict(general.edge_weights)

    def test_multiple_static_attributes(self, small_movielens):
        times = small_movielens.timeline.labels[:2]
        fast = _aggregate_static_fast(
            small_movielens, ["gender", "age"], times, True
        )
        general = _aggregate_general(
            small_movielens, ["gender", "age"], times, True
        )
        assert dict(fast.node_weights) == dict(general.node_weights)
        assert dict(fast.edge_weights) == dict(general.edge_weights)


class TestAggregateValidation:
    def test_empty_attributes_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate(paper_graph, [])

    def test_duplicate_attributes_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate(paper_graph, ["gender", "gender"])

    def test_unknown_attribute_rejected(self, paper_graph):
        with pytest.raises(KeyError):
            aggregate(paper_graph, ["height"])

    def test_unknown_time_rejected(self, paper_graph):
        with pytest.raises(KeyError):
            aggregate(paper_graph, ["gender"], times=["t9"])

    def test_default_times_whole_timeline(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], distinct=True)
        assert agg.node_weight(("m",)) == 2
        assert agg.node_weight(("f",)) == 3

    def test_attribute_order_defines_tuple_order(self, paper_graph):
        a = aggregate(paper_graph, ["gender", "publications"], times=["t0"])
        b = aggregate(paper_graph, ["publications", "gender"], times=["t0"])
        assert a.node_weight(("f", 1)) == b.node_weight((1, "f"))


class TestAggregateGraphValueObject:
    @pytest.fixture()
    def agg(self, paper_graph):
        return aggregate(paper_graph, ["gender", "publications"], times=["t0"])

    def test_counts(self, agg):
        assert agg.n_aggregate_nodes == 3
        assert agg.total_node_weight() == 4  # 4 nodes at t0

    def test_missing_keys_are_zero(self, agg):
        assert agg.node_weight(("x", 99)) == 0
        assert agg.edge_weight(("x",), ("y",)) == 0

    def test_to_tables_sorted(self, agg):
        nodes, edges = agg.to_tables()
        weights = [row[-1] for row in nodes.rows]
        assert weights == sorted(weights, reverse=True)
        assert edges.columns == ("source", "target", "weight")

    def test_repr(self, agg):
        assert "DIST" in repr(agg)
        assert "ALL" in repr(
            AggregateGraph(("g",), {}, {}, distinct=False)
        )


class TestRollup:
    def test_rollup_node_weights(self, paper_graph):
        full = aggregate(paper_graph, ["gender", "publications"], times=["t0"])
        rolled = full.rollup(["gender"])
        direct = aggregate(paper_graph, ["gender"], times=["t0"])
        assert dict(rolled.node_weights) == dict(direct.node_weights)

    def test_rollup_edge_weights(self, paper_graph):
        full = aggregate(paper_graph, ["gender", "publications"], times=["t0"])
        rolled = full.rollup(["gender"])
        direct = aggregate(paper_graph, ["gender"], times=["t0"])
        assert dict(rolled.edge_weights) == dict(direct.edge_weights)

    def test_rollup_reorders(self, paper_graph):
        full = aggregate(paper_graph, ["gender", "publications"], times=["t0"])
        rolled = full.rollup(["publications", "gender"])
        assert rolled.attributes == ("publications", "gender")
        assert rolled.node_weight((1, "f")) == 2

    def test_rollup_unknown_attribute(self, paper_graph):
        full = aggregate(paper_graph, ["gender"], times=["t0"])
        with pytest.raises(KeyError):
            full.rollup(["height"])

    def test_rollup_identity(self, paper_graph):
        full = aggregate(paper_graph, ["gender"], times=["t0"])
        assert dict(full.rollup(["gender"]).node_weights) == dict(full.node_weights)


class TestCombine:
    def test_t_distributive_sum(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], distinct=False, times=["t0"])
        b = aggregate(paper_graph, ["gender"], distinct=False, times=["t1"])
        combined = a + b
        direct = aggregate(
            union(paper_graph, ["t0", "t1"]), ["gender"], distinct=False
        )
        assert dict(combined.node_weights) == dict(direct.node_weights)
        assert dict(combined.edge_weights) == dict(direct.edge_weights)

    def test_distinct_rejected(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], distinct=True, times=["t0"])
        b = aggregate(paper_graph, ["gender"], distinct=True, times=["t1"])
        with pytest.raises(ValueError):
            a.combine(b)

    def test_attribute_mismatch_rejected(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], distinct=False, times=["t0"])
        b = aggregate(
            paper_graph, ["publications"], distinct=False, times=["t0"]
        )
        with pytest.raises(ValueError):
            a.combine(b)

    def test_combine_keeps_all_mode(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], distinct=False, times=["t0"])
        b = aggregate(paper_graph, ["gender"], distinct=False, times=["t1"])
        assert (a + b).distinct is False
