"""Empirical verification of Table 1: monotonicity and subset relations
between the eight exploration cases."""

import pytest

from repro.core import Interval
from repro.exploration import (
    EventCounter,
    EventType,
    ExtendSide,
    Goal,
    Semantics,
    Side,
    explore,
)


def chain_counts(graph, event, extend, semantics, ref):
    """Counts along one extension chain for a fixed reference point."""
    counter = EventCounter(graph)
    n = len(graph.timeline)
    counts = []
    if extend is ExtendSide.NEW:
        old = Side.point(ref)
        for stop in range(ref + 1, n):
            counts.append(
                counter.count(event, old, Side(Interval(ref + 1, stop), semantics))
            )
    else:
        new = Side.point(ref + 1)
        for start in range(ref, -1, -1):
            counts.append(
                counter.count(event, Side(Interval(start, ref), semantics), new)
            )
    return counts


MONOTONE_CASES = [
    # (event, extend, semantics, increasing?) — the Table 1 rows.
    (EventType.GROWTH, ExtendSide.OLD, Semantics.UNION, False),
    (EventType.GROWTH, ExtendSide.NEW, Semantics.UNION, True),
    (EventType.GROWTH, ExtendSide.OLD, Semantics.INTERSECTION, True),
    (EventType.GROWTH, ExtendSide.NEW, Semantics.INTERSECTION, False),
    (EventType.SHRINKAGE, ExtendSide.OLD, Semantics.UNION, True),
    (EventType.SHRINKAGE, ExtendSide.NEW, Semantics.UNION, False),
    (EventType.SHRINKAGE, ExtendSide.OLD, Semantics.INTERSECTION, False),
    (EventType.SHRINKAGE, ExtendSide.NEW, Semantics.INTERSECTION, True),
    (EventType.STABILITY, ExtendSide.OLD, Semantics.UNION, True),
    (EventType.STABILITY, ExtendSide.NEW, Semantics.UNION, True),
    (EventType.STABILITY, ExtendSide.OLD, Semantics.INTERSECTION, False),
    (EventType.STABILITY, ExtendSide.NEW, Semantics.INTERSECTION, False),
]


class TestMonotonicityColumns:
    @pytest.mark.parametrize("event,extend,semantics,increasing", MONOTONE_CASES)
    def test_monotonicity(self, small_dblp, event, extend, semantics, increasing):
        n = len(small_dblp.timeline)
        for ref in (0, n // 2, n - 2):
            counts = chain_counts(small_dblp, event, extend, semantics, ref)
            expected = sorted(counts, reverse=not increasing)
            assert counts == expected, (
                f"{event}/{extend}/{semantics} not "
                f"{'increasing' if increasing else 'decreasing'} at ref {ref}: "
                f"{counts}"
            )

    @pytest.mark.parametrize("event,extend,semantics,increasing", MONOTONE_CASES)
    def test_monotonicity_on_movielens(
        self, small_movielens, event, extend, semantics, increasing
    ):
        counts = chain_counts(small_movielens, event, extend, semantics, 0)
        expected = sorted(counts, reverse=not increasing)
        assert counts == expected


class TestSubsetColumn:
    """The '⊆ of' column: the degenerate minimal cases return a subset of
    the U-Explore cases' pairs (as total point windows)."""

    def _windows(self, result):
        return {
            (p.old.interval.start, p.old.interval.stop,
             p.new.interval.start, p.new.interval.stop)
            for p in result.pairs
        }

    def test_growth_min_subset(self, small_dblp):
        # T_new - T_old(∪) results ⊆ T_new(∪) - T_old results.
        for k in (1, 5, 20):
            degenerate = explore(
                small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.OLD, k
            )
            full = explore(
                small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k
            )
            assert self._windows(degenerate) <= self._windows(full)

    def test_shrinkage_min_subset(self, small_dblp):
        # T_old - T_new(∪) results ⊆ T_old(∪) - T_new results.
        for k in (1, 5, 20):
            degenerate = explore(
                small_dblp, EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.NEW, k
            )
            full = explore(
                small_dblp, EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD, k
            )
            assert self._windows(degenerate) <= self._windows(full)


class TestResultShapeColumns:
    """Table 1's Left/Right columns: which side is a time point and which
    may be an interval (or the longest interval)."""

    def test_growth_max_extend_old_longest_interval(self, small_dblp):
        result = explore(
            small_dblp, EventType.GROWTH, Goal.MAXIMAL, ExtendSide.OLD, 1
        )
        for pair in result.pairs:
            assert pair.new.is_point
            assert pair.old.interval.start == 0  # the longest possible T_old

    def test_shrinkage_max_extend_new_longest_interval(self, small_dblp):
        n = len(small_dblp.timeline)
        result = explore(
            small_dblp, EventType.SHRINKAGE, Goal.MAXIMAL, ExtendSide.NEW, 1
        )
        for pair in result.pairs:
            assert pair.old.is_point
            assert pair.new.interval.stop == n - 1

    def test_min_cases_reference_is_point(self, small_dblp):
        result = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 1
        )
        for pair in result.pairs:
            assert pair.old.is_point  # the reference time point

    def test_degenerate_min_both_points(self, small_dblp):
        result = explore(
            small_dblp, EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.NEW, 1
        )
        for pair in result.pairs:
            assert pair.old.is_point and pair.new.is_point
