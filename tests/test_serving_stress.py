"""Threaded serving stress: readers hammer the server while a writer
appends; every served result must be bit-identical to a from-scratch
evaluation against the exact version that served it."""

import threading

import pytest

from repro import GraphTempoSession
from repro.core.operators import presence_signature
from repro.core.updates import SnapshotUpdate
from repro.query import run_query
from repro.serving import QueryServer
from repro.streaming import StreamingStore

QUERIES = (
    "aggregate gender all over union [t0..t2]",
    "aggregate gender all over union [t1], [t0]",
    "aggregate gender, publications all over union [t0..t1]",
    "aggregate publications, gender all over union [t0..t1]",
    "aggregate gender distinct over project [t0..t1]",
    "evolution [t0] -> [t1] by gender",
    "union [t0], [t2]",
    "difference [t2], [t0]",
)


def _updates(n):
    """n appendable snapshots extending the paper example's timeline."""
    updates = []
    for i in range(n):
        node = f"s{i}"
        updates.append(
            SnapshotUpdate(
                time=f"t{3 + i}",
                nodes={
                    "u1": {"publications": 1 + i},
                    "u2": {"publications": 2},
                    node: {"publications": i},
                },
                static={node: {"gender": "f" if i % 2 else "m"}},
                edges=[("u1", "u2"), ("u2", node)],
            )
        )
    return updates


def _assert_matches(text, served, graph):
    naive = run_query(graph, text)
    if hasattr(served, "diff"):
        problems = served.diff(naive)
        assert not problems, f"{text!r} diverged: {problems[0]}"
    else:
        assert presence_signature(served) == presence_signature(naive), (
            f"{text!r} presence diverged"
        )


@pytest.mark.parametrize("per_request_rounds", [6])
def test_threaded_readers_with_concurrent_appender(
    paper_graph, per_request_rounds
):
    """N reader threads serve the full mix repeatedly while an appender
    publishes new versions.  Every recorded (query, result, version)
    triple is then replayed from scratch against the version that served
    it — served results must be bit-identical, no matter where the
    append landed relative to the request."""
    store = StreamingStore(paper_graph)
    server = QueryServer(store)
    n_readers = 4
    updates = _updates(per_request_rounds - 1)
    records = [[] for _ in range(n_readers)]
    failures = []
    # All readers and the appender rendezvous at each round boundary,
    # then race within the round: the append lands concurrently with the
    # readers' requests, but every round is guaranteed to start at a
    # strictly newer version than two rounds earlier.  This keeps the
    # interleaving deterministic in *shape* (round r serves at version
    # r or r+1) without serializing the append against the reads.
    rounds = threading.Barrier(n_readers + 1)

    def reader(index):
        try:
            for _ in range(per_request_rounds):
                rounds.wait()
                for text in QUERIES:
                    served = server.serve(text)
                    records[index].append((text, served))
        except BaseException as exc:  # surfaces after join
            failures.append(exc)

    def appender():
        try:
            for round_index in range(per_request_rounds):
                rounds.wait()
                if round_index < len(updates):
                    store.append_snapshot(updates[round_index])
        except BaseException as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(n_readers)
    ]
    threads.append(threading.Thread(target=appender))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[0]
    assert server.version == len(updates)

    served_versions = set()
    checked = {}
    for bucket in records:
        assert bucket  # every reader made progress
        for text, served in bucket:
            served_versions.add(served.version)
            graph = store.at_version(served.version).graph
            # One full replay per (query, version); identical repeats of
            # the same pair still re-check against the shared replay.
            key = (text, served.version)
            if key not in checked:
                checked[key] = run_query(graph, text)
            _assert_matches(text, served.result, graph)
    # Appends interleaved with serving: more than one version answered.
    assert len(served_versions) >= 2, served_versions


def test_sessions_stay_consistent_under_appends(paper_graph):
    """Concurrent session.query callers during appends: each result must
    match a from-scratch evaluation of some published version."""
    session = GraphTempoSession(paper_graph)
    session.stream  # install the refresh hook before readers start
    text = "aggregate gender all over union [t0], [t1]"
    results = []
    failures = []
    done = threading.Event()

    def reader():
        try:
            while not done.is_set():
                results.append(session.serve(text))
        except BaseException as exc:
            failures.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    for update in _updates(4):
        session.append(update)
    done.set()
    for thread in threads:
        thread.join()
    assert not failures, failures[0]
    assert results
    for served in results:
        graph = session.stream.at_version(served.version).graph
        _assert_matches(text, served.result, graph)
