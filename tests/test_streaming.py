"""Tests for streaming ingestion: events, the versioned store and
delta-maintained views."""

import numpy as np
import pytest

from repro.core import SnapshotUpdate, aggregate, aggregate_evolution
from repro.core.updates import split_history
from repro.errors import (
    ExplorationError,
    MaterializationError,
    ValidationError,
)
from repro.exploration import (
    ChainEvaluator,
    EntityKind,
    EventCounter,
    EventType,
    ExtendSide,
    Semantics,
)
from repro.session import GraphTempoSession
from repro.streaming import (
    EdgeEvent,
    EvolutionView,
    ExplorationView,
    GraphVersion,
    NodeEvent,
    StreamingStore,
    StreamingView,
    batch_events,
)
from repro.testing import assert_same_graph


def make_update(time="t3"):
    return SnapshotUpdate(
        time=time,
        nodes={
            "u2": {"publications": 2},
            "u5": {"publications": 1},
            "u9": {"publications": 4},
        },
        static={"u9": {"gender": "f"}},
        edges=[("u5", "u2"), ("u9", "u2")],
    )


class TestEvents:
    def test_events_are_frozen_copies(self):
        attrs = {"publications": 1}
        event = NodeEvent(time="t3", node="u2", attrs=attrs)
        attrs["publications"] = 9
        assert event.attrs == {"publications": 1}

    def test_edge_normalized_to_tuple(self):
        event = EdgeEvent(time="t3", edge=["u5", "u2"])
        assert event.edge == ("u5", "u2")
        assert isinstance(event.edge, tuple)

    def test_batching_groups_by_first_seen_time(self):
        updates = batch_events(
            [
                NodeEvent("t3", "a"),
                NodeEvent("t4", "b"),
                NodeEvent("t3", "c"),
            ]
        )
        assert [u.time for u in updates] == ["t3", "t4"]
        assert set(updates[0].nodes) == {"a", "c"}

    def test_node_events_merge_later_wins(self):
        (update,) = batch_events(
            [
                NodeEvent("t3", "a", attrs={"publications": 1}),
                NodeEvent("t3", "a", attrs={"publications": 2}),
            ]
        )
        assert update.nodes["a"] == {"publications": 2}

    def test_edges_dedupe_and_endpoints_get_presence(self):
        (update,) = batch_events(
            [
                EdgeEvent("t3", ("a", "b")),
                EdgeEvent("t3", ("a", "b")),
            ]
        )
        assert update.edges == (("a", "b"),)
        assert set(update.nodes) == {"a", "b"}

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValidationError):
            batch_events([NodeEvent("t3", "a"), "not an event"])


class TestStreamingStore:
    def test_initial_version_is_zero(self, paper_graph):
        store = StreamingStore(paper_graph)
        assert store.version == 0
        assert store.graph is paper_graph
        assert store.latest == GraphVersion(0, paper_graph)

    def test_append_publishes_monotonic_versions(self, paper_graph):
        store = StreamingStore(paper_graph)
        v1 = store.append_snapshot(make_update("t3"))
        v2 = store.append_snapshot(
            SnapshotUpdate(time="t4", nodes={"u9": {"publications": 5}})
        )
        assert (v1.version, v2.version) == (1, 2)
        assert store.version == 2
        assert v2.graph.timeline.labels == ("t0", "t1", "t2", "t3", "t4")

    def test_pinned_version_is_stable(self, paper_graph):
        store = StreamingStore(paper_graph)
        pinned = store.pin()
        store.append_snapshot(make_update())
        assert pinned.version == 0
        assert pinned.graph.timeline.labels == ("t0", "t1", "t2")
        assert store.graph.timeline.labels == ("t0", "t1", "t2", "t3")

    def test_at_version_and_history(self, paper_graph):
        store = StreamingStore(paper_graph)
        store.append_snapshot(make_update())
        assert store.at_version(0).graph is paper_graph
        assert [v.version for v in store.history()] == [0, 1]
        with pytest.raises(MaterializationError):
            store.at_version(2)
        with pytest.raises(MaterializationError):
            store.at_version(-1)

    def test_empty_timeline_rejected(self):
        from types import SimpleNamespace

        fake = SimpleNamespace(timeline=SimpleNamespace(labels=()))
        with pytest.raises(MaterializationError, match="empty timeline"):
            StreamingStore(fake)

    def test_failed_append_publishes_nothing(self, paper_graph):
        store = StreamingStore(paper_graph)
        with pytest.raises(ValueError):
            store.append_snapshot(SnapshotUpdate(time="t2", nodes={}))
        assert store.version == 0

    def test_hooks_fire_in_order_and_unsubscribe(self, paper_graph):
        store = StreamingStore(paper_graph)
        seen = []
        unsubscribe = store.on_append(lambda v: seen.append(("a", v.version)))
        store.on_append(lambda v: seen.append(("b", v.version)))
        store.append_snapshot(make_update("t3"))
        assert seen == [("a", 1), ("b", 1)]
        unsubscribe()
        unsubscribe()  # idempotent
        store.append_snapshot(SnapshotUpdate(time="t4", nodes={}))
        assert seen == [("a", 1), ("b", 1), ("b", 2)]

    def test_update_batches_events_into_versions(self, paper_graph):
        store = StreamingStore(paper_graph)
        versions = store.update(
            [
                NodeEvent("t3", "u2", attrs={"publications": 2}),
                NodeEvent("t3", "u9", static={"gender": "f"}),
                EdgeEvent("t3", ("u9", "u2")),
                NodeEvent("t4", "u9"),
            ]
        )
        assert [v.version for v in versions] == [1, 2]
        graph = store.graph
        assert graph.edge_times(("u9", "u2")) == ("t3",)
        assert graph.attribute_value("u9", "gender") == "f"
        assert graph.node_times("u9") == ("t3", "t4")

    def test_from_history_replays_identically(self, tiny_graph):
        store = StreamingStore.from_history(tiny_graph)
        assert store.version == len(tiny_graph.timeline.labels) - 1
        assert_same_graph(store.graph, tiny_graph)

    def test_failing_view_rolls_back(self, paper_graph):
        class ExplodingView(StreamingView):
            def __init__(self):
                self.rebuilds = 0

            def rebuild(self, graph):
                self.rebuilds += 1

            def extend(self, graph, update):
                raise RuntimeError("boom")

        exploding = ExplodingView()
        evolution = EvolutionView(["gender"])
        store = StreamingStore(paper_graph, views=[evolution, exploding])
        with pytest.raises(RuntimeError):
            store.append_snapshot(make_update())
        # Nothing published, and every view was rebuilt over the
        # still-current graph, so none drifts from the published state.
        assert store.version == 0
        assert exploding.rebuilds == 2
        with pytest.raises(ValidationError):
            evolution.current()

    def test_base_view_contract_is_abstract(self, paper_graph):
        view = StreamingView()
        with pytest.raises(NotImplementedError):
            view.rebuild(paper_graph)
        with pytest.raises(NotImplementedError):
            view.extend(paper_graph, make_update())


class TestEvolutionView:
    def test_matches_from_scratch_overlay(self, paper_graph):
        view = EvolutionView(["gender"])
        store = StreamingStore(paper_graph, views=[view])
        store.append_snapshot(make_update("t3"))
        store.append_snapshot(
            SnapshotUpdate(time="t4", nodes={"u9": {"publications": 5}})
        )
        direct = aggregate_evolution(
            store.graph, ["t0", "t1", "t2"], ["t3", "t4"], ["gender"]
        )
        assert view.current().diff(direct) == ()

    def test_windows_exposed(self, paper_graph):
        view = EvolutionView(["gender"], old_times=["t1", "t2"])
        store = StreamingStore(paper_graph, views=[view])
        store.append_snapshot(make_update())
        assert view.old_times == ("t1", "t2")
        assert view.new_times == ("t3",)

    def test_empty_new_window_rejected(self, paper_graph):
        view = EvolutionView(["gender"])
        StreamingStore(paper_graph, views=[view])
        with pytest.raises(ValidationError):
            view.current()

    def test_requires_attributes(self):
        with pytest.raises(ValidationError):
            EvolutionView([])

    def test_never_rebuilt_rejected(self, paper_graph):
        with pytest.raises(ValidationError):
            EvolutionView(["gender"]).current()


class TestExplorationView:
    @pytest.mark.parametrize("event", list(EventType))
    @pytest.mark.parametrize(
        "semantics", [Semantics.UNION, Semantics.INTERSECTION]
    )
    def test_steps_match_chain_evaluator(self, tiny_graph, event, semantics):
        initial, updates = split_history(tiny_graph)
        view = ExplorationView(event, semantics=semantics)
        store = StreamingStore(initial, views=[view])
        for update in updates:
            store.append_snapshot(update)
        counter = EventCounter(store.graph, entity=EntityKind.EDGES)
        evaluator = ChainEvaluator(counter, event)
        expected = list(evaluator.chain(0, ExtendSide.NEW, semantics))
        steps = view.steps()
        assert len(steps) == len(expected)
        for got, want in zip(steps, expected):
            assert got.old == want.old
            assert got.new == want.new
            assert got.count == want.count
            # Masks recorded mid-stream predate later entities; rows
            # appended afterwards are absent there, i.e. exactly False.
            padded = np.zeros(want.mask.shape[0], dtype=bool)
            padded[: got.mask.shape[0]] = got.mask
            assert (padded == want.mask).all()
        assert view.counts() == tuple(s.count for s in expected)

    def test_keyed_static_counts(self, paper_graph):
        view = ExplorationView(
            EventType.GROWTH,
            entity=EntityKind.NODES,
            attributes=["gender"],
            key=("f",),
        )
        store = StreamingStore(paper_graph, views=[view])
        store.append_snapshot(make_update())
        counter = EventCounter(
            store.graph,
            entity=EntityKind.NODES,
            attributes=["gender"],
            key=("f",),
        )
        step = next(
            iter(
                ChainEvaluator(counter, EventType.GROWTH).chain(
                    2, ExtendSide.NEW, Semantics.UNION
                )
            )
        )
        assert view.current_count() == step.count

    def test_reference_pinned_to_registration_last_point(self, paper_graph):
        view = ExplorationView(EventType.GROWTH)
        store = StreamingStore(paper_graph, views=[view])
        assert view.reference == 2
        store.append_snapshot(make_update())
        assert view.reference == 2

    def test_first_reaching(self, paper_graph):
        view = ExplorationView(EventType.GROWTH, entity=EntityKind.NODES)
        store = StreamingStore(paper_graph, views=[view])
        store.append_snapshot(make_update("t3"))  # u9 appears
        store.append_snapshot(SnapshotUpdate(time="t4", nodes={}))
        assert view.first_reaching(1) == 0
        assert view.first_reaching(99) is None

    def test_key_requires_attributes(self):
        with pytest.raises(ExplorationError):
            ExplorationView(EventType.GROWTH, key=("f",))

    def test_varying_attribute_rejected(self, paper_graph):
        view = ExplorationView(
            EventType.GROWTH,
            entity=EntityKind.NODES,
            attributes=["publications"],
            key=(1,),
        )
        with pytest.raises(ExplorationError):
            StreamingStore(paper_graph, views=[view])

    def test_reference_out_of_range(self, paper_graph):
        view = ExplorationView(EventType.GROWTH, reference=9)
        with pytest.raises(ExplorationError):
            StreamingStore(paper_graph, views=[view])

    def test_no_appends_yet_rejected(self, paper_graph):
        view = ExplorationView(EventType.GROWTH)
        StreamingStore(paper_graph, views=[view])
        with pytest.raises(ExplorationError):
            view.current_count()


class TestSessionStreaming:
    def test_append_refreshes_graph_and_cube(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        before = session.cube
        session.append(make_update())
        assert session.graph.timeline.labels == ("t0", "t1", "t2", "t3")
        assert session.cube is not before
        agg = session.aggregate(["gender"], window=("t3",))
        assert agg.node_weight(("f",)) == 2  # u2 and the new u9

    def test_ingest_event_stream(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        session.ingest(
            [
                NodeEvent("t3", "u2", attrs={"publications": 2}),
                NodeEvent("t3", "u9", static={"gender": "f"}),
                EdgeEvent("t3", ("u9", "u2")),
            ]
        )
        assert session.graph.node_times("u9") == ("t3",)
        assert session.stream.version == 1

    def test_stream_is_lazy_and_cached(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        assert session._stream is None
        store = session.stream
        assert session.stream is store

    def test_aggregate_after_append_matches_direct(self, paper_graph):
        session = GraphTempoSession(paper_graph)
        session.append(make_update())
        direct = aggregate(
            session.graph, ["gender"], distinct=True, times=["t3"]
        )
        agg = session.aggregate(["gender"], window=("t3",))
        assert dict(agg.node_weights) == dict(direct.node_weights)
