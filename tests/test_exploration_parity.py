"""Parity suite: the incremental chain evaluator vs. the naive path.

The incremental engine (reference mask once per chain, extended mask
maintained by one OR/AND per step, vectorized appearance counting) must
be *bit-identical* to the naive per-pair evaluation across all eight
Table-1 strategy cases, on the example graph and on the MovieLens/DBLP
fixtures, with static and time-varying attributes, with and without
keys.  Any drift here is a correctness bug, not a tolerance issue.
"""

import itertools

import numpy as np
import pytest

from repro.core import Interval
from repro.core.aggregation import _node_tuple_table
from repro.exploration import (
    ChainEvaluator,
    EntityKind,
    EventCounter,
    EventType,
    ExtendSide,
    Goal,
    Semantics,
    Side,
    consecutive_event_counts,
    exhaustive_explore,
    explore,
)

TABLE1_CASES = list(itertools.product(EventType, Goal, ExtendSide))

# (fixture name, [(entity, attributes, key), ...]) — static-only,
# time-varying, keyed and keyless configurations per dataset.
COUNTER_CONFIGS = {
    "paper_graph": [
        (EntityKind.EDGES, (), None),
        (EntityKind.NODES, ("gender",), ("f",)),
        (EntityKind.EDGES, ("gender",), (("f",), ("f",))),
        (EntityKind.NODES, ("gender", "publications"), ("f", 1)),
        (EntityKind.EDGES, ("publications",), None),
    ],
    "small_movielens": [
        (EntityKind.EDGES, (), None),
        (EntityKind.EDGES, ("gender",), (("f",), ("f",))),
        (EntityKind.EDGES, ("gender", "rating"), None),
    ],
    "small_dblp": [
        (EntityKind.EDGES, (), None),
        (EntityKind.NODES, ("gender",), ("f",)),
        (EntityKind.EDGES, ("publications",), None),
    ],
}

DATASETS = sorted(COUNTER_CONFIGS)


def _graph(request, name):
    return request.getfixturevalue(name)


class TestExploreParity:
    """explore() — all eight Table-1 cases, incremental vs. naive."""

    @pytest.mark.parametrize("event,goal,extend", TABLE1_CASES)
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_table1_case(self, request, dataset, event, goal, extend):
        graph = _graph(request, dataset)
        fast = explore(graph, event, goal, extend, 1, incremental=True)
        slow = explore(graph, event, goal, extend, 1, incremental=False)
        assert fast == slow

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_attribute_configs(self, request, dataset):
        graph = _graph(request, dataset)
        for entity, attributes, key in COUNTER_CONFIGS[dataset]:
            for event, goal, extend in (
                (EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW),
                (EventType.GROWTH, Goal.MINIMAL, ExtendSide.OLD),
                (EventType.SHRINKAGE, Goal.MAXIMAL, ExtendSide.OLD),
            ):
                kwargs = dict(entity=entity, attributes=attributes, key=key)
                fast = explore(
                    graph, event, goal, extend, 1, incremental=True, **kwargs
                )
                slow = explore(
                    graph, event, goal, extend, 1, incremental=False, **kwargs
                )
                assert fast == slow, (entity, attributes, key, event, goal, extend)


class TestExhaustiveParity:
    @pytest.mark.parametrize("event,goal,extend", TABLE1_CASES)
    def test_paper_graph(self, paper_graph, event, goal, extend):
        fast = exhaustive_explore(
            paper_graph, event, goal, extend, 1, incremental=True
        )
        slow = exhaustive_explore(
            paper_graph, event, goal, extend, 1, incremental=False
        )
        assert fast == slow

    @pytest.mark.parametrize("dataset", ["small_movielens", "small_dblp"])
    @pytest.mark.parametrize("extend", ExtendSide)
    def test_fixtures(self, request, dataset, extend):
        graph = _graph(request, dataset)
        fast = exhaustive_explore(
            graph, EventType.STABILITY, Goal.MAXIMAL, extend, 1,
            incremental=True,
        )
        slow = exhaustive_explore(
            graph, EventType.STABILITY, Goal.MAXIMAL, extend, 1,
            incremental=False,
        )
        assert fast == slow


class TestChainStepMasks:
    """Every incremental chain step's mask and count must equal what the
    counter computes from scratch for the same pair."""

    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("extend", ExtendSide)
    @pytest.mark.parametrize("semantics", Semantics)
    def test_chain_masks_bit_identical(self, request, dataset, extend, semantics):
        graph = _graph(request, dataset)
        entity, attributes, key = COUNTER_CONFIGS[dataset][1]
        counter = EventCounter(
            graph, entity=entity, attributes=attributes, key=key
        )
        for event in EventType:
            evaluator = ChainEvaluator(counter, event)
            for reference in range(min(len(graph.timeline) - 1, 4)):
                for step in evaluator.chain(reference, extend, semantics):
                    expected_mask = counter.event_mask(event, step.old, step.new)
                    assert np.array_equal(step.mask, expected_mask)
                    assert step.count == counter.count(event, step.old, step.new)

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_consecutive_and_longest(self, request, dataset):
        graph = _graph(request, dataset)
        counter = EventCounter(graph)
        for event in EventType:
            evaluator = ChainEvaluator(counter, event)
            for walk in (
                evaluator.consecutive(),
                evaluator.longest(ExtendSide.OLD),
                evaluator.longest(ExtendSide.NEW),
            ):
                for step in walk:
                    expected = counter.event_mask(event, step.old, step.new)
                    assert np.array_equal(step.mask, expected)
                    assert step.count == counter.count(event, step.old, step.new)

    def test_evaluations_match_between_modes(self, small_dblp):
        """Pruning decisions are identical, so both modes evaluate the
        same number of pairs."""
        for event, goal, extend in TABLE1_CASES:
            fast = explore(small_dblp, event, goal, extend, 2, incremental=True)
            slow = explore(small_dblp, event, goal, extend, 2, incremental=False)
            assert fast.evaluations == slow.evaluations


class TestVectorizedAppearanceParity:
    """The tuple-code counting path vs. a reimplementation of the seed's
    nested-loop ``_count_appearances`` (kept verbatim as reference)."""

    @staticmethod
    def _seed_count(counter, event, old, new, mask):
        labels = counter.graph.timeline.labels
        if event is EventType.GROWTH:
            window = [labels[i] for i in new.interval.indices()]
        elif event is EventType.SHRINKAGE:
            window = [labels[i] for i in old.interval.indices()]
        else:
            window = [
                labels[i]
                for i in sorted(
                    set(old.interval.indices()) | set(new.interval.indices())
                )
            ]
        node_table = _node_tuple_table(
            counter.graph, counter.attributes, tuple(window)
        )
        if counter.entity is EntityKind.NODES:
            kept = {
                node
                for node, keep in zip(
                    counter.graph.node_presence.row_labels, mask
                )
                if keep
            }
            appearances = {
                (node, values)
                for node, _, values in node_table.rows
                if node in kept
            }
            if counter.key is None:
                return len(appearances)
            wanted = tuple(counter.key)
            return sum(1 for _, values in appearances if values == wanted)
        lookup = {(node, t): values for node, t, values in node_table.rows}
        positions = [counter.graph.timeline.index_of(t) for t in window]
        presence = counter.graph.edge_presence.values
        appearances = set()
        for row, edge in enumerate(counter.graph.edge_presence.row_labels):
            if not mask[row]:
                continue
            u, v = edge
            for t, pos in zip(window, positions):
                if not presence[row, pos]:
                    continue
                source = lookup.get((u, t))
                target = lookup.get((v, t))
                if source is None or target is None:
                    continue
                appearances.add((edge, (source, target)))
        if counter.key is None:
            return len(appearances)
        wanted = (tuple(counter.key[0]), tuple(counter.key[1]))
        return sum(1 for _, pair in appearances if pair == wanted)

    @pytest.mark.parametrize(
        "entity,attributes,key",
        [
            (EntityKind.NODES, ("publications",), None),
            (EntityKind.NODES, ("gender", "publications"), ("f", 1)),
            (EntityKind.EDGES, ("publications",), None),
            (EntityKind.EDGES, ("gender", "publications"), (("f", 1), ("f", 1))),
        ],
    )
    def test_paper_graph_all_pairs(self, paper_graph, entity, attributes, key):
        counter = EventCounter(
            paper_graph, entity=entity, attributes=attributes, key=key
        )
        n = len(paper_graph.timeline)
        spans = list(itertools.combinations(range(n + 1), 2))
        for (a, b), (c, d) in itertools.product(spans, repeat=2):
            for semantics in Semantics:
                old = Side(Interval(a, b - 1), semantics)
                new = Side(Interval(c, d - 1), semantics)
                for event in EventType:
                    mask = counter.event_mask(event, old, new)
                    assert counter.count(event, old, new) == self._seed_count(
                        counter, event, old, new, mask
                    )

    @pytest.mark.parametrize("dataset", ["small_movielens", "small_dblp"])
    def test_fixtures_spot_pairs(self, request, dataset):
        graph = _graph(request, dataset)
        attrs = ("rating",) if dataset == "small_movielens" else ("publications",)
        for entity in EntityKind:
            counter = EventCounter(graph, entity=entity, attributes=attrs)
            n = len(graph.timeline)
            pairs = [
                (Side.point(0), Side.point(1)),
                (Side(Interval(0, 1), Semantics.UNION),
                 Side(Interval(2, min(3, n - 1)), Semantics.UNION)),
                (Side(Interval(0, 2), Semantics.INTERSECTION),
                 Side(Interval(1, min(3, n - 1)), Semantics.INTERSECTION)),
            ]
            for old, new in pairs:
                for event in EventType:
                    mask = counter.event_mask(event, old, new)
                    assert counter.count(event, old, new) == self._seed_count(
                        counter, event, old, new, mask
                    )


class TestDownstreamParity:
    def test_consecutive_counts_match_manual(self, small_dblp):
        for event in EventType:
            counter = EventCounter(small_dblp)
            manual = [
                counter.count(event, Side.point(i), Side.point(i + 1))
                for i in range(len(small_dblp.timeline) - 1)
            ]
            assert consecutive_event_counts(small_dblp, event) == manual

    def test_two_sided_counts_match_counter(self, paper_graph):
        from repro.exploration import two_sided_counts

        for event in EventType:
            for semantics in Semantics:
                counter = EventCounter(paper_graph)
                for pair in two_sided_counts(paper_graph, event, semantics):
                    expected = counter.count(
                        event,
                        Side(pair.old, semantics),
                        Side(pair.new, semantics),
                    )
                    assert pair.count == expected
