"""Unit tests for the relational Table and unpivot."""

import pytest

from repro.frames import LabeledFrame, SchemaError, Table, unpivot


@pytest.fixture()
def table():
    return Table(
        ["id", "t", "value"],
        [
            ("u1", "t0", 3),
            ("u1", "t1", 1),
            ("u2", "t0", 1),
            ("u2", "t1", 1),
            ("u2", "t0", 1),  # duplicate row
        ],
    )


class TestConstruction:
    def test_columns(self, table):
        assert table.columns == ("id", "t", "value")

    def test_len(self, table):
        assert len(table) == 5

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(["a", "a"])

    def test_bad_row_width_rejected(self):
        with pytest.raises(SchemaError):
            Table(["a", "b"], [(1,)])

    def test_iteration(self, table):
        assert next(iter(table)) == ("u1", "t0", 3)

    def test_equality(self, table):
        assert table == Table(table.columns, table.rows)
        assert table != Table(table.columns, [])

    def test_equality_other_type(self, table):
        assert table.__eq__("x") is NotImplemented

    def test_repr(self, table):
        assert "n_rows=5" in repr(table)


class TestMutation:
    def test_append(self):
        table = Table(["a"])
        table.append((1,))
        assert table.rows == [(1,)]

    def test_append_wrong_width(self):
        table = Table(["a"])
        with pytest.raises(SchemaError):
            table.append((1, 2))

    def test_extend(self):
        table = Table(["a"])
        table.extend([(1,), (2,)])
        assert len(table) == 2


class TestRelationalOps:
    def test_select(self, table):
        kept = table.select(lambda row: row[2] == 3)
        assert kept.rows == [("u1", "t0", 3)]

    def test_project(self, table):
        projected = table.project(["value", "id"])
        assert projected.columns == ("value", "id")
        assert projected.rows[0] == (3, "u1")

    def test_project_unknown_column(self, table):
        with pytest.raises(SchemaError):
            table.project(["missing"])

    def test_rename(self, table):
        renamed = table.rename({"value": "pubs"})
        assert renamed.columns == ("id", "t", "pubs")
        assert renamed.rows == table.rows

    def test_rename_unknown(self, table):
        with pytest.raises(SchemaError):
            table.rename({"missing": "x"})

    def test_concat(self, table):
        doubled = table.concat(table)
        assert len(doubled) == 10

    def test_concat_schema_mismatch(self, table):
        with pytest.raises(SchemaError):
            table.concat(Table(["x"]))

    def test_concat_does_not_mutate(self, table):
        table.concat(table)
        assert len(table) == 5

    def test_column_values(self, table):
        assert table.column_values("id") == ["u1", "u1", "u2", "u2", "u2"]

    def test_column_position_unknown(self, table):
        with pytest.raises(SchemaError):
            table.column_position("zzz")


class TestDeduplicate:
    def test_full_row_dedup(self, table):
        deduped = table.deduplicate()
        assert len(deduped) == 4

    def test_key_dedup(self, table):
        deduped = table.deduplicate(["id"])
        assert len(deduped) == 2

    def test_dedup_keeps_first(self, table):
        deduped = table.deduplicate(["id"])
        assert deduped.rows[0] == ("u1", "t0", 3)

    def test_dedup_unknown_key(self, table):
        with pytest.raises(SchemaError):
            table.deduplicate(["nope"])


class TestJoin:
    @pytest.fixture()
    def left(self):
        return Table(["id", "t"], [("u1", 0), ("u2", 0), ("u3", 1)])

    @pytest.fixture()
    def right(self):
        return Table(["id", "gender"], [("u1", "m"), ("u2", "f")])

    def test_inner_join(self, left, right):
        joined = left.join(right, on=["id"])
        assert joined.columns == ("id", "t", "gender")
        assert len(joined) == 2

    def test_left_join_fills_none(self, left, right):
        joined = left.join(right, on=["id"], how="left")
        assert len(joined) == 3
        assert joined.rows[-1] == ("u3", 1, None)

    def test_join_multiplies_matches(self, left):
        right = Table(["id", "x"], [("u1", 1), ("u1", 2)])
        joined = left.join(right, on=["id"])
        assert len(joined) == 2

    def test_join_bad_how(self, left, right):
        with pytest.raises(SchemaError):
            left.join(right, on=["id"], how="outer")

    def test_join_duplicate_output_column(self, left):
        clash = Table(["id", "t"], [("u1", 9)])
        with pytest.raises(SchemaError):
            left.join(clash, on=["id"])


class TestGroupBy:
    def test_groupby_count(self, table):
        counts = table.groupby_count(["id"])
        assert counts == {("u1",): 2, ("u2",): 3}

    def test_groupby_count_composite_key(self, table):
        counts = table.groupby_count(["id", "t"])
        assert counts[("u2", "t0")] == 2

    def test_groupby_sum(self, table):
        sums = table.groupby_sum(["id"], "value")
        assert sums == {("u1",): 4, ("u2",): 3}

    def test_groupby_agg_max(self, table):
        result = table.groupby_agg(["id"], "value", max)
        assert result == {("u1",): 3, ("u2",): 1}

    def test_groupby_agg_mean(self, table):
        result = table.groupby_agg(
            ["id"], "value", lambda xs: sum(xs) / len(xs)
        )
        assert result[("u1",)] == 2.0

    def test_groupby_empty_table(self):
        table = Table(["a", "b"])
        assert table.groupby_count(["a"]) == {}


class TestUnpivot:
    def test_unpivot_drops_none(self):
        frame = LabeledFrame(
            ["u1", "u2"], ["t0", "t1"], [[3, None], [1, 1]]
        )
        long = unpivot(frame)
        assert ("u1", "t1", None) not in long.rows
        assert len(long) == 3

    def test_unpivot_keep_missing(self):
        frame = LabeledFrame(["u1"], ["t0", "t1"], [[3, None]])
        long = unpivot(frame, drop_missing=False)
        assert len(long) == 2

    def test_unpivot_column_names(self):
        frame = LabeledFrame(["u1"], ["t0"], [[7]])
        long = unpivot(frame, row_name="node", col_name="year", value_name="pubs")
        assert long.columns == ("node", "year", "pubs")
        assert long.rows == [("u1", "t0", 7)]

    def test_unpivot_row_order_is_rowwise(self):
        frame = LabeledFrame(["a", "b"], ["x", "y"], [[1, 2], [3, 4]])
        long = unpivot(frame)
        assert [row[2] for row in long.rows] == [1, 2, 3, 4]

    def test_unpivot_drops_nan_on_float_frames(self):
        # Regression: drop_missing used to recognize None on object
        # arrays only, silently keeping NaN rows from float frames.
        import numpy as np

        frame = LabeledFrame(
            ["u1", "u2"],
            ["t0", "t1"],
            np.array([[3.0, np.nan], [1.0, 1.0]], dtype=float),
        )
        long = unpivot(frame)
        assert len(long) == 3
        assert all(not np.isnan(row[2]) for row in long.rows)

    def test_unpivot_keeps_nan_when_not_dropping(self):
        import numpy as np

        frame = LabeledFrame(
            ["u1"], ["t0", "t1"], np.array([[3.0, np.nan]], dtype=float)
        )
        assert len(unpivot(frame, drop_missing=False)) == 2

    def test_unpivot_bool_and_int_frames_keep_all_cells(self):
        # Bool/int arrays have no missing representation; the all-cells
        # fast path must not change under drop_missing.
        import numpy as np

        for dtype in (bool, np.int64):
            frame = LabeledFrame(
                ["u1", "u2"],
                ["t0", "t1"],
                np.array([[1, 0], [0, 1]], dtype=dtype),
            )
            assert len(unpivot(frame)) == 4

    def test_to_string(self, table):
        text = table.to_string(max_rows=2)
        assert "id" in text and "more rows" in text


class TestOrderLimitDistinct:
    def test_order_by_numeric(self, table):
        ordered = table.order_by(["value"])
        assert [r[2] for r in ordered.rows] == [1, 1, 1, 1, 3]

    def test_order_by_descending(self, table):
        ordered = table.order_by(["value"], descending=True)
        assert ordered.rows[0][2] == 3

    def test_order_by_descending_keeps_tie_order(self):
        # Regression: descending used sorted(reverse=True), which
        # reverses the original order of equal keys.
        rows = [("a", 1), ("b", 2), ("c", 1), ("d", 2), ("e", 1)]
        ordered = Table(["k", "x"], rows).order_by(["x"], descending=True)
        assert [r[0] for r in ordered.rows] == ["b", "d", "a", "c", "e"]

    def test_order_by_descending_string_ties(self):
        rows = [("a", "low"), ("b", "high"), ("c", "low"), ("d", "high")]
        ordered = Table(["k", "x"], rows).order_by(["x"], descending=True)
        assert [r[0] for r in ordered.rows] == ["a", "c", "b", "d"]

    def test_order_by_descending_mixed_types(self):
        # Descending is the exact reverse of the ascending *order* (not
        # the ascending rows): strings before numbers, each descending.
        rows = [("a", 2), ("b", "high"), ("c", 5), ("d", "alpha")]
        ordered = Table(["k", "x"], rows).order_by(["x"], descending=True)
        assert [r[1] for r in ordered.rows] == ["high", "alpha", 5, 2]

    def test_order_by_descending_multi_column(self):
        rows = [("a", 1, "x"), ("b", 1, "y"), ("c", 2, "x")]
        ordered = Table(["k", "n", "s"], rows).order_by(
            ["n", "s"], descending=True
        )
        assert [r[0] for r in ordered.rows] == ["c", "b", "a"]

    def test_order_by_multiple_columns(self, table):
        ordered = table.order_by(["id", "t"])
        assert ordered.rows[0][:2] == ("u1", "t0")

    def test_order_by_is_stable(self):
        rows = [("a", 1, 10), ("b", 1, 20), ("c", 1, 30)]
        ordered = Table(["k", "x", "v"], rows).order_by(["x"])
        assert [r[0] for r in ordered.rows] == ["a", "b", "c"]

    def test_order_by_mixed_types(self):
        rows = [("a", 2, 1), ("b", "high", 1)]
        ordered = Table(["k", "x", "v"], rows).order_by(["x"])
        # Numbers sort before strings; no TypeError.
        assert ordered.rows[0][1] == 2

    def test_order_by_unknown_column(self, table):
        with pytest.raises(SchemaError):
            table.order_by(["zzz"])

    def test_limit(self, table):
        assert len(table.limit(2)) == 2
        assert len(table.limit(99)) == 5

    def test_limit_negative(self, table):
        with pytest.raises(SchemaError):
            table.limit(-1)

    def test_distinct_values(self, table):
        assert table.distinct_values("id") == ["u1", "u2"]
        assert table.distinct_values("value") == [3, 1]
