"""Parallel-vs-serial parity: pooled results must be bit-identical.

The executor contract says results never depend on which executor ran.
This suite enforces it at every fan-out site:

* aggregation (both engines, DIST and ALL) — ``diff()`` against the
  serial run and against the forced-general oracle engine;
* evolution and session facades under a ``parallelism_scope``;
* all eight Table-1 exploration cases plus the exhaustive oracle —
  identical pairs *and* identical evaluation counts (the pruning must
  not change when chains are distributed);
* every registered fuzz law, replayed under the inline executor and
  under a 2-worker scope with the implicit-parallelism work floor
  removed, so even tiny operations actually cross the pool.

Pool startup is real (~10ms per fan-out), so cases here stay small;
the scaling story lives in ``benchmarks/bench_parallel_speedup.py``.
"""

from __future__ import annotations

import itertools

import pytest

from tests.conftest import TEST_SEED, make_tiny_graph
from repro.core import aggregate, aggregate_evolution
from repro.core.aggregation import aggregate_general
from repro.datasets import paper_example
from repro.exploration import (
    EntityKind,
    EventType,
    ExtendSide,
    Goal,
    exhaustive_explore,
    explore,
)
from repro.parallel import parallelism_scope
from repro.session import GraphTempoSession
from repro.testing import law_registry, run_fuzz

WORKER_COUNTS = (2, 4)

ALL_CASES = tuple(itertools.product(EventType, Goal, ExtendSide))


@pytest.fixture()
def no_work_floor(monkeypatch):
    """Remove the implicit-parallelism gate so tiny graphs still pool."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_WORK", "0")


@pytest.fixture(scope="module")
def graph():
    return make_tiny_graph(seed=17 + TEST_SEED, n_times=7)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("distinct", [True, False])
@pytest.mark.parametrize(
    "attributes",
    [["color"], ["level"], ["color", "level"]],
    ids=["static", "varying", "mixed"],
)
def test_aggregate_parity(graph, attributes, distinct, workers):
    serial = aggregate(graph, attributes, distinct=distinct)
    pooled = aggregate(
        graph, attributes, distinct=distinct, parallelism=workers
    )
    assert serial.diff(pooled) == ()
    assert pooled.diff(serial) == ()


def test_parallel_aggregate_matches_forced_general_oracle(graph):
    # The PR-4 differential oracle's baseline engine stays serial; the
    # pooled dispatching engine must still agree with it bit for bit.
    for distinct in (True, False):
        oracle = aggregate_general(graph, ["color"], distinct=distinct)
        pooled = aggregate(graph, ["color"], distinct=distinct, parallelism=2)
        assert oracle.diff(pooled) == ()


def test_aggregate_parity_on_sub_window(graph):
    window = graph.timeline.labels[1:5]
    serial = aggregate(graph, ["level"], distinct=True, times=window)
    pooled = aggregate(
        graph, ["level"], distinct=True, times=window, parallelism=3
    )
    assert serial.diff(pooled) == ()


def test_evolution_parity_under_scope(graph, no_work_floor):
    labels = graph.timeline.labels
    serial = aggregate_evolution(graph, labels[:3], labels[3:], ["color"])
    with parallelism_scope(2):
        pooled = aggregate_evolution(graph, labels[:3], labels[3:], ["color"])
    assert serial.diff(pooled) == ()


def test_session_parity_under_session_parallelism(no_work_floor):
    graph = paper_example()
    serial = GraphTempoSession(graph)
    pooled = GraphTempoSession(graph, parallelism=2)
    window = ("t0", "t1")
    assert (
        serial.aggregate(["gender"], window=window)
        .diff(pooled.aggregate(["gender"], window=window))
        == ()
    )
    a = serial.explore("growth", "minimal", "new", k=1)
    b = pooled.explore("growth", "minimal", "new", k=1)
    assert a.diff(b) == ()
    assert a.evaluations == b.evaluations


# ----------------------------------------------------------------------
# Exploration: all eight Table-1 cases + the exhaustive oracle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize(
    "event,goal,extend",
    ALL_CASES,
    ids=[f"{e}-{g}-{x}" for e, g, x in ALL_CASES],
)
def test_explore_parity_every_case(graph, event, goal, extend, workers):
    serial = explore(graph, event, goal, extend, 1)
    pooled = explore(graph, event, goal, extend, 1, parallelism=workers)
    assert serial.diff(pooled) == ()
    # Bit-identical means the pruning decisions too, not just the pairs.
    assert serial.pairs == pooled.pairs
    assert serial.evaluations == pooled.evaluations


@pytest.mark.parametrize("incremental", [True, False])
def test_explore_parity_incremental_and_naive(graph, incremental):
    serial = explore(
        graph,
        EventType.STABILITY,
        Goal.MAXIMAL,
        ExtendSide.NEW,
        2,
        incremental=incremental,
    )
    pooled = explore(
        graph,
        EventType.STABILITY,
        Goal.MAXIMAL,
        ExtendSide.NEW,
        2,
        incremental=incremental,
        parallelism=2,
    )
    assert serial.diff(pooled) == ()
    assert serial.evaluations == pooled.evaluations


@pytest.mark.parametrize(
    "event,goal,extend",
    [
        (EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW),
        (EventType.GROWTH, Goal.MAXIMAL, ExtendSide.OLD),
        (EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD),
    ],
)
def test_exhaustive_explore_parity(graph, event, goal, extend):
    serial = exhaustive_explore(graph, event, goal, extend, 1)
    pooled = exhaustive_explore(graph, event, goal, extend, 1, parallelism=2)
    assert serial.diff(pooled) == ()
    assert serial.evaluations == pooled.evaluations


def test_explore_parity_with_attribute_key(graph):
    serial = explore(
        graph,
        EventType.GROWTH,
        Goal.MINIMAL,
        ExtendSide.NEW,
        1,
        entity=EntityKind.NODES,
        attributes=["color"],
        key=("red",),
    )
    pooled = explore(
        graph,
        EventType.GROWTH,
        Goal.MINIMAL,
        ExtendSide.NEW,
        1,
        entity=EntityKind.NODES,
        attributes=["color"],
        key=("red",),
        parallelism=2,
    )
    assert serial.diff(pooled) == ()


# ----------------------------------------------------------------------
# The full law registry under both executors
# ----------------------------------------------------------------------


def test_registry_is_complete():
    assert len(law_registry()) >= 23


def test_all_laws_hold_under_inline_executor(test_seed):
    report = run_fuzz(seed=test_seed, cases=3, shrink=False)
    assert report.ok, report.summary() + "".join(
        f"\n{f}" for f in report.failures
    )


def test_all_laws_hold_under_parallel_executor(test_seed, no_work_floor):
    with parallelism_scope(2):
        report = run_fuzz(seed=test_seed, cases=3, shrink=False)
    assert report.ok, report.summary() + "".join(
        f"\n{f}" for f in report.failures
    )


def test_fuzz_replay_identical_under_both_executors(test_seed, no_work_floor):
    serial = run_fuzz(seed=test_seed, cases=2, shrink=False)
    with parallelism_scope(2):
        pooled = run_fuzz(seed=test_seed, cases=2, shrink=False)
    assert serial.ok == pooled.ok
    assert serial.checks == pooled.checks
    assert serial.laws == pooled.laws
    assert [str(f) for f in serial.failures] == [
        str(f) for f in pooled.failures
    ]
