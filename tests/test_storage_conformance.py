"""Backend-parity conformance suite for :mod:`repro.storage`.

Every registered storage backend must be observably interchangeable:
same aggregates, same exploration results (pairs *and* evaluation
counts), same presence masks bit for bit, same taxonomy errors on
hostile graphs.  The suite drives each backend through:

* the registry/selection contract (``register_backend``,
  ``resolve_backend_name``, the ``REPRO_STORAGE_BACKEND`` env default);
* all eight Table-1 exploration cases against the dense baseline;
* every registered fuzz law, replayed on backend-pinned graphs;
* ``EventCounter`` event-mask bit-equality for every event type;
* streaming replay identity (``StreamingStore.from_history``) with the
  backend selection surviving each append;
* error-taxonomy parity on hostile graphs (dangling edges);
* hypothesis round-trip properties: ``frames -> backend -> to_frames``
  is the identity, and ``slice_time`` agrees with dense slicing.

The ``backend-storage`` differential law in ``repro.testing.oracle``
re-checks the same parity continuously under ``repro fuzz``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import TEST_SEED, make_tiny_graph
from repro.core import Interval, aggregate, presence_signature
from repro.diagnostics import check_graph
from repro.errors import (
    AggregationError,
    GraphTempoError,
    LabelError,
    StorageError,
)
from repro.exploration import EntityKind, EventType, ExtendSide, Goal, explore
from repro.exploration.events import EventCounter
from repro.exploration.lattice import Semantics, Side
from repro.session import GraphTempoSession
from repro.storage import (
    ENV_BACKEND,
    ColumnarBackend,
    DenseBackend,
    GraphStorageBackend,
    backend_names,
    frames_of,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.streaming import StreamingStore
from repro.testing import (
    GraphSpec,
    law_registry,
    random_temporal_graph,
    temporal_graphs,
)

BACKENDS = tuple(sorted(backend_names()))
ALL_CASES = tuple(itertools.product(EventType, Goal, ExtendSide))
LAW_NAMES = tuple(law_registry())


def pinned(graph, backend: str):
    """The same graph rebuilt through ``backend`` (storage attached)."""
    return get_backend(backend).from_graph(graph).to_graph()


def assert_frames_equal(actual, reference):
    """Frame-level observable equality (presence compared as booleans —
    backends may normalize presence counts to 0/1)."""
    assert actual.times == reference.times
    for entity in ("node_presence", "edge_presence"):
        left = getattr(actual, entity)
        right = getattr(reference, entity)
        assert left.row_labels == right.row_labels
        assert left.col_labels == right.col_labels
        assert np.array_equal(
            left.values.astype(bool), right.values.astype(bool)
        )
    assert actual.static_attrs == reference.static_attrs
    assert set(actual.varying_attrs) == set(reference.varying_attrs)
    for name, frame in reference.varying_attrs.items():
        assert actual.varying_attrs[name] == frame
    if reference.edge_attrs is None:
        assert actual.edge_attrs is None
    else:
        assert actual.edge_attrs == reference.edge_attrs


@pytest.fixture(scope="module")
def graph():
    return make_tiny_graph(seed=29 + TEST_SEED, n_times=7)


# ----------------------------------------------------------------------
# Registry and selection contract
# ----------------------------------------------------------------------


def test_both_backends_registered():
    assert {"dense", "columnar"} <= set(BACKENDS)
    assert get_backend("dense") is DenseBackend
    assert get_backend("columnar") is ColumnarBackend


def test_unknown_backend_rejected():
    with pytest.raises(StorageError, match="columnar"):
        get_backend("nonexistent")
    with pytest.raises(StorageError):
        resolve_backend_name("nonexistent")


def test_duplicate_registration_rejected():
    with pytest.raises(StorageError, match="already registered"):

        @register_backend
        class ShadowDense(DenseBackend):  # pragma: no cover - never used
            name = "dense"


def test_resolution_defaults_to_dense(monkeypatch):
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    assert resolve_backend_name(None) == "dense"
    assert resolve_backend_name("columnar") == "columnar"


def test_env_var_sets_the_default_backend(monkeypatch, graph):
    monkeypatch.setenv(ENV_BACKEND, "columnar")
    fresh = make_tiny_graph(seed=29 + TEST_SEED, n_times=3)
    assert fresh.storage.name == "columnar"
    assert isinstance(fresh.storage, ColumnarBackend)
    # An explicit selection always beats the env default.
    assert fresh.with_storage("dense").storage.name == "dense"


def test_invalid_env_value_raises(monkeypatch):
    monkeypatch.setenv(ENV_BACKEND, "bogus")
    fresh = make_tiny_graph(seed=29 + TEST_SEED, n_times=3)
    with pytest.raises(StorageError):
        fresh.storage


@pytest.mark.parametrize("backend", BACKENDS)
def test_with_storage_pins_without_mutating(graph, backend):
    variant = graph.with_storage(backend)
    assert variant is not graph
    assert variant.storage_name == backend
    assert variant.storage.name == backend
    assert isinstance(variant.storage, GraphStorageBackend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_restriction_propagates_the_selection(graph, backend):
    variant = graph.with_storage(backend)
    window = list(graph.timeline.labels[:3])
    sub = variant.restricted(
        variant.node_presence.rows_any(window),
        variant.edge_presence.rows_any(window),
        window,
    )
    assert sub.storage_name == backend


def test_session_pins_every_adopted_graph(graph):
    dense = GraphTempoSession(graph)
    columnar = GraphTempoSession(graph, storage="columnar")
    assert columnar.graph.storage.name == "columnar"
    window = tuple(graph.timeline.labels[:2])
    assert (
        dense.aggregate(["color"], window=window)
        .diff(columnar.aggregate(["color"], window=window))
        == ()
    )


# ----------------------------------------------------------------------
# Mask semantics: bit-equality, duplicates, empty/unknown windows
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("entity", ["nodes", "edges"])
@pytest.mark.parametrize("mode", ["any", "all", "none"])
def test_presence_mask_bit_equality(graph, backend, entity, mode):
    variant = pinned(graph, backend)
    labels = graph.timeline.labels
    windows = [
        list(labels),
        list(labels[:1]),
        list(labels[2:5]),
        [labels[0], labels[0], labels[3]],  # duplicates reduce as a set
    ]
    for window in windows:
        expected = graph.presence_mask(entity, window, mode)
        actual = variant.presence_mask(entity, window, mode)
        assert np.array_equal(expected, actual), (backend, mode, window)
    assert np.array_equal(
        graph.presence_mask(entity, None, mode),
        variant.presence_mask(entity, None, mode),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_window_masks_are_vacuous(graph, backend):
    storage = get_backend(backend).from_graph(graph)
    n = len(storage.node_labels)
    assert not storage.presence_mask("nodes", [], "any").any()
    assert storage.presence_mask("nodes", [], "all").sum() == n
    assert storage.presence_mask("nodes", [], "none").sum() == n


@pytest.mark.parametrize("backend", BACKENDS)
def test_unknown_window_label_raises(graph, backend):
    storage = get_backend(backend).from_graph(graph)
    with pytest.raises(LabelError):
        storage.presence_mask("nodes", ["no-such-time"])


@pytest.mark.parametrize("backend", BACKENDS)
def test_unknown_mask_mode_raises(graph, backend):
    storage = get_backend(backend).from_graph(graph)
    with pytest.raises(StorageError, match="mode"):
        storage.presence_mask("nodes", None, "sometimes")


@pytest.mark.parametrize("backend", BACKENDS)
def test_attribute_column_contract(graph, backend):
    storage = get_backend(backend).from_graph(graph)
    static = storage.attribute_column("color")
    assert list(static) == list(graph.static_attrs.column("color"))
    t = graph.timeline.labels[1]
    varying = storage.attribute_column("level", t)
    assert list(varying) == list(graph.varying_attrs["level"].column(t))
    with pytest.raises(LabelError):
        storage.attribute_column("no-such-attribute")
    with pytest.raises(StorageError):
        storage.attribute_column("level")  # varying needs a time point
    with pytest.raises(StorageError):
        storage.attribute_column("color", t)  # static must not take one


# ----------------------------------------------------------------------
# Table-1 exploration cases against the dense baseline
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "event,goal,extend",
    ALL_CASES,
    ids=[f"{e}-{g}-{x}" for e, g, x in ALL_CASES],
)
def test_table1_cases_agree(graph, backend, event, goal, extend):
    baseline = explore(graph, event, goal, extend, 1)
    variant = explore(pinned(graph, backend), event, goal, extend, 1)
    assert baseline.diff(variant) == ()
    assert baseline.pairs == variant.pairs
    assert baseline.evaluations == variant.evaluations


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("distinct", [True, False])
@pytest.mark.parametrize(
    "attributes",
    [["color"], ["level"], ["color", "level"]],
    ids=["static", "varying", "mixed"],
)
def test_aggregation_agrees(graph, backend, attributes, distinct):
    baseline = aggregate(graph, attributes, distinct=distinct)
    variant = aggregate(pinned(graph, backend), attributes, distinct=distinct)
    assert baseline.diff(variant) == ()
    assert variant.diff(baseline) == ()


# ----------------------------------------------------------------------
# Exploration event masks: bit-equality per event type
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("entity", list(EntityKind), ids=str)
def test_event_masks_bit_equal(graph, backend, entity):
    baseline = EventCounter(graph, entity)
    variant = EventCounter(pinned(graph, backend), entity)
    n = len(graph.timeline)
    sides = [Side.point(i) for i in range(n)]
    sides.append(Side(Interval(0, 2), Semantics.UNION))
    sides.append(Side(Interval(0, 2), Semantics.INTERSECTION))
    sides.append(Side(Interval(n - 3, n - 1), Semantics.UNION))
    for event in EventType:
        for old, new in itertools.combinations(sides, 2):
            expected = baseline.event_mask(event, old, new)
            actual = variant.event_mask(event, old, new)
            assert np.array_equal(expected, actual), (event, old, new)


# ----------------------------------------------------------------------
# Every registered fuzz law on backend-pinned graphs
# ----------------------------------------------------------------------


@pytest.mark.fuzz
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("law_name", LAW_NAMES)
def test_laws_hold_on_backend_pinned_graphs(test_seed, backend, law_name):
    law = law_registry()[law_name]
    for case in range(2):
        seed = test_seed + 1000 * case
        spec = GraphSpec() if law.hostile_safe and case else GraphSpec(
            n_times=5, n_nodes=5
        )
        candidate = pinned(random_temporal_graph(spec, seed=seed), backend)
        rng = np.random.default_rng(seed)
        try:
            problem = law.check(candidate, rng)
        except GraphTempoError:
            # Some laws legitimately raise on pathological picks; parity
            # with the dense path is what matters and is asserted by the
            # ``backend-storage`` law under ``repro fuzz``.
            continue
        assert problem is None, f"{law_name} on {backend}: {problem}"


# ----------------------------------------------------------------------
# Streaming replay identity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_streaming_replay_identity(graph, backend):
    source = pinned(graph, backend)
    store = StreamingStore.from_history(source)
    replayed = store.graph
    assert replayed.timeline.labels == source.timeline.labels
    assert presence_signature(replayed) == presence_signature(source)
    # The backend *selection* survives every append along the replay.
    assert replayed.storage_name == backend
    assert replayed.storage.name == backend
    baseline = aggregate(source, ["color"], distinct=True)
    assert baseline.diff(aggregate(replayed, ["color"], distinct=True)) == ()


# ----------------------------------------------------------------------
# Hostile graphs: identical taxonomy errors, diagnostics name the backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_hostile_graph_error_parity(test_seed, backend):
    hostile = random_temporal_graph(
        GraphSpec(dangling_edges=2), seed=test_seed
    )
    with pytest.raises(AggregationError) as dense_err:
        aggregate(hostile.with_storage("dense"), ["gender"])
    with pytest.raises(AggregationError) as variant_err:
        aggregate(pinned(hostile, backend), ["gender"])
    assert type(dense_err.value).__name__ == type(variant_err.value).__name__


@pytest.mark.parametrize("backend", BACKENDS)
def test_diagnostics_report_the_backend(test_seed, backend):
    hostile = random_temporal_graph(
        GraphSpec(dangling_edges=2), seed=test_seed
    ).with_storage(backend)
    findings = check_graph(hostile)
    dangling = [f for f in findings if f.code == "dangling-edge"]
    assert len(dangling) == 1
    assert repr(backend) in dangling[0].message


@pytest.mark.parametrize("backend", BACKENDS)
def test_adjacency_scan_never_raises_on_hostile_graphs(test_seed, backend):
    hostile = random_temporal_graph(
        GraphSpec(dangling_edges=3), seed=test_seed
    )
    storage = get_backend(backend).from_graph(hostile)
    rows = list(storage.adjacency_scan())
    assert len(rows) == len(hostile.edge_presence.row_labels)
    assert sum(1 for _, u, v in rows if u < 0 or v < 0) >= 3


# ----------------------------------------------------------------------
# Hypothesis round-trip properties
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(temporal_graphs())
def test_frames_roundtrip_is_identity(source):
    reference = frames_of(source)
    for backend in BACKENDS:
        storage = get_backend(backend).from_graph(source)
        assert_frames_equal(storage.to_frames(), reference)
        assert presence_signature(storage.to_graph()) == presence_signature(
            source
        )


@st.composite
def graph_and_window(draw):
    source = draw(temporal_graphs())
    labels = source.timeline.labels
    size = draw(st.integers(1, len(labels)))
    start = draw(st.integers(0, len(labels) - size))
    return source, labels[start : start + size]


@settings(max_examples=40, deadline=None)
@given(graph_and_window())
def test_slice_time_matches_dense_slicing(data):
    source, window = data
    reference = DenseBackend.from_graph(source).slice_time(window).to_frames()
    for backend in BACKENDS:
        sliced = get_backend(backend).from_graph(source).slice_time(window)
        assert tuple(sliced.times) == tuple(window)
        assert_frames_equal(sliced.to_frames(), reference)


@settings(max_examples=25, deadline=None)
@given(temporal_graphs())
def test_masks_agree_on_arbitrary_graphs(source):
    window = list(source.timeline.labels[:2])
    for entity in ("nodes", "edges"):
        for mode in ("any", "all", "none"):
            reference = source.presence_mask(entity, window, mode)
            for backend in BACKENDS:
                storage = get_backend(backend).from_graph(source)
                assert np.array_equal(
                    storage.presence_mask(entity, window, mode), reference
                )
