"""End-to-end checks of every number the paper states for its running
example (Figure 1, Table 2, Figures 2-4)."""

from repro.core import aggregate, aggregate_evolution, union
from repro.datasets import paper_example
from repro.datasets.example import EDGES, GENDER, PRESENCE, PUBLICATIONS, TIMES


class TestTable2:
    """The storage arrays V, S, A exactly as printed in Table 2."""

    def test_array_v(self, paper_graph):
        expected = {
            "u1": [1, 1, 0],
            "u2": [1, 1, 1],
            "u3": [1, 0, 0],
            "u4": [1, 1, 1],
            "u5": [0, 0, 1],
        }
        for node, row in expected.items():
            assert paper_graph.node_presence.row(node).tolist() == row

    def test_array_s(self, paper_graph):
        for node, gender in GENDER.items():
            assert paper_graph.static_attrs.cell(node, "gender") == gender

    def test_array_a(self, paper_graph):
        pubs = paper_graph.varying_attrs["publications"]
        expected = {
            "u1": [3, 1, None],
            "u2": [1, 1, 1],
            "u3": [1, None, None],
            "u4": [2, 1, 1],
            "u5": [None, None, 3],
        }
        for node, row in expected.items():
            assert pubs.row(node).tolist() == row

    def test_timeline(self, paper_graph):
        assert paper_graph.timeline.labels == TIMES


class TestFigure2:
    def test_union_membership(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        assert set(u.nodes) == {"u1", "u2", "u3", "u4"}
        assert "u5" not in u.nodes


class TestFigure3:
    def test_dist_weight_f1(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        agg = aggregate(u, ["gender", "publications"], distinct=True)
        assert agg.node_weight(("f", 1)) == 3

    def test_all_weight_f1(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        agg = aggregate(u, ["gender", "publications"], distinct=False)
        assert agg.node_weight(("f", 1)) == 4


class TestFigure4:
    def test_f1_evolution_weights(self, paper_graph):
        evo = aggregate_evolution(
            paper_graph, ["t0"], ["t1"], ["gender", "publications"]
        )
        weights = evo.node(("f", 1))
        assert weights.stability == 1  # u2
        assert weights.growth == 1     # u4's new (f,1) appearance at t1
        assert weights.shrinkage == 1  # u3 removed after t0


class TestDatasetModuleConsistency:
    """The example module's declarative data matches the built graph."""

    def test_rebuild_is_deterministic(self, paper_graph):
        assert paper_example() == paper_graph

    def test_presence_tables_consistent(self, paper_graph):
        for node, times in PRESENCE.items():
            assert paper_graph.node_times(node) == times

    def test_edges_consistent(self, paper_graph):
        for edge, times in EDGES.items():
            assert paper_graph.edge_times(edge) == times

    def test_publications_only_when_present(self):
        for node, series in PUBLICATIONS.items():
            assert set(series) == set(PRESENCE[node])
