"""Tests for time hierarchies and graph coarsening."""

import pytest

from repro.core import TimeHierarchy, aggregate, coarsen, union
from repro.errors import TemporalError


@pytest.fixture()
def hierarchy():
    return TimeHierarchy({"early": ["t0", "t1"], "late": ["t2"]})


class TestTimeHierarchy:
    def test_members(self, hierarchy):
        assert hierarchy.members("early") == ("t0", "t1")

    def test_unit_of(self, hierarchy):
        assert hierarchy.unit_of("t2") == "late"

    def test_unknown_unit(self, hierarchy):
        with pytest.raises(KeyError):
            hierarchy.members("middle")

    def test_unknown_base(self, hierarchy):
        with pytest.raises(KeyError):
            hierarchy.unit_of("t9")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeHierarchy({})

    def test_empty_unit_rejected(self):
        with pytest.raises(ValueError):
            TimeHierarchy({"u": []})

    def test_overlapping_units_rejected(self):
        with pytest.raises(ValueError):
            TimeHierarchy({"a": ["t0"], "b": ["t0", "t1"]})

    def test_regular_windows(self):
        hierarchy = TimeHierarchy.regular(range(2000, 2006), width=2)
        assert len(hierarchy) == 3
        assert hierarchy.members("2000..2001") == (2000, 2001)

    def test_regular_last_window_shorter(self):
        hierarchy = TimeHierarchy.regular(range(2000, 2005), width=2)
        assert hierarchy.members("2004..2004") == (2004,)

    def test_regular_custom_name(self):
        hierarchy = TimeHierarchy.regular(["a", "b"], width=1, name="w{index}")
        assert hierarchy.unit_labels == ("w0", "w1")

    def test_regular_bad_width(self):
        with pytest.raises(ValueError):
            TimeHierarchy.regular(["a"], width=0)

    def test_covers(self, hierarchy, paper_graph):
        assert hierarchy.covers(paper_graph.timeline)

    def test_len_and_repr(self, hierarchy):
        assert len(hierarchy) == 2
        assert "early" in repr(hierarchy)


class TestCoarsenUnion:
    def test_presence(self, paper_graph, hierarchy):
        coarse = coarsen(paper_graph, hierarchy, "union")
        assert coarse.timeline.labels == ("early", "late")
        # u1 exists at t0, t1 -> early only.
        assert coarse.node_times("u1") == ("early",)
        # u5 exists at t2 only -> late.
        assert coarse.node_times("u5") == ("late",)

    def test_all_entities_survive_union(self, paper_graph, hierarchy):
        coarse = coarsen(paper_graph, hierarchy, "union")
        assert set(coarse.nodes) == set(paper_graph.nodes)
        assert set(coarse.edges) == set(paper_graph.edges)

    def test_coarse_graph_supports_aggregation(self, paper_graph, hierarchy):
        coarse = coarsen(paper_graph, hierarchy, "union")
        agg = aggregate(coarse, ["gender"], distinct=True, times=["early"])
        direct = aggregate(
            union(paper_graph, ["t0", "t1"]), ["gender"], distinct=True
        )
        assert dict(agg.node_weights) == dict(direct.node_weights)

    def test_varying_attribute_takes_latest_value(self, paper_graph, hierarchy):
        coarse = coarsen(paper_graph, hierarchy, "union")
        # u1 has pubs 3@t0, 1@t1 -> 'early' carries the latest (1).
        assert coarse.attribute_value("u1", "publications", "early") == 1

    def test_static_attributes_preserved(self, paper_graph, hierarchy):
        coarse = coarsen(paper_graph, hierarchy, "union")
        assert coarse.attribute_value("u3", "gender") == "f"


class TestCoarsenIntersection:
    def test_strict_presence(self, paper_graph, hierarchy):
        coarse = coarsen(paper_graph, hierarchy, "intersection")
        # u3 exists only at t0, not throughout 'early' -> dropped there.
        assert "u3" not in coarse.nodes
        # u1 exists at both t0 and t1 -> present in 'early'.
        assert coarse.node_times("u1") == ("early",)

    def test_strict_edges(self, paper_graph, hierarchy):
        coarse = coarsen(paper_graph, hierarchy, "intersection")
        # Only (u1,u2) spans all of early; late has its three edges.
        assert coarse.edges_at("early") == (("u1", "u2"),)
        assert len(coarse.edges_at("late")) == 3

    def test_strict_subset_of_union(self, paper_graph, hierarchy):
        strict = coarsen(paper_graph, hierarchy, "intersection")
        relaxed = coarsen(paper_graph, hierarchy, "union")
        assert set(strict.nodes) <= set(relaxed.nodes)
        assert set(strict.edges) <= set(relaxed.edges)


class TestCoarsenValidation:
    def test_bad_semantics(self, paper_graph, hierarchy):
        with pytest.raises(ValueError):
            coarsen(paper_graph, hierarchy, "majority")

    def test_uncovered_timeline_rejected(self, paper_graph):
        partial = TimeHierarchy({"early": ["t0", "t1"]})
        with pytest.raises(ValueError):
            coarsen(paper_graph, partial)

    def test_non_contiguous_unit_rejected(self, paper_graph):
        weird = TimeHierarchy({"ends": ["t0", "t2"], "mid": ["t1"]})
        with pytest.raises(ValueError):
            coarsen(paper_graph, weird)

    def test_out_of_order_units_rejected(self, paper_graph):
        backwards = TimeHierarchy({"late": ["t2"], "early": ["t0", "t1"]})
        with pytest.raises(ValueError):
            coarsen(paper_graph, backwards)

    def test_coarsen_synthetic(self, small_dblp):
        hierarchy = TimeHierarchy.regular(small_dblp.timeline.labels, width=10)
        coarse = coarsen(small_dblp, hierarchy, "union")
        assert len(coarse.timeline) == 3
        # Union coarsening preserves every entity.
        assert coarse.n_nodes == small_dblp.n_nodes
        assert coarse.n_edges == small_dblp.n_edges


class TestCoarsenEdgeCases:
    def test_regular_over_empty_base_rejected(self):
        # A rollup over an empty timeline has no units to offer.
        with pytest.raises(TemporalError):
            TimeHierarchy.regular([], width=2)

    def test_unit_outside_timeline_dropped(self, paper_graph):
        # 'future' covers no base point of the graph: its interval is
        # empty, so the coarse timeline must not contain it.
        hierarchy = TimeHierarchy(
            {"early": ["t0", "t1"], "late": ["t2"], "future": ["t9"]}
        )
        coarse = coarsen(paper_graph, hierarchy, "union")
        assert coarse.timeline.labels == ("early", "late")

    def test_intersection_whole_timeline(self, paper_graph):
        # One unit spanning everything: entities must be present at every
        # base point, exactly the intersection operator's survivors.
        hierarchy = TimeHierarchy({"all": ["t0", "t1", "t2"]})
        coarse = coarsen(paper_graph, hierarchy, "intersection")
        always = ("t0", "t1", "t2")
        survivors = {n for n in paper_graph.nodes if paper_graph.node_times(n) == always}
        assert set(coarse.nodes) == survivors
        assert set(coarse.edges) == {
            e for e in paper_graph.edges if paper_graph.edge_times(e) == always
        }

    def test_intersection_empty_unit_aggregates(self, paper_graph):
        # Nothing spans all of t1..t2 and t0 alone keeps only its own
        # entities; aggregation over the rolled-up graph must still work
        # even when a coarse column is sparse or empty.
        hierarchy = TimeHierarchy({"a": ["t0"], "b": ["t1", "t2"]})
        coarse = coarsen(paper_graph, hierarchy, "intersection")
        agg = aggregate(coarse, ["gender"], distinct=True, times=["b"])
        for weight in dict(agg.node_weights).values():
            assert weight >= 0

    def test_union_single_point_units_is_identity(self, paper_graph):
        hierarchy = TimeHierarchy.regular(
            paper_graph.timeline.labels, width=1, name="{first}"
        )
        coarse = coarsen(paper_graph, hierarchy, "union")
        assert coarse.timeline.labels == paper_graph.timeline.labels
        for node in paper_graph.nodes:
            assert coarse.node_times(node) == paper_graph.node_times(node)
