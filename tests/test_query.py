"""Tests for the query language: lexer, parser, evaluator."""

import pytest

from repro.core import aggregate, aggregate_evolution, intersection, union
from repro.exploration import EventType, ExtendSide, Goal, explore
from repro.query import (
    AggregateExpr,
    EvolutionExpr,
    ExploreExpr,
    OperatorExpr,
    QueryBindingError,
    QuerySyntaxError,
    WindowExpr,
    parse,
    run_query,
    tokenize,
)


class TestLexer:
    def test_words_and_numbers(self):
        tokens = tokenize("union [2000..2003]")
        kinds = [t.kind for t in tokens]
        assert kinds == ["WORD", "PUNCT", "NUMBER", "PUNCT", "NUMBER", "PUNCT", "END"]

    def test_strings(self):
        tokens = tokenize("['May'..\"Aug\"]")
        assert tokens[1].kind == "STRING" and tokens[1].text == "May"
        assert tokens[3].text == "Aug"

    def test_arrow_and_range_are_single_tokens(self):
        tokens = tokenize("-> ..")
        assert [t.text for t in tokens[:-1]] == ["->", ".."]

    def test_negative_number(self):
        tokens = tokenize("k -5")
        assert tokens[1].kind == "NUMBER" and tokens[1].text == "-5"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("['May]")

    def test_unknown_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("union @ [t0]")

    def test_positions_recorded(self):
        tokens = tokenize("union [t0]")
        assert tokens[0].position == 0
        assert tokens[1].position == 6


class TestParser:
    def test_operator_single_window(self):
        expr = parse("project [t0..t2]")
        assert expr == OperatorExpr(
            "project", (WindowExpr("t0", "t2"),)
        )

    def test_operator_two_windows(self):
        expr = parse("union [2000], [2005..2006]")
        assert isinstance(expr, OperatorExpr)
        assert expr.windows[0] == WindowExpr(2000)
        assert expr.windows[1] == WindowExpr(2005, 2006)

    def test_intersection_requires_two_windows(self):
        with pytest.raises(QuerySyntaxError):
            parse("intersection [t0]")

    def test_difference_requires_two_windows(self):
        with pytest.raises(QuerySyntaxError):
            parse("difference [t0]")

    def test_aggregate_defaults_to_distinct(self):
        expr = parse("aggregate gender over union [t0]")
        assert isinstance(expr, AggregateExpr)
        assert expr.distinct is True

    def test_aggregate_all(self):
        expr = parse("aggregate gender, publications all over union [t0..t1]")
        assert expr.attributes == ("gender", "publications")
        assert expr.distinct is False

    def test_aggregate_requires_over(self):
        with pytest.raises(QuerySyntaxError):
            parse("aggregate gender union [t0]")

    def test_evolution(self):
        expr = parse("evolution [2000..2009] -> [2010] by gender")
        assert expr == EvolutionExpr(
            WindowExpr(2000, 2009), WindowExpr(2010), ("gender",)
        )

    def test_explore_full_form(self):
        expr = parse(
            "explore growth minimal extend new k 10 on edges by gender key f -> m"
        )
        assert isinstance(expr, ExploreExpr)
        assert expr.event == "growth"
        assert expr.k == 10
        assert expr.key == (("f",), ("m",))

    def test_explore_defaults(self):
        expr = parse("explore stability k 3")
        assert expr.goal == "minimal"
        assert expr.extend == "new"
        assert expr.entity == "edges"
        assert expr.attributes == ()
        assert expr.key is None

    def test_explore_edge_key_single_tuple_means_both_sides(self):
        expr = parse("explore growth k 5 by gender key f")
        assert expr.key == (("f",), ("f",))

    def test_explore_node_key(self):
        expr = parse("explore growth k 5 on nodes by gender key f")
        assert expr.key == ("f",)

    def test_explore_requires_k(self):
        with pytest.raises(QuerySyntaxError):
            parse("explore growth minimal")

    def test_trailing_input_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("union [t0] nonsense")

    def test_unknown_verb(self):
        with pytest.raises(QuerySyntaxError):
            parse("summarize [t0]")

    def test_quoted_attribute_names(self):
        expr = parse("aggregate 'gender' over union [t0]")
        assert expr.attributes == ("gender",)

    def test_ast_str_roundtrips_meaningfully(self):
        text = "aggregate gender distinct over union [t0], [t1]"
        assert "aggregate gender" in str(parse(text))


class TestEvaluator:
    def test_operator_query(self, paper_graph):
        result = run_query(paper_graph, "intersection [t0], [t1]")
        assert result == intersection(paper_graph, ["t0"], ["t1"])

    def test_union_span(self, paper_graph):
        result = run_query(paper_graph, "union [t0..t2]")
        assert result == union(paper_graph, ["t0", "t1", "t2"])

    def test_aggregate_query_matches_api(self, paper_graph):
        via_query = run_query(
            paper_graph, "aggregate gender, publications over union [t0], [t1]"
        )
        direct = aggregate(
            union(paper_graph, ["t0"], ["t1"]),
            ["gender", "publications"],
            distinct=True,
        )
        assert dict(via_query.node_weights) == dict(direct.node_weights)

    def test_evolution_query(self, paper_graph):
        via_query = run_query(
            paper_graph, "evolution [t0] -> [t1] by gender, publications"
        )
        direct = aggregate_evolution(
            paper_graph, ["t0"], ["t1"], ["gender", "publications"]
        )
        assert via_query.node(("f", 1)) == direct.node(("f", 1))

    def test_explore_query(self, small_dblp):
        via_query = run_query(
            small_dblp, "explore growth minimal extend new k 10 by gender key f -> f"
        )
        direct = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 10,
            attributes=["gender"], key=(("f",), ("f",)),
        )
        assert via_query.pairs == direct.pairs

    def test_integer_time_binding(self, small_dblp):
        result = run_query(small_dblp, "union [2000..2002]")
        assert result.timeline.labels == (2000, 2001, 2002)

    def test_unknown_time_point(self, paper_graph):
        with pytest.raises(QueryBindingError):
            run_query(paper_graph, "union [t9]")

    def test_unknown_attribute(self, paper_graph):
        with pytest.raises(KeyError):
            run_query(paper_graph, "aggregate height over union [t0]")

    def test_string_labels_via_quotes(self, small_movielens):
        result = run_query(small_movielens, "union ['May'..'Jul']")
        assert result.timeline.labels == ("May", "Jun", "Jul")

    def test_bare_word_labels(self, small_movielens):
        result = run_query(small_movielens, "union [May], [Aug]")
        assert set(result.timeline.labels) == {"May", "Aug"}

    def test_project_two_windows_concatenates(self, paper_graph):
        result = run_query(paper_graph, "project [t0], [t1]")
        assert set(result.nodes) == {"u1", "u2", "u4"}


class TestAstRoundTrip:
    CORPUS = [
        "project [t0..t2]",
        "union [2000], [2005..2006]",
        "intersection ['May'], ['Jun'..'Aug']",
        "difference [t0..t1], [t2]",
        "aggregate gender distinct over union [t0]",
        "aggregate gender, publications all over union [t0..t2]",
        "evolution [2000..2009] -> [2010] by gender",
        "explore growth minimal extend new k 10 on edges by gender key f -> m",
        "explore stability maximal extend old k 3 on nodes by gender key f",
        "explore shrinkage k 7",
    ]

    @pytest.mark.parametrize("text", CORPUS)
    def test_str_reparses_to_same_ast(self, text):
        first = parse(text)
        assert parse(str(first)) == first

    def test_quoting_of_awkward_labels(self):
        expr = parse("union ['two words'..'b-c']")
        assert parse(str(expr)) == expr
