"""Tests for graph diagnostics."""

import numpy as np
import pytest

from repro.core import TemporalGraph, Timeline
from repro.diagnostics import Finding, check_graph, format_findings
from repro.frames import LabeledFrame


def severities(findings):
    return {f.severity for f in findings}


def codes(findings):
    return {f.code for f in findings}


class TestCleanGraphs:
    def test_paper_example_has_no_errors(self, paper_graph):
        findings = check_graph(paper_graph)
        assert "error" not in severities(findings)
        assert "info" in severities(findings)

    def test_synthetic_has_no_errors(self, small_dblp):
        findings = check_graph(small_dblp)
        assert not [f for f in findings if f.severity == "error"]

    def test_info_includes_domains_and_size(self, paper_graph):
        findings = check_graph(paper_graph)
        info_codes = [f.code for f in findings if f.severity == "info"]
        assert "attribute-domain" in info_codes
        assert "size" in info_codes


def _broken_graph(**overrides) -> TemporalGraph:
    times = ("t0", "t1")
    nodes = LabeledFrame(["a", "b"], times, [[1, 1], [1, 0]])
    edges = LabeledFrame([("a", "b")], times, [[1, 0]])
    static = LabeledFrame(["a", "b"], ["color"], [["red"], ["blue"]])
    varying = {
        "level": LabeledFrame(["a", "b"], times, [[1, 2], [3, None]])
    }
    parts = dict(
        timeline=Timeline(times),
        node_presence=nodes,
        edge_presence=edges,
        static_attrs=static,
        varying_attrs=varying,
    )
    parts.update(overrides)
    return TemporalGraph(validate=False, **parts)


class TestErrorDetection:
    def test_dangling_edge(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            edge_presence=LabeledFrame([("a", "zz")], times, [[1, 0]])
        )
        assert "dangling-edge" in codes(check_graph(graph))

    def test_edge_without_endpoints(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            edge_presence=LabeledFrame([("a", "b")], times, [[1, 1]])
        )
        assert "edge-without-endpoints" in codes(check_graph(graph))

    def test_value_on_absent_appearance(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            varying_attrs={
                "level": LabeledFrame(["a", "b"], times, [[1, 2], [3, 9]])
            }
        )
        assert "value-on-absent-appearance" in codes(check_graph(graph))

    def test_errors_come_first(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            edge_presence=LabeledFrame([("a", "b")], times, [[1, 1]])
        )
        findings = check_graph(graph)
        first_info = next(
            i for i, f in enumerate(findings) if f.severity == "info"
        )
        assert all(f.severity != "error" for f in findings[first_info:])


class TestWarningDetection:
    def test_missing_varying_value(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            varying_attrs={
                "level": LabeledFrame(["a", "b"], times, [[None, 2], [3, None]])
            }
        )
        assert "missing-attribute-value" in codes(check_graph(graph))

    def test_never_present_node(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            node_presence=LabeledFrame(["a", "b"], times, [[1, 1], [0, 0]]),
            edge_presence=LabeledFrame.empty(times, dtype=np.uint8),
            varying_attrs={
                "level": LabeledFrame(["a", "b"], times, [[1, 2], [None, None]])
            },
        )
        assert "never-present-node" in codes(check_graph(graph))

    def test_never_present_edge(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            edge_presence=LabeledFrame([("a", "b")], times, [[0, 0]])
        )
        assert "never-present-edge" in codes(check_graph(graph))

    def test_empty_time_point(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            node_presence=LabeledFrame(["a", "b"], times, [[1, 0], [1, 0]]),
            edge_presence=LabeledFrame([("a", "b")], times, [[1, 0]]),
            varying_attrs={
                "level": LabeledFrame(["a", "b"], times, [[1, None], [3, None]])
            },
        )
        assert "empty-time-point" in codes(check_graph(graph))

    def test_self_loop(self):
        times = ("t0", "t1")
        graph = _broken_graph(
            edge_presence=LabeledFrame([("a", "a")], times, [[1, 0]])
        )
        assert "self-loop" in codes(check_graph(graph))

    def test_missing_static_value(self):
        graph = _broken_graph(
            static_attrs=LabeledFrame(
                ["a", "b"], ["color"], [["red"], [None]]
            )
        )
        assert "missing-static-value" in codes(check_graph(graph))


class TestFormatting:
    def test_format(self, paper_graph):
        text = format_findings(check_graph(paper_graph))
        assert "[info]" in text

    def test_format_empty(self):
        assert format_findings([]) == "no findings"

    def test_finding_validation(self):
        with pytest.raises(ValueError):
            Finding("fatal", "x", "y")

    def test_finding_str(self):
        assert str(Finding("info", "size", "msg")) == "[info] size: msg"
