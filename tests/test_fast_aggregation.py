"""Tests for the vectorized aggregation engine (equivalence with the
faithful Algorithm 2 transcription)."""

import pytest
from hypothesis import given, settings

from repro.core import aggregate, aggregate_fast, union
from tests.test_properties import graph_and_windows


def assert_same(a, b):
    assert dict(a.node_weights) == dict(b.node_weights)
    assert dict(a.edge_weights) == dict(b.edge_weights)
    assert a.attributes == b.attributes
    assert a.distinct == b.distinct


class TestEquivalence:
    @pytest.mark.parametrize("distinct", [True, False])
    @pytest.mark.parametrize(
        "attrs",
        [["gender"], ["publications"], ["gender", "publications"]],
        ids=lambda a: "+".join(a),
    )
    def test_paper_example_full_timeline(self, paper_graph, attrs, distinct):
        assert_same(
            aggregate(paper_graph, attrs, distinct=distinct),
            aggregate_fast(paper_graph, attrs, distinct=distinct),
        )

    @pytest.mark.parametrize("time", ["t0", "t1", "t2"])
    def test_paper_example_per_point(self, paper_graph, time):
        assert_same(
            aggregate(paper_graph, ["gender", "publications"], times=[time]),
            aggregate_fast(paper_graph, ["gender", "publications"], times=[time]),
        )

    @pytest.mark.parametrize("distinct", [True, False])
    def test_dblp_window(self, small_dblp, distinct):
        window = small_dblp.timeline.labels[:8]
        sub = union(small_dblp, window)
        for attrs in (["gender"], ["publications"], ["gender", "publications"]):
            assert_same(
                aggregate(sub, attrs, distinct=distinct),
                aggregate_fast(sub, attrs, distinct=distinct),
            )

    def test_movielens_all_attributes(self, small_movielens):
        attrs = ["gender", "age", "occupation", "rating"]
        assert_same(
            aggregate(small_movielens, attrs, distinct=True),
            aggregate_fast(small_movielens, attrs, distinct=True),
        )

    def test_empty_window_of_entities(self, paper_graph):
        sub = paper_graph.restricted([], [], ["t0"])
        fast = aggregate_fast(sub, ["gender"])
        assert fast.node_weights == {}
        assert fast.edge_weights == {}


class TestValidation:
    def test_empty_attributes(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate_fast(paper_graph, [])

    def test_duplicate_attributes(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate_fast(paper_graph, ["gender", "gender"])

    def test_unknown_attribute(self, paper_graph):
        with pytest.raises(KeyError):
            aggregate_fast(paper_graph, ["height"])

    def test_unknown_time(self, paper_graph):
        with pytest.raises(KeyError):
            aggregate_fast(paper_graph, ["gender"], times=["t9"])


@settings(max_examples=60, deadline=None)
@given(graph_and_windows())
def test_fast_engine_property_equivalence(data):
    graph, t1, t2 = data
    sub = union(graph, t1, t2)
    for attrs in (["gender"], ["level"], ["gender", "level"]):
        for distinct in (True, False):
            assert_same(
                aggregate(sub, attrs, distinct=distinct),
                aggregate_fast(sub, attrs, distinct=distinct),
            )
