"""Tests for appearance-level filtering (the Fig. 12 activity filter)."""

import pytest

from repro.core import aggregate, attribute_predicate, filter_appearances


class TestAttributePredicate:
    def test_single_condition(self):
        keep = attribute_predicate(publications=lambda p: p is not None and p > 2)
        assert keep("u1", "t0", {"publications": 3, "gender": "m"})
        assert not keep("u1", "t0", {"publications": 1, "gender": "m"})

    def test_multiple_conditions(self):
        keep = attribute_predicate(
            gender=lambda g: g == "f",
            publications=lambda p: p is not None and p >= 1,
        )
        assert keep("u", "t", {"gender": "f", "publications": 1})
        assert not keep("u", "t", {"gender": "m", "publications": 5})

    def test_missing_attribute_raises(self):
        keep = attribute_predicate(height=lambda h: True)
        with pytest.raises(KeyError):
            keep("u", "t", {"gender": "f"})


class TestFilterAppearances:
    def test_high_activity_filter(self, paper_graph):
        keep = attribute_predicate(
            publications=lambda p: p is not None and p > 2
        )
        filtered = filter_appearances(paper_graph, keep)
        # Only u1@t0 (3 pubs) and u5@t2 (3 pubs) qualify.
        assert set(filtered.nodes) == {"u1", "u5"}
        assert filtered.node_times("u1") == ("t0",)
        assert filtered.node_times("u5") == ("t2",)

    def test_edges_require_both_endpoints(self, paper_graph):
        keep = attribute_predicate(
            publications=lambda p: p is not None and p > 2
        )
        filtered = filter_appearances(paper_graph, keep)
        # No edge connects two high-activity appearances simultaneously.
        assert filtered.n_edges == 0

    def test_edges_survive_when_endpoints_do(self, paper_graph):
        keep = attribute_predicate(
            publications=lambda p: p is not None and p >= 1
        )
        filtered = filter_appearances(paper_graph, keep)
        assert set(filtered.edges) == set(paper_graph.edges)

    def test_static_condition(self, paper_graph):
        keep = attribute_predicate(gender=lambda g: g == "f")
        filtered = filter_appearances(paper_graph, keep)
        assert set(filtered.nodes) == {"u2", "u3", "u4"}
        # Only edges between female authors survive.
        assert set(filtered.edges) == {("u2", "u3"), ("u4", "u2")}

    def test_filter_then_aggregate(self, paper_graph):
        keep = attribute_predicate(gender=lambda g: g == "f")
        filtered = filter_appearances(paper_graph, keep)
        agg = aggregate(filtered, ["gender"], times=["t0"])
        assert agg.node_weight(("f",)) == 3
        assert agg.node_weight(("m",)) == 0

    def test_node_identity_predicate(self, paper_graph):
        filtered = filter_appearances(
            paper_graph, lambda node, time, values: node != "u2"
        )
        assert "u2" not in filtered.nodes
        # All edges incident to u2 are gone.
        assert all("u2" not in edge for edge in filtered.edges)

    def test_time_predicate(self, paper_graph):
        filtered = filter_appearances(
            paper_graph, lambda node, time, values: time != "t0"
        )
        assert filtered.n_nodes_at("t0") == 0
        assert filtered.n_nodes_at("t1") == paper_graph.n_nodes_at("t1")

    def test_keep_all_is_identity_on_presence(self, paper_graph):
        filtered = filter_appearances(paper_graph, lambda n, t, v: True)
        assert filtered.size_table() == paper_graph.size_table()

    def test_reject_all_empties_graph(self, paper_graph):
        filtered = filter_appearances(paper_graph, lambda n, t, v: False)
        assert filtered.n_nodes == 0
        assert filtered.n_edges == 0

    def test_original_graph_untouched(self, paper_graph):
        before = paper_graph.node_presence.values.copy()
        filter_appearances(paper_graph, lambda n, t, v: False)
        assert (paper_graph.node_presence.values == before).all()
