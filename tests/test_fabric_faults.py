"""Fault injection on the persistent execution fabric.

The :class:`~repro.parallel.ShardedExecutor` keeps workers alive across
calls, which makes its failure surface richer than the per-call pool's:
a pinned worker can die *between* calls, *during* a call, or hang past
the deadline — and the pool has to keep serving afterwards.  This suite
injects each fault for real (SIGKILL on live worker pids, sleeping
tasks, domain raises inside a shard) and asserts the contract:

* typed errors — :class:`~repro.errors.WorkerCrashError` after the
  restart budget, :class:`~repro.errors.WorkerTimeoutError` on a blown
  deadline, the original taxonomy type for domain errors;
* bounded restart-and-retry — a SIGKILL'd worker is replaced and the
  interrupted task group re-runs, returning a result bit-identical to
  the undisturbed run;
* no orphans — :meth:`~repro.parallel.ShardedExecutor.close` drains
  every worker process, even after crashes and restarts.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import (
    AggregationError,
    ConfigurationError,
    GraphTempoError,
    ParallelError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.parallel import InlineExecutor, ShardedExecutor


# ----------------------------------------------------------------------
# Module-level work functions (shipped to workers by reference)
# ----------------------------------------------------------------------


def _square(payload, task):
    return (payload or 0) + task * task


def _domain_boom(payload, task):
    if task == payload:
        raise AggregationError(f"domain failure on {task}")
    return task


def _sleep(payload, task):
    time.sleep(task)
    return task


def _die_once(payload, task):
    """SIGKILL the worker the first time it sees the flagged task.

    The flag file makes the crash one-shot: the restarted worker finds
    the file and completes normally, exercising the retry path.
    """
    flag, victim = payload
    if task == victim and not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return task * task


def _die_always(payload, task):
    if task == payload:
        os.kill(os.getpid(), signal.SIGKILL)
    return task


def _assert_all_gone(pids):
    """Every pid must be dead (reaped or at least unkillable-0)."""
    deadline = time.monotonic() + 10.0
    pending = [pid for pid in pids if pid]
    while pending and time.monotonic() < deadline:
        still = []
        for pid in pending:
            try:
                os.kill(pid, 0)
                still.append(pid)
            except ProcessLookupError:
                pass
        pending = still
        if pending:
            time.sleep(0.05)
    assert not pending, f"orphaned worker processes: {pending}"


@pytest.fixture()
def fabric():
    executor = ShardedExecutor(2, timeout=60.0)
    yield executor
    pids = executor.worker_pids()
    executor.close()
    _assert_all_gone(pids)


# ----------------------------------------------------------------------
# Crash: SIGKILL a pinned worker
# ----------------------------------------------------------------------


def test_sigkill_between_calls_restarts_and_matches(fabric):
    tasks = list(range(31))
    expected = InlineExecutor().map(_square, tasks, 7)
    assert fabric.map(_square, tasks, 7) == expected
    victim = [pid for pid in fabric.worker_pids() if pid][0]
    os.kill(victim, signal.SIGKILL)
    # The next call detects the dead worker in-band, restarts it, and
    # the retried task group yields a bit-identical result.
    assert fabric.map(_square, tasks, 7) == expected
    assert fabric.restarts() >= 1
    assert victim not in fabric.worker_pids()


def test_sigkill_mid_query_retries_bit_exactly(fabric, tmp_path):
    flag = str(tmp_path / "crashed-once")
    tasks = list(range(24))
    payload = (flag, 20)  # task 20 lands on the second worker's shard
    expected = [task * task for task in tasks]
    assert fabric.map(_die_once, tasks, payload) == expected
    assert os.path.exists(flag), "the crash must actually have happened"
    assert fabric.restarts() >= 1
    # The pool stays warm and correct after the recovery.
    assert fabric.map(_square, tasks, 0) == expected


def test_persistent_crash_exhausts_restart_budget():
    fabric = ShardedExecutor(2, max_restarts=1)
    pids = None
    try:
        tasks = list(range(10))
        with pytest.raises(WorkerCrashError) as excinfo:
            fabric.map(_die_always, tasks, 0)
        assert isinstance(excinfo.value, ParallelError)
        assert excinfo.value.task in tasks
        assert "2 time(s)" in str(excinfo.value)
        # Crashing task gone -> the same pool serves again.
        assert fabric.map(_square, tasks, 0) == [t * t for t in tasks]
        pids = fabric.worker_pids()
    finally:
        fabric.close()
    _assert_all_gone(pids or ())


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


def test_blown_deadline_raises_typed_timeout():
    fabric = ShardedExecutor(2, timeout=0.5)
    try:
        started = time.monotonic()
        with pytest.raises(WorkerTimeoutError) as excinfo:
            fabric.map(_sleep, [30.0, 30.0], None)
        elapsed = time.monotonic() - started
        assert isinstance(excinfo.value, ParallelError)
        assert elapsed < 20, "timeout must not wait out the sleeping task"
        # The straggler was killed and replaced; the pool still serves.
        assert fabric.map(_square, [1, 2, 3], 0) == [1, 4, 9]
        assert fabric.restarts() >= 1
    finally:
        pids = fabric.worker_pids()
        fabric.close()
        _assert_all_gone(pids)


# ----------------------------------------------------------------------
# Domain errors inside a shard
# ----------------------------------------------------------------------


def test_domain_error_keeps_taxonomy_type_and_pool(fabric):
    tasks = list(range(16))
    with pytest.raises(AggregationError, match="domain failure on 11"):
        fabric.map(_domain_boom, tasks, 11)
    assert isinstance(
        AggregationError("x"), GraphTempoError
    )  # taxonomy sanity
    # No restart happened — a domain error is the task's fault, not the
    # worker's — and the pool keeps serving.
    assert fabric.restarts() == 0
    assert fabric.map(_square, tasks, 0) == [t * t for t in tasks]


def test_domain_error_is_never_retried(fabric, tmp_path):
    counter = tmp_path / "attempts"
    counter.write_text("")

    tasks = list(range(8))
    with pytest.raises(AggregationError):
        fabric.map(_count_and_raise, tasks, str(counter))
    assert len(counter.read_text()) == 1, "domain failure must run once"


def _count_and_raise(payload, task):
    if task == 0:
        with open(payload, "a") as handle:
            handle.write("x")
        raise AggregationError("domain failure, do not retry")
    return task


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def test_close_is_idempotent_and_closed_map_raises(fabric):
    fabric.map(_square, list(range(5)), 0)
    pids = fabric.worker_pids()
    fabric.close()
    fabric.close()
    _assert_all_gone(pids)
    assert fabric.state == "closed"
    with pytest.raises(ParallelError, match="closed"):
        fabric.map(_square, [1], 0)


def test_pool_is_lazy_and_persistent(fabric):
    assert fabric.state == "cold"
    assert fabric.worker_pids() == (None, None)
    fabric.map(_square, list(range(9)), 0)
    assert fabric.state == "running"
    pids = fabric.worker_pids()
    assert all(pids)
    fabric.map(_square, list(range(9)), 0)
    assert fabric.worker_pids() == pids, "workers must persist across calls"


def test_health_check_restarts_dead_workers(fabric):
    fabric.map(_square, list(range(8)), 0)
    victim = [pid for pid in fabric.worker_pids() if pid][0]
    os.kill(victim, signal.SIGKILL)
    status = fabric.health_check()
    assert status == (True, True)
    assert victim not in fabric.worker_pids()
    assert all(fabric.worker_pids())
    assert fabric.map(_square, list(range(8)), 0) == [
        t * t for t in range(8)
    ]


def test_heartbeat_thread_replaces_dead_workers():
    fabric = ShardedExecutor(2, heartbeat_interval=0.1)
    try:
        fabric.map(_square, list(range(8)), 0)
        victim = [pid for pid in fabric.worker_pids() if pid][0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while victim in fabric.worker_pids() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert victim not in fabric.worker_pids(), (
            "heartbeat should have replaced the killed worker"
        )
    finally:
        pids = fabric.worker_pids()
        fabric.close()
        _assert_all_gone(pids)


def test_single_worker_fabric_runs_inline():
    fabric = ShardedExecutor(1)
    try:
        assert fabric.map(_square, list(range(6)), 2) == [
            2 + t * t for t in range(6)
        ]
        assert fabric.state == "cold", "workers=1 must not start processes"
    finally:
        fabric.close()


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        ShardedExecutor(0)
    with pytest.raises(ConfigurationError):
        ShardedExecutor(2, timeout=0)
    with pytest.raises(ConfigurationError):
        ShardedExecutor(2, max_restarts=-1)
    with pytest.raises(ConfigurationError):
        ShardedExecutor(2, heartbeat_interval=0)
    with pytest.raises(ConfigurationError):
        ShardedExecutor(2, start_method="not-a-method")


def test_empty_task_list_short_circuits(fabric):
    assert fabric.map(_square, [], 0) == []
    assert fabric.state == "cold"


# ----------------------------------------------------------------------
# Fork hygiene: sibling pipe ends must not leak into workers
# ----------------------------------------------------------------------


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"), reason="needs procfs")
def test_workers_hold_no_sibling_pipe_ends(fabric):
    """Concurrent worker starts must not leak pipe fds across siblings.

    A leaked copy of a sibling's pipe end keeps the socket open after
    that sibling is killed, so the parent never sees EOF and a crash
    (retried transparently) degrades into a full deadline stall
    (WorkerTimeoutError, not retried).  The invariant: no worker child
    holds any parent-side connection fd — not a sibling's, not even a
    dup of its own.
    """
    fabric.map(_square, list(range(24)), 0)
    parent_ends = {
        worker.index: os.readlink(
            f"/proc/self/fd/{worker.conn.fileno()}"
        )
        for worker in fabric._workers
    }
    for worker in fabric._workers:
        fd_dir = f"/proc/{worker.process.pid}/fd"
        held = set()
        for fd in os.listdir(fd_dir):
            try:
                held.add(os.readlink(f"{fd_dir}/{fd}"))
            except OSError:  # transient fd churn in the child
                pass
        leaked = held & set(parent_ends.values())
        assert not leaked, (
            f"worker {worker.index} (pid {worker.process.pid}) holds "
            f"parent-side pipe ends {sorted(leaked)}"
        )
