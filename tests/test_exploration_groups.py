"""Tests for the multi-group explorer (intervals AND groups of interest)."""

import itertools

import pytest

from repro.exploration import (
    EntityKind,
    EventType,
    ExtendSide,
    Goal,
    explore,
    explore_groups,
)


class TestEquivalenceWithSingleGroup:
    @pytest.mark.parametrize(
        "event,goal,extend",
        list(itertools.product(list(EventType), list(Goal), list(ExtendSide))),
    )
    def test_matches_explore_per_group(self, small_dblp, event, goal, extend):
        multi = explore_groups(
            small_dblp, event, goal, extend, 3, ["gender"]
        )
        for key, pairs in multi.pairs_by_group.items():
            single = explore(
                small_dblp, event, goal, extend, 3,
                attributes=["gender"], key=key,
            )
            assert pairs == single.pairs, (event, goal, extend, key)

    def test_node_entity(self, small_dblp):
        multi = explore_groups(
            small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW,
            5, ["gender"], entity=EntityKind.NODES,
        )
        for key, pairs in multi.pairs_by_group.items():
            single = explore(
                small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW,
                5, entity=EntityKind.NODES, attributes=["gender"], key=key,
            )
            assert pairs == single.pairs

    def test_single_walk_is_cheaper(self, small_dblp):
        multi = explore_groups(
            small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW,
            3, ["gender"],
        )
        total_single = 0
        for key in multi.pairs_by_group:
            total_single += explore(
                small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW,
                3, attributes=["gender"], key=key,
            ).evaluations
        assert multi.evaluations < total_single


class TestGroupKeys:
    def test_edge_groups_are_tuple_pairs(self, small_dblp):
        multi = explore_groups(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            1, ["gender"],
        )
        assert set(multi.pairs_by_group) <= {
            (("f",), ("f",)), (("f",), ("m",)),
            (("m",), ("f",)), (("m",), ("m",)),
        }

    def test_node_groups_are_tuples(self, small_dblp):
        multi = explore_groups(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            1, ["gender"], entity=EntityKind.NODES,
        )
        assert set(multi.pairs_by_group) == {("f",), ("m",)}

    def test_multi_attribute_groups(self, small_movielens):
        multi = explore_groups(
            small_movielens, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            1, ["gender", "age"], entity=EntityKind.NODES,
        )
        assert all(len(key) == 2 for key in multi.pairs_by_group)


class TestRanking:
    def test_interesting_groups_sorted_by_best_count(self, small_dblp):
        multi = explore_groups(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            1, ["gender"],
        )
        ranked = multi.interesting_groups
        bests = [multi.best_pair(key).count for key in ranked]
        assert bests == sorted(bests, reverse=True)

    def test_majority_group_dominates(self, small_dblp):
        multi = explore_groups(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            1, ["gender"],
        )
        # Male-male collaborations vastly outnumber the rest.
        assert multi.interesting_groups[0] == (("m",), ("m",))

    def test_best_pair_none_for_empty_group(self, small_dblp):
        multi = explore_groups(
            small_dblp, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW,
            10 ** 9, ["gender"],
        )
        for key in multi.pairs_by_group:
            assert multi.best_pair(key) is None
        assert multi.interesting_groups == ()


class TestValidation:
    def test_requires_attributes(self, small_dblp):
        with pytest.raises(ValueError):
            explore_groups(
                small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
                1, [],
            )

    def test_rejects_time_varying_attribute(self, small_dblp):
        with pytest.raises(ValueError):
            explore_groups(
                small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
                1, ["publications"],
            )

    def test_rejects_bad_k(self, small_dblp):
        with pytest.raises(ValueError):
            explore_groups(
                small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
                0, ["gender"],
            )
