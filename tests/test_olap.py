"""Tests for the OLAP layer: lattice, slice/dice, cube, view selection."""

import pytest

from repro.core import TimeHierarchy, aggregate, union
from repro.olap import (
    TemporalGraphCube,
    all_cuboids,
    canonical,
    children,
    dice_aggregate,
    drill_across,
    estimate_cuboid_sizes,
    greedy_view_selection,
    parents,
    slice_aggregate,
    smallest_superset,
)

DIMS = ("gender", "age", "occupation", "rating")


class TestLattice:
    def test_canonical_orders_by_dimensions(self):
        assert canonical(["rating", "gender"], DIMS) == ("gender", "rating")

    def test_canonical_rejects_unknown(self):
        with pytest.raises(KeyError):
            canonical(["height"], DIMS)

    def test_all_cuboids_count(self):
        assert len(all_cuboids(DIMS)) == 2 ** 4 - 1

    def test_all_cuboids_ordering(self):
        cuboids = all_cuboids(DIMS)
        assert cuboids[0] == ("gender",)
        assert cuboids[-1] == DIMS

    def test_parents(self):
        assert parents(("gender",), ("gender", "age")) == [("gender", "age")]

    def test_children(self):
        assert set(children(("gender", "age"))) == {("gender",), ("age",)}

    def test_children_of_single(self):
        assert children(("gender",)) == []

    def test_smallest_superset_by_length(self):
        result = smallest_superset(
            ("gender",), [("gender", "age"), DIMS]
        )
        assert result == ("gender", "age")

    def test_smallest_superset_by_size(self):
        sizes = {("gender", "age"): 100.0, DIMS: 10.0}
        result = smallest_superset(("gender",), list(sizes), size_of=sizes)
        assert result == DIMS

    def test_smallest_superset_none(self):
        assert smallest_superset(("gender",), [("age",)]) is None


class TestSliceDice:
    @pytest.fixture()
    def agg(self, paper_graph):
        return aggregate(
            union(paper_graph, ["t0", "t1"]),
            ["gender", "publications"],
            distinct=True,
        )

    def test_slice_drops_attribute(self, agg):
        sliced = slice_aggregate(agg, "gender", "f")
        assert sliced.attributes == ("publications",)
        # f nodes on the union: (f,1) weight 3, (f,2) weight 1.
        assert sliced.node_weight((1,)) == 3
        assert sliced.node_weight((2,)) == 1

    def test_slice_edges_require_both_endpoints(self, agg):
        sliced = slice_aggregate(agg, "gender", "f")
        # Only f->f edges survive: (u2,u3) and (u4,u2).
        assert sliced.total_edge_weight() == 2

    def test_slice_unknown_attribute(self, agg):
        with pytest.raises(KeyError):
            slice_aggregate(agg, "height", 1)

    def test_dice_keeps_layout(self, agg):
        diced = dice_aggregate(agg, {"publications": [1]})
        assert diced.attributes == agg.attributes
        assert set(k[1] for k in diced.node_weights) == {1}

    def test_dice_multiple_attributes(self, agg):
        diced = dice_aggregate(agg, {"gender": ["f"], "publications": [1, 2]})
        assert all(k[0] == "f" for k in diced.node_weights)

    def test_dice_empty_selection_empties(self, agg):
        diced = dice_aggregate(agg, {"gender": []})
        assert not diced.node_weights
        assert not diced.edge_weights

    def test_drill_across(self, paper_graph):
        before = aggregate(paper_graph, ["gender"], times=["t0"])
        after = aggregate(paper_graph, ["gender"], times=["t1"])
        comparison = drill_across(before, after)
        assert comparison[("f",)] == (3, 2)
        assert comparison[("m",)] == (1, 1)

    def test_drill_across_mismatched(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], times=["t0"])
        b = aggregate(paper_graph, ["publications"], times=["t0"])
        with pytest.raises(ValueError):
            drill_across(a, b)


class TestCube:
    @pytest.fixture()
    def cube(self, small_movielens):
        return TemporalGraphCube(small_movielens)

    def test_base_computation_cached(self, cube):
        cube.cuboid(["gender"], times=["May"], distinct=True)
        cube.cuboid(["gender"], times=["May"], distinct=True)
        assert cube.stats.base_computations == 1
        assert cube.stats.exact_hits == 1

    def test_attribute_rollup_route(self, cube, small_movielens):
        cube.materialize(["gender", "age"], times=["May"], distinct=True)
        result = cube.cuboid(["gender"], times=["May"], distinct=True)
        assert cube.stats.attribute_rollups == 1
        direct = aggregate(
            small_movielens, ["gender"], distinct=True, times=["May"]
        )
        assert dict(result.node_weights) == dict(direct.node_weights)

    def test_time_rollup_route(self, cube, small_movielens):
        cube.materialize(["gender"], per_time_point=True, distinct=False)
        window = small_movielens.timeline.labels[:3]
        result = cube.cuboid(["gender"], times=window, distinct=False)
        assert cube.stats.time_rollups == 1
        direct = aggregate(
            union(small_movielens, window), ["gender"], distinct=False
        )
        assert dict(result.node_weights) == dict(direct.node_weights)

    def test_dist_rollup_not_used_across_time(self, cube):
        """DIST aggregates over multi-point windows must not be served
        by attribute roll-up (it overcounts)."""
        cube.materialize(
            ["gender", "age"], times=["May", "Jun"], distinct=True
        )
        cube.cuboid(["gender"], times=["May", "Jun"], distinct=True)
        assert cube.stats.attribute_rollups == 0
        assert cube.stats.base_computations == 1

    def test_rollup_verb(self, cube, small_movielens):
        result = cube.rollup(["gender", "age"], remove="age", times=["May"])
        direct = aggregate(
            small_movielens, ["gender"], distinct=False, times=["May"]
        )
        assert dict(result.node_weights) == dict(direct.node_weights)

    def test_rollup_verb_validations(self, cube):
        with pytest.raises(KeyError):
            cube.rollup(["gender"], remove="age")
        with pytest.raises(ValueError):
            cube.rollup(["gender"], remove="gender")

    def test_drill_down_verb(self, cube):
        result = cube.drill_down(["gender"], add="age", times=["May"])
        assert result.attributes == ("gender", "age")
        with pytest.raises(KeyError):
            cube.drill_down(["gender"], add="gender")

    def test_slice_verb(self, cube):
        sliced = cube.slice(["gender", "age"], "gender", "f", times=["May"])
        assert sliced.attributes == ("age",)

    def test_dice_verb(self, cube):
        diced = cube.dice(
            ["gender", "age"], {"gender": ["f"]}, times=["May"]
        )
        assert all(key[0] == "f" for key in diced.node_weights)

    def test_unknown_dimension_rejected(self, small_movielens):
        with pytest.raises(KeyError):
            TemporalGraphCube(small_movielens, dimensions=["height"])

    def test_hierarchy_times(self, small_movielens):
        hierarchy = TimeHierarchy(
            {"summer": ["May", "Jun", "Jul", "Aug"], "fall": ["Sep", "Oct"]}
        )
        cube = TemporalGraphCube(small_movielens, hierarchy=hierarchy)
        result = cube.cuboid(["gender"], times=["fall"], distinct=False)
        direct = aggregate(
            union(small_movielens, ["Sep", "Oct"]), ["gender"], distinct=False
        )
        assert dict(result.node_weights) == dict(direct.node_weights)

    def test_unknown_time_rejected(self, cube):
        with pytest.raises(KeyError):
            cube.cuboid(["gender"], times=["November"])


class TestCubeCacheRegressions:
    """Regression tests for the two cache-key bugs: caller window order
    splitting the cache, and materialized_count conflating deliberate
    views with incidentally cached query results."""

    @pytest.fixture()
    def cube(self, small_movielens):
        return TemporalGraphCube(small_movielens)

    def test_window_order_shares_one_cache_entry(self, cube):
        first = cube.cuboid(["gender"], times=["Jun", "May"], distinct=False)
        second = cube.cuboid(["gender"], times=["May", "Jun"], distinct=False)
        assert cube.stats.base_computations == 1
        assert cube.stats.exact_hits == 1
        assert first is second  # one entry, not two
        assert cube.cached_count == 1

    def test_window_order_results_identical(self, cube, small_movielens):
        result = cube.cuboid(["gender"], times=["Jun", "May"], distinct=False)
        direct = aggregate(
            union(small_movielens, ["May", "Jun"]), ["gender"], distinct=False
        )
        assert dict(result.node_weights) == dict(direct.node_weights)

    def test_materialized_count_excludes_query_results(self, cube):
        cube.materialize(["gender"], times=["May"])
        assert cube.materialized_count == 1
        cube.cuboid(["age"], times=["May"], distinct=False)
        # The query result is cached but was not materialized.
        assert cube.materialized_count == 1
        assert cube.cached_count == 2

    def test_per_time_point_materialization_counts_each_point(self, cube):
        cube.materialize(["gender"], per_time_point=True)
        assert cube.materialized_count == len(cube.graph.timeline.labels)

    def test_invalidate_drops_cache_and_materialized(self, cube):
        cube.materialize(["gender"], times=["May"])
        cube.cuboid(["age"], times=["May"], distinct=False)
        cube.invalidate()
        assert cube.materialized_count == 0
        assert cube.cached_count == 0

    def test_plan_routes_cheapest_first_with_base_fallback(self, cube):
        routes = cube.plan_routes(["gender"], times=["May"], distinct=False)
        assert routes[-1].kind == "base"
        assert routes == sorted(routes, key=lambda r: r.rank)
        cube.cuboid(["gender"], times=["May"], distinct=False)
        routes = cube.plan_routes(["gender"], times=["May"], distinct=False)
        assert routes[0].kind == "exact"
        assert routes[0].cost == 0.0

    def test_bind_store_invalidates_on_append(self, paper_graph):
        from repro.core.updates import SnapshotUpdate
        from repro.streaming import StreamingStore

        cube = TemporalGraphCube(paper_graph)
        store = StreamingStore(paper_graph)
        cube.bind_store(store)
        cube.materialize(["gender"])
        assert cube.cached_count == 1
        store.append_snapshot(
            SnapshotUpdate(
                time="t3",
                nodes={"u1": {"publications": 9}},
                edges=[],
            )
        )
        # Appends drop the cache and rebind the cube to the new graph.
        assert cube.cached_count == 0
        assert cube.graph is store.graph
        result = cube.cuboid(["gender"], distinct=False)
        direct = aggregate(store.graph, ["gender"], distinct=False)
        assert dict(result.node_weights) == dict(direct.node_weights)

    def test_unbind_stops_invalidation(self, paper_graph):
        from repro.core.updates import SnapshotUpdate
        from repro.streaming import StreamingStore

        cube = TemporalGraphCube(paper_graph)
        store = StreamingStore(paper_graph)
        unbind = cube.bind_store(store)
        unbind()
        cube.materialize(["gender"])
        store.append_snapshot(
            SnapshotUpdate(
                time="t3", nodes={"u1": {"publications": 9}}, edges=[]
            )
        )
        assert cube.cached_count == 1  # no longer following the store


class TestViewSelection:
    def test_size_estimates(self, small_movielens):
        sizes = estimate_cuboid_sizes(small_movielens, DIMS)
        assert sizes[("gender",)] == 2
        assert sizes[("gender", "age")] == 12
        # Capped by node count.
        assert sizes[DIMS] <= small_movielens.n_nodes

    def test_greedy_includes_apex_first(self, small_movielens):
        selection = greedy_view_selection(small_movielens, DIMS, budget=3)
        assert selection.selected[0] == DIMS

    def test_greedy_respects_budget(self, small_movielens):
        selection = greedy_view_selection(small_movielens, DIMS, budget=2)
        assert len(selection.selected) <= 2

    def test_every_cuboid_served_after_apex(self, small_movielens):
        selection = greedy_view_selection(small_movielens, DIMS, budget=1)
        for cuboid in all_cuboids(DIMS):
            assert selection.serves(cuboid) is not None

    def test_benefit_positive(self, small_movielens):
        selection = greedy_view_selection(small_movielens, DIMS, budget=4)
        assert selection.total_benefit > 0

    def test_costs_decrease_with_budget(self, small_movielens):
        small = greedy_view_selection(small_movielens, DIMS, budget=1)
        large = greedy_view_selection(small_movielens, DIMS, budget=6)
        total_small = sum(small.query_costs.values())
        total_large = sum(large.query_costs.values())
        assert total_large <= total_small

    def test_bad_budget(self, small_movielens):
        with pytest.raises(ValueError):
            greedy_view_selection(small_movielens, DIMS, budget=0)
