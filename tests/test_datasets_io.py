"""Round-trip tests for graph persistence (save_graph / load_graph)."""

import pytest

from repro.datasets import generate_dblp, load_graph, paper_example, save_graph


class TestGraphPersistence:
    def test_roundtrip_paper_example(self, tmp_path, paper_graph):
        save_graph(paper_graph, tmp_path / "example")
        loaded = load_graph(
            tmp_path / "example",
            value_parsers={"publications": int},
        )
        assert loaded.size_table() == paper_graph.size_table()
        assert set(loaded.nodes) == set(paper_graph.nodes)
        assert set(loaded.edges) == set(paper_graph.edges)

    def test_roundtrip_preserves_attributes(self, tmp_path, paper_graph):
        save_graph(paper_graph, tmp_path / "example")
        loaded = load_graph(
            tmp_path / "example", value_parsers={"publications": int}
        )
        assert loaded.attribute_value("u2", "gender") == "f"
        assert loaded.attribute_value("u1", "publications", "t0") == 3
        assert loaded.attribute_value("u1", "publications", "t2") is None

    def test_roundtrip_synthetic_with_int_ids(self, tmp_path):
        graph = generate_dblp(scale=0.01)
        save_graph(graph, tmp_path / "dblp")
        loaded = load_graph(
            tmp_path / "dblp",
            node_parser=int,
            time_parser=int,
            value_parsers={"publications": int},
        )
        assert loaded.size_table() == graph.size_table()
        assert loaded.node_presence == graph.node_presence
        assert loaded.edge_presence == graph.edge_presence

    def test_expected_files_created(self, tmp_path, paper_graph):
        target = tmp_path / "out"
        save_graph(paper_graph, target)
        names = {p.name for p in target.iterdir()}
        assert names == {
            "nodes.csv", "edges.csv", "static.csv", "attr_publications.csv",
        }

    def test_directory_created_if_missing(self, tmp_path, paper_graph):
        target = tmp_path / "deep" / "nested" / "dir"
        save_graph(paper_graph, target)
        assert target.exists()

    def test_loaded_graph_supports_operators(self, tmp_path, paper_graph):
        from repro.core import aggregate, union

        save_graph(paper_graph, tmp_path / "g")
        loaded = load_graph(
            tmp_path / "g", value_parsers={"publications": int}
        )
        agg = aggregate(
            union(loaded, ["t0"], ["t1"]),
            ["gender", "publications"],
            distinct=True,
        )
        assert agg.node_weight(("f", 1)) == 3

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "missing")
