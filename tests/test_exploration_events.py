"""Tests for EventCounter: side semantics and result(G) counting."""

import pytest

from repro.core import Interval
from repro.exploration import (
    EntityKind,
    EventCounter,
    EventType,
    Semantics,
    Side,
)


@pytest.fixture()
def edge_counter(paper_graph):
    return EventCounter(paper_graph, entity=EntityKind.EDGES)


@pytest.fixture()
def node_counter(paper_graph):
    return EventCounter(paper_graph, entity=EntityKind.NODES)


class TestSideQualification:
    def test_point_sides(self, edge_counter):
        mask = edge_counter.event_mask(
            EventType.STABILITY, Side.point(0), Side.point(1)
        )
        assert mask.sum() == 1  # only (u1, u2) is stable t0 -> t1

    def test_union_side_any_semantics(self, node_counter):
        # Old = t0; new = [t1..t2] under union: u5 qualifies (exists at t2).
        old = Side.point(0)
        new = Side(Interval(1, 2), Semantics.UNION)
        entities = node_counter.event_entities(EventType.GROWTH, old, new)
        assert "u5" in entities

    def test_intersection_side_all_semantics(self, node_counter):
        # New = [t1..t2] under intersection: u5 (only at t2) fails, u1
        # (only at t1) fails; u2/u4 pass.
        old = Side.point(0)
        new = Side(Interval(1, 2), Semantics.INTERSECTION)
        entities = node_counter.event_entities(EventType.STABILITY, old, new)
        assert set(entities) == {"u2", "u4"}

    def test_shrinkage_entities(self, edge_counter):
        old, new = Side.point(0), Side.point(1)
        entities = edge_counter.event_entities(EventType.SHRINKAGE, old, new)
        assert set(entities) == {("u2", "u3"), ("u1", "u4")}

    def test_growth_entities(self, edge_counter):
        old, new = Side.point(0), Side.point(1)
        entities = edge_counter.event_entities(EventType.GROWTH, old, new)
        assert set(entities) == {("u4", "u2")}


class TestStaticKeyCounting:
    def test_node_key(self, paper_graph):
        counter = EventCounter(
            paper_graph, entity=EntityKind.NODES,
            attributes=["gender"], key=("f",),
        )
        # Stable nodes t0->t1: u1, u2, u4 of which f: u2, u4.
        assert counter.count(EventType.STABILITY, Side.point(0), Side.point(1)) == 2

    def test_edge_key(self, paper_graph):
        counter = EventCounter(
            paper_graph, attributes=["gender"], key=(("f",), ("f",)),
        )
        # New f-f edges t0->t1: (u4,u2).
        assert counter.count(EventType.GROWTH, Side.point(0), Side.point(1)) == 1

    def test_key_requires_attributes(self, paper_graph):
        with pytest.raises(ValueError):
            EventCounter(paper_graph, key=("f",))

    def test_no_key_counts_everything(self, edge_counter):
        old, new = Side.point(0), Side.point(1)
        total = edge_counter.count(EventType.SHRINKAGE, old, new)
        assert total == 2

    def test_static_attributes_without_key(self, paper_graph):
        counter = EventCounter(paper_graph, attributes=["gender"])
        old, new = Side.point(0), Side.point(1)
        # Without a key the count is the raw entity count.
        assert counter.count(EventType.SHRINKAGE, old, new) == 2


class TestVaryingAttributeCounting:
    def test_node_appearances(self, paper_graph):
        counter = EventCounter(
            paper_graph,
            entity=EntityKind.NODES,
            attributes=["gender", "publications"],
            key=("f", 1),
        )
        old, new = Side.point(0), Side.point(1)
        # Growth of (f,1) appearances: u4 newly carries (f,1) at t1 but
        # u4 itself exists at t0 -> not a growth *node*.  Node-level
        # growth events count nodes in the growth set; only their
        # appearances inside the window are tuple-filtered.
        assert counter.count(EventType.GROWTH, old, new) == 0

    def test_shrinkage_node_appearances(self, paper_graph):
        counter = EventCounter(
            paper_graph,
            entity=EntityKind.NODES,
            attributes=["gender", "publications"],
            key=("f", 1),
        )
        old, new = Side.point(0), Side.point(1)
        # u3 disappears; its t0 appearance is (f, 1).
        assert counter.count(EventType.SHRINKAGE, old, new) == 1

    def test_edge_appearances(self, paper_graph):
        counter = EventCounter(
            paper_graph,
            attributes=["gender", "publications"],
            key=(("f", 1), ("f", 1)),
        )
        old, new = Side.point(1), Side.point(2)
        # (u4,u2) is stable t1->t2 and both carry (f,1) throughout.
        assert counter.count(EventType.STABILITY, old, new) == 1

    def test_varying_without_key_counts_appearances(self, paper_graph):
        counter = EventCounter(
            paper_graph,
            entity=EntityKind.NODES,
            attributes=["publications"],
        )
        old, new = Side.point(0), Side.point(1)
        # Stable nodes: u1, u2, u4; appearances over the window {t0, t1}:
        # u1 -> {3, 1}, u2 -> {1}, u4 -> {2, 1}: 5 distinct pairs.
        assert counter.count(EventType.STABILITY, old, new) == 5


class TestMonotonicityOfCounts:
    """Lemma 3.3 and Lemmas 3.9/3.10 as structural facts of the counter."""

    def test_union_extension_increases_stability(self, small_dblp):
        counter = EventCounter(small_dblp)
        old = Side.point(0)
        counts = [
            counter.count(
                EventType.STABILITY,
                old,
                Side(Interval(1, stop), Semantics.UNION),
            )
            for stop in range(1, len(small_dblp.timeline))
        ]
        assert counts == sorted(counts)

    def test_intersection_extension_decreases_stability(self, small_dblp):
        counter = EventCounter(small_dblp)
        old = Side.point(0)
        counts = [
            counter.count(
                EventType.STABILITY,
                old,
                Side(Interval(1, stop), Semantics.INTERSECTION),
            )
            for stop in range(1, len(small_dblp.timeline))
        ]
        assert counts == sorted(counts, reverse=True)

    def test_growth_decreases_when_old_extends_by_union(self, small_dblp):
        counter = EventCounter(small_dblp)
        n = len(small_dblp.timeline)
        new = Side.point(n - 1)
        counts = [
            counter.count(
                EventType.GROWTH,
                Side(Interval(start, n - 2), Semantics.UNION),
                new,
            )
            for start in range(n - 2, -1, -1)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_growth_increases_when_old_extends_by_intersection(self, small_dblp):
        counter = EventCounter(small_dblp)
        n = len(small_dblp.timeline)
        new = Side.point(n - 1)
        counts = [
            counter.count(
                EventType.GROWTH,
                Side(Interval(start, n - 2), Semantics.INTERSECTION),
                new,
            )
            for start in range(n - 2, -1, -1)
        ]
        assert counts == sorted(counts)

    def test_shrinkage_decreases_when_new_extends_by_union(self, small_dblp):
        counter = EventCounter(small_dblp)
        old = Side.point(0)
        counts = [
            counter.count(
                EventType.SHRINKAGE,
                old,
                Side(Interval(1, stop), Semantics.UNION),
            )
            for stop in range(1, len(small_dblp.timeline))
        ]
        assert counts == sorted(counts, reverse=True)


class TestEventWindow:
    """Regression: the STABILITY event window dedupes duplicate time
    labels when the two sides overlap, preserving timeline order."""

    def test_overlapping_stability_sides_deduped(self, paper_graph):
        counter = EventCounter(
            paper_graph, entity=EntityKind.NODES, attributes=["publications"]
        )
        old = Side(Interval(0, 1), Semantics.UNION)
        new = Side(Interval(1, 2), Semantics.UNION)
        window = counter._event_window(EventType.STABILITY, old, new)
        assert window == list(paper_graph.timeline.labels)
        assert len(window) == len(set(window))

    def test_window_is_in_timeline_order(self, paper_graph):
        counter = EventCounter(
            paper_graph, entity=EntityKind.NODES, attributes=["publications"]
        )
        # Even with the sides given "backwards", the window follows the
        # timeline, not the concatenation order of the sides.
        old = Side(Interval(1, 2), Semantics.UNION)
        new = Side(Interval(0, 1), Semantics.UNION)
        window = counter._event_window(EventType.STABILITY, old, new)
        assert window == list(paper_graph.timeline.labels)

    def test_growth_window_is_new_side(self, paper_graph):
        counter = EventCounter(paper_graph, attributes=["publications"])
        old = Side.point(0)
        new = Side(Interval(1, 2), Semantics.UNION)
        labels = paper_graph.timeline.labels
        assert counter._event_window(EventType.GROWTH, old, new) == [
            labels[1], labels[2]
        ]
        assert counter._event_window(EventType.SHRINKAGE, old, new) == [labels[0]]

    def test_overlap_count_matches_brute_force(self, tiny_graph):
        """Varying-attribute counts over an overlapping pair equal the
        brute-force distinct-appearance count over the deduped window."""
        counter = EventCounter(
            tiny_graph, entity=EntityKind.NODES, attributes=["level"]
        )
        old = Side(Interval(0, 2), Semantics.UNION)
        new = Side(Interval(1, 3), Semantics.UNION)
        mask = counter.event_mask(EventType.STABILITY, old, new)
        labels = tiny_graph.timeline.labels
        window = [labels[i] for i in range(4)]  # deduped union of the sides
        presence = tiny_graph.node_presence.values
        appearances = set()
        for row, node in enumerate(tiny_graph.node_presence.row_labels):
            if not mask[row]:
                continue
            for t in window:
                col = tiny_graph.timeline.index_of(t)
                if presence[row, col]:
                    value = tiny_graph.attribute_value(node, "level", t)
                    appearances.add((node, value))
        assert counter.count(EventType.STABILITY, old, new) == len(appearances)
