"""Tests for the school contact-network generator."""

import pytest

from repro.analysis import homophily
from repro.core import aggregate, union
from repro.datasets import ContactNetworkConfig, generate_contacts
from repro.exploration import EventType, ExtendSide, Goal, explore


@pytest.fixture(scope="module")
def school():
    return generate_contacts(
        ContactNetworkConfig(
            days=6,
            pupils_per_class=15,
            contacts_per_day=250,
            closed_grade="2nd",
            closure_days=(3, 4),
            seed=5,
        )
    )


class TestStructure:
    def test_population(self, school):
        # 3 grades x 2 classes x 15 pupils.
        assert school.n_nodes == 90

    def test_static_attributes(self, school):
        grades = {school.attribute_value(n, "grade") for n in school.nodes}
        klasses = {school.attribute_value(n, "klass") for n in school.nodes}
        assert grades == {"1st", "2nd", "3rd"}
        assert klasses == {"A", "B"}

    def test_daily_contact_budget(self, school):
        for day in school.timeline.labels:
            assert school.n_edges_at(day) == 250

    def test_determinism(self):
        config = ContactNetworkConfig(days=3, contacts_per_day=100)
        assert generate_contacts(config) == generate_contacts(config)

    def test_no_self_loops(self, school):
        assert all(u != v for u, v in school.edges)


class TestHomophily:
    def test_within_grade_contacts_dominate(self, school):
        agg = aggregate(
            union(school, school.timeline.labels[:3]), ["grade"], distinct=False
        )
        # Random mixing over 3 grades would give ~1/3.
        assert homophily(agg) > 0.6

    def test_class_homophily_exceeds_grade_baseline(self, school):
        agg = aggregate(
            union(school, school.timeline.labels[:3]), ["klass"], distinct=False
        )
        assert homophily(agg) > 0.5


class TestClosure:
    def test_closed_grade_absent(self, school):
        for day in ("day4", "day5"):
            grades = {
                school.attribute_value(n, "grade")
                for n in school.nodes_at(day)
            }
            assert "2nd" not in grades

    def test_open_days_have_everyone(self, school):
        assert school.n_nodes_at("day1") == 90
        assert school.n_nodes_at("day6") == 90

    def test_shrinkage_detects_the_closure(self, school):
        """The paper's mitigation-evaluation workflow: the largest
        node-shrinkage pair lands on the closure boundary."""
        from repro.exploration import EntityKind

        result = explore(
            school, EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD, 20,
            entity=EntityKind.NODES,
        )
        best = result.best()
        assert best is not None
        # day3 (index 2) -> day4 (index 3) is the closure onset.
        assert best.new.interval.start == 3

    def test_growth_detects_the_reopening(self, school):
        from repro.exploration import EntityKind

        result = explore(
            school, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 20,
            entity=EntityKind.NODES,
        )
        best = result.best()
        assert best is not None
        # Reopening on day6 (index 5).
        assert best.new.interval.stop == 5


class TestValidation:
    def test_bad_shares(self):
        with pytest.raises(ValueError):
            ContactNetworkConfig(class_share=0.8, grade_share=0.5)

    def test_unknown_closed_grade(self):
        with pytest.raises(ValueError):
            ContactNetworkConfig(closed_grade="9th")

    def test_closure_day_out_of_range(self):
        with pytest.raises(ValueError):
            ContactNetworkConfig(days=3, closure_days=(5,))

    def test_zero_days(self):
        with pytest.raises(ValueError):
            ContactNetworkConfig(days=0)
