"""Engine-parity suite: aggregate vs. aggregate_fast on hostile inputs.

The two aggregation engines (the literal Algorithm 2 transcription and
the factorized numpy engine) must agree everywhere — including the edge
cases this PR fixed: duplicate/unordered time windows (which used to
double-count in ALL mode), float attribute frames carrying NaN at absent
cells, and dangling edges (which used to escape as bare ``KeyError``).

A hypothesis property additionally pins the observability invariant:
running any pipeline under an enabled tracer produces bit-identical
results to running it disabled.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    TemporalGraph,
    Timeline,
    aggregate,
    aggregate_fast,
)
from repro.errors import AggregationError
from repro.exploration import EventType, ExtendSide, Goal, explore
from repro.frames import LabeledFrame
from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer
from repro.testing import assert_same_aggregate, temporal_graphs

ENGINES = [aggregate, aggregate_fast]


def _engine_id(engine):
    return engine.__name__


@pytest.fixture()
def float_attr_graph():
    """Three nodes over two times; ``score`` is a float frame with NaN
    exactly at absent appearances (the paper's "-" cells)."""
    times = ("t0", "t1")
    nodes = ("u1", "u2", "u3")
    node_presence = LabeledFrame(
        nodes, times, np.array([[1, 1], [1, 0], [0, 1]], dtype=np.uint8)
    )
    edge_presence = LabeledFrame(
        (("u1", "u2"), ("u1", "u3")),
        times,
        np.array([[1, 0], [0, 1]], dtype=np.uint8),
    )
    static = LabeledFrame(
        nodes, ("gender",), np.array([["f"], ["m"], ["f"]], dtype=object)
    )
    score = LabeledFrame(
        nodes,
        times,
        np.array([[1.0, 2.0], [1.0, np.nan], [np.nan, 2.0]], dtype=float),
    )
    return TemporalGraph(
        Timeline(times), node_presence, edge_presence, static, {"score": score}
    )


@pytest.fixture()
def dangling_graph():
    """An edge referencing a node absent from node presence (only
    constructible with ``validate=False`` — the CSV-loading path)."""
    times = ("t0", "t1")
    nodes = ("u1", "u2")
    node_presence = LabeledFrame(
        nodes, times, np.array([[1, 1], [1, 1]], dtype=np.uint8)
    )
    edge_presence = LabeledFrame(
        (("u1", "u2"), ("u1", "ghost")),
        times,
        np.array([[1, 1], [1, 0]], dtype=np.uint8),
    )
    static = LabeledFrame(
        nodes, ("gender",), np.array([["f"], ["m"]], dtype=object)
    )
    return TemporalGraph(
        Timeline(times),
        node_presence,
        edge_presence,
        static,
        {},
        validate=False,
    )


class TestDuplicateTimes:
    """Regression: a duplicated or unordered ``times`` argument must
    behave as the *set* of time points (pre-fix, ALL mode counted every
    repetition)."""

    @pytest.mark.parametrize("engine", ENGINES, ids=_engine_id)
    @pytest.mark.parametrize("distinct", [True, False])
    def test_duplicates_equal_dedup_window(self, paper_graph, engine, distinct):
        messy = engine(
            paper_graph,
            ["gender"],
            distinct=distinct,
            times=["t1", "t0", "t1", "t1"],
        )
        clean = engine(
            paper_graph, ["gender"], distinct=distinct, times=["t0", "t1"]
        )
        assert_same_aggregate(messy, clean)

    @pytest.mark.parametrize("engine", ENGINES, ids=_engine_id)
    def test_unordered_window_is_normalized(self, paper_graph, engine):
        backwards = engine(
            paper_graph, ["publications"], distinct=False, times=["t2", "t0"]
        )
        forwards = engine(
            paper_graph, ["publications"], distinct=False, times=["t0", "t2"]
        )
        assert_same_aggregate(backwards, forwards)

    @pytest.mark.parametrize("distinct", [True, False])
    def test_engines_agree_on_duplicate_windows(self, paper_graph, distinct):
        times = ["t1", "t1", "t0"]
        assert_same_aggregate(
            aggregate(paper_graph, ["gender"], distinct=distinct, times=times),
            aggregate_fast(
                paper_graph, ["gender"], distinct=distinct, times=times
            ),
        )


class TestFloatAttributeParity:
    @pytest.mark.parametrize("distinct", [True, False])
    def test_engines_agree_with_nan_cells(self, float_attr_graph, distinct):
        assert_same_aggregate(
            aggregate(float_attr_graph, ["score"], distinct=distinct),
            aggregate_fast(float_attr_graph, ["score"], distinct=distinct),
        )

    @pytest.mark.parametrize("distinct", [True, False])
    def test_engines_agree_on_mixed_attrs(self, float_attr_graph, distinct):
        assert_same_aggregate(
            aggregate(float_attr_graph, ["gender", "score"], distinct=distinct),
            aggregate_fast(
                float_attr_graph, ["gender", "score"], distinct=distinct
            ),
        )

    def test_nan_weights_are_finite_counts(self, float_attr_graph):
        result = aggregate(float_attr_graph, ["score"], distinct=False)
        # Only present appearances carry tuples; NaN never becomes a key.
        assert all(
            not (isinstance(v, float) and np.isnan(v))
            for key in result.node_weights
            for v in key
        )
        assert result.total_node_weight() == 4  # 4 present appearances


class TestDanglingEdges:
    """Regression: both engines now fail from the exception taxonomy,
    naming the offending edge, instead of a bare ``KeyError``."""

    @pytest.mark.parametrize("engine", ENGINES, ids=_engine_id)
    def test_dangling_edge_raises_aggregation_error(self, dangling_graph, engine):
        with pytest.raises(AggregationError) as excinfo:
            engine(dangling_graph, ["gender"], distinct=True)
        message = str(excinfo.value)
        assert "ghost" in message and "dangling" in message

    def test_diagnostics_reports_dangling_edge(self, dangling_graph):
        from repro.diagnostics import check_graph

        findings = check_graph(dangling_graph)
        assert any(f.code == "dangling-edge" for f in findings)


class TestTracingParity:
    """Observability must be read-only: enabling the tracer never
    changes any pipeline result."""

    @settings(max_examples=25, deadline=None)
    @given(graph=temporal_graphs())
    def test_tracing_never_changes_aggregates(self, graph):
        def run():
            return (
                aggregate(graph, ["gender"], distinct=True),
                aggregate(graph, ["gender", "level"], distinct=False),
                aggregate_fast(graph, ["gender"], distinct=False),
            )

        baseline = run()
        previous_tracer = set_tracer(Tracer(enabled=True))
        previous_metrics = set_metrics(MetricsRegistry())
        try:
            traced_results = run()
        finally:
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)
        for before, after in zip(baseline, traced_results):
            assert_same_aggregate(before, after)

    @settings(max_examples=10, deadline=None)
    @given(graph=temporal_graphs(min_times=3))
    def test_tracing_never_changes_exploration(self, graph):
        def run():
            result = explore(
                graph,
                EventType.GROWTH,
                Goal.MINIMAL,
                ExtendSide.NEW,
                k=1,
            )
            return (result.pairs, result.evaluations)

        baseline = run()
        previous_tracer = set_tracer(Tracer(enabled=True))
        previous_metrics = set_metrics(MetricsRegistry())
        try:
            traced_result = run()
        finally:
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)
        assert baseline == traced_result
