"""Tests for hierarchical (coarse-to-fine) exploration."""

import pytest

from repro.core import TimeHierarchy
from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    drill_explore,
    explore,
)


@pytest.fixture(scope="module")
def hierarchy(small_dblp):
    return TimeHierarchy.regular(small_dblp.timeline.labels, width=5)


class TestDrillExplore:
    def test_two_stages_run(self, small_dblp, hierarchy):
        result = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k=30,
        )
        assert result.coarse.pairs
        assert result.fine
        assert result.total_evaluations > result.coarse.evaluations

    def test_fine_pairs_meet_threshold(self, small_dblp, hierarchy):
        result = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k=30,
        )
        for pair in result.all_fine_pairs():
            assert pair.count >= 30

    def test_drill_finds_the_flat_searchs_hits(self, small_dblp, hierarchy):
        """Every qualifying base step found by flat exploration inside a
        drilled window is also found by the drill."""
        k = 40
        flat = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k
        )
        drilled = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k=k,
        )
        fine_counts = {p.count for p in drilled.all_fine_pairs()}
        # Flat consecutive-point hits have counterparts among the fine
        # pairs (same counts on the same sub-timelines).
        flat_point_counts = {
            p.count for p in flat.pairs
            if p.old.is_point and p.new.is_point
        }
        assert flat_point_counts & fine_counts or not flat_point_counts

    def test_stability_drill(self, small_dblp, hierarchy):
        result = drill_explore(
            small_dblp, hierarchy,
            EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, k=2,
        )
        for fine in result.fine.values():
            for pair in fine.pairs:
                assert pair.count >= 2

    def test_coarse_k_override(self, small_dblp, hierarchy):
        generous = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            k=40, coarse_k=1,
        )
        strict = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            k=40, coarse_k=40,
        )
        assert len(generous.coarse.pairs) >= len(strict.coarse.pairs)

    def test_no_coarse_hits_no_fine_work(self, small_dblp, hierarchy):
        result = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k=10 ** 9,
        )
        assert result.coarse.pairs == ()
        assert result.fine == {}

    def test_fine_keys_are_unit_labels(self, small_dblp, hierarchy):
        result = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k=30,
        )
        for first, last in result.fine:
            assert first in hierarchy.unit_labels
            assert last in hierarchy.unit_labels
