"""Tests for DOT export of aggregate and evolution graphs."""

from repro.core import aggregate, aggregate_evolution, union
from repro.interop import aggregate_to_dot, evolution_to_dot, write_dot


class TestAggregateToDot:
    def test_structure(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        dot = aggregate_to_dot(agg)
        assert dot.startswith("digraph aggregate {")
        assert dot.rstrip().endswith("}")

    def test_node_weights_in_labels(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        dot = aggregate_to_dot(agg)
        assert '"f" [label="f (3)"]' in dot
        assert '"m" [label="m (1)"]' in dot

    def test_edge_weights_in_labels(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        dot = aggregate_to_dot(agg)
        assert '"m" -> "f" [label="2"]' in dot

    def test_multi_attribute_keys(self, paper_graph):
        agg = aggregate(
            union(paper_graph, ["t0"], ["t1"]),
            ["gender", "publications"],
        )
        dot = aggregate_to_dot(agg)
        assert '"f,1"' in dot

    def test_custom_name(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        assert aggregate_to_dot(agg, name="fig3a").startswith("digraph fig3a")

    def test_quoting(self, paper_graph):
        from repro.core import AggregateGraph

        agg = AggregateGraph(("g",), {('he said "hi"',): 1}, {})
        dot = aggregate_to_dot(agg)
        assert '\\"hi\\"' in dot


class TestEvolutionToDot:
    def test_weights_rendered(self, paper_graph):
        evo = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        dot = evolution_to_dot(evo)
        assert "St=" in dot and "Gr=" in dot and "Shr=" in dot

    def test_dominant_color(self, paper_graph):
        evo = aggregate_evolution(
            paper_graph, ["t0"], ["t1"], ["gender", "publications"]
        )
        dot = evolution_to_dot(evo)
        # (m,3) is pure shrinkage -> red; (m,1) pure growth -> blue.
        assert "firebrick" in dot
        assert "steelblue" in dot

    def test_stability_color(self, paper_graph):
        evo = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        dot = evolution_to_dot(evo)
        assert "forestgreen" in dot

    def test_parses_as_balanced(self, paper_graph):
        evo = aggregate_evolution(paper_graph, ["t0"], ["t1"], ["gender"])
        dot = evolution_to_dot(evo)
        assert dot.count("{") == dot.count("}")


class TestWriteDot:
    def test_writes_file(self, tmp_path, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        path = write_dot(aggregate_to_dot(agg), tmp_path / "fig.dot")
        content = path.read_text()
        assert content.startswith("digraph")
        assert content.endswith("}\n")
