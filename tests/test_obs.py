"""Unit and integration tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.core import aggregate, union
from repro.errors import ConfigurationError
from repro.materialize import MaterializedStore
from repro.obs import (
    MetricsRegistry,
    NullSpanHandle,
    Span,
    Tracer,
    TimingHistogram,
    get_metrics,
    get_tracer,
    observability_snapshot,
    render_metrics,
    render_span_tree,
    set_metrics,
    set_tracer,
    to_json,
    trace_span,
    trace_to_dict,
    traced,
)
from repro.session import GraphTempoSession


@pytest.fixture()
def fresh_obs():
    """Install a fresh enabled tracer + registry; restore afterwards."""
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry)
    yield tracer, registry
    set_tracer(previous_tracer)
    set_metrics(previous_metrics)


class TestTracer:
    def test_disabled_returns_shared_null_handle(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a")
        second = tracer.span("b", attr=1)
        assert isinstance(first, NullSpanHandle)
        assert first is second  # no allocation on the fast path

    def test_null_handle_is_a_context_manager(self):
        with Tracer(enabled=False).span("a") as span:
            assert span is None

    def test_nested_spans_build_a_tree(self, fresh_obs):
        tracer, _ = fresh_obs
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        root = tracer.last_root
        assert root is not None
        assert root.span_names() == ["root", "child", "grandchild", "sibling"]
        assert root.find("grandchild") is not None
        assert root.wall_s >= root.children[0].wall_s >= 0.0

    def test_attributes_recorded(self, fresh_obs):
        tracer, _ = fresh_obs
        with tracer.span("op", n_times=3, engine="fast"):
            pass
        assert tracer.last_root.attributes == {"n_times": 3, "engine": "fast"}

    def test_exception_marks_span_and_propagates(self, fresh_obs):
        tracer, _ = fresh_obs
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.last_root.attributes["error"] == "ValueError"

    def test_trace_span_uses_singleton(self, fresh_obs):
        tracer, _ = fresh_obs
        with trace_span("via-module"):
            pass
        assert tracer.last_root.name == "via-module"

    def test_traced_decorator(self, fresh_obs):
        tracer, _ = fresh_obs

        @traced()
        def work(x):
            return x + 1

        assert work(1) == 2
        assert tracer.last_root.name.endswith("work")

    def test_span_wall_time_feeds_metrics(self, fresh_obs):
        tracer, registry = fresh_obs
        with tracer.span("timed"):
            pass
        histogram = registry.timing("span.timed")
        assert histogram is not None and histogram.count == 1

    def test_reset_clears_state(self, fresh_obs):
        tracer, _ = fresh_obs
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.last_root is None

    def test_set_tracer_returns_previous(self):
        current = get_tracer()
        replacement = Tracer()
        assert set_tracer(replacement) is current
        assert set_tracer(current) is replacement


class TestMetrics:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g", 1.5)
        registry.gauge("g", 2.5)
        assert registry.gauge_value("g") == 2.5
        assert registry.gauge_value("missing") == 0.0

    def test_timing_histogram_summary(self):
        histogram = TimingHistogram()
        for s in (0.001, 0.002, 0.003):
            histogram.observe(s)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(0.002)
        snap = histogram.snapshot()
        assert snap["min_s"] == 0.001 and snap["max_s"] == 0.003
        assert sum(snap["buckets"].values()) == 3

    def test_empty_histogram_snapshot(self):
        snap = TimingHistogram().snapshot()
        assert snap["count"] == 0 and snap["min_s"] == 0.0

    def test_snapshot_shape_and_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.gauge("g", 1.0)
        registry.observe("t", 0.5)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "timings"}
        assert snap["counters"] == {"c": 1}
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_set_metrics_returns_previous(self):
        current = get_metrics()
        replacement = MetricsRegistry()
        assert set_metrics(replacement) is current
        assert set_metrics(current) is replacement


class TestExport:
    def test_trace_to_dict_none_passthrough(self):
        assert trace_to_dict(None) is None

    def test_snapshot_round_trips_through_json(self, fresh_obs):
        tracer, registry = fresh_obs
        with tracer.span("root", label="x"):
            registry.inc("work")
        payload = observability_snapshot(tracer.last_root, registry)
        decoded = json.loads(to_json(payload))
        assert decoded["trace"]["name"] == "root"
        assert decoded["metrics"]["counters"]["work"] == 1

    def test_render_span_tree(self):
        root = Span("root", wall_s=0.01)
        root.children.append(Span("child", wall_s=0.004))
        text = render_span_tree(root)
        assert "root" in text and "  child" in text and "%" in text

    def test_render_span_tree_none(self):
        assert "no trace" in render_span_tree(None)

    def test_render_metrics(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.observe("t", 0.001)
        text = render_metrics(registry.snapshot())
        assert "c" in text and "n=1" in text

    def test_render_metrics_empty(self):
        assert render_metrics(MetricsRegistry().snapshot()) == "no metrics recorded"


class TestPipelineIntegration:
    def test_span_tree_covers_operator_aggregate_explore(
        self, paper_graph, fresh_obs
    ):
        tracer, registry = fresh_obs
        session = GraphTempoSession(paper_graph)
        with tracer.span("workload"):
            window = union(paper_graph, paper_graph.timeline.labels)
            aggregate(window, ["gender"], distinct=False)
            session.explore("growth", "minimal", "new")
        root = tracer.last_root
        names = root.span_names()
        assert "operator.union" in names
        assert "aggregate" in names
        assert "explore" in names
        # The session facade's span wraps the exploration span.
        session_span = root.find("session.explore")
        assert session_span is not None
        assert session_span.find("explore") is not None

    def test_session_stats_and_last_trace(self, paper_graph, fresh_obs):
        tracer, registry = fresh_obs
        session = GraphTempoSession(paper_graph)
        session.aggregate(["gender"])
        assert session.last_trace() is tracer.last_root
        assert session.last_trace().name == "session.aggregate"
        stats = session.stats()
        assert stats["counters"]["aggregate.calls"] >= 1

    def test_algorithm2_step_counters(self, paper_graph, fresh_obs):
        _, registry = fresh_obs
        # publications is time-varying, forcing the general Algorithm 2
        # path with its unpivot/dedup/group-count instrumentation.
        aggregate(paper_graph, ["publications"], distinct=True)
        assert registry.counter("algo2.unpivot_rows") > 0
        assert registry.counter("algo2.dedup_rows") > 0
        assert registry.counter("algo2.group_count_groups") > 0
        assert registry.counter("algo2.merge_rows") > 0

    def test_frames_rows_scanned(self, paper_graph, fresh_obs):
        _, registry = fresh_obs
        aggregate(paper_graph, ["publications"], distinct=True)
        assert registry.counter("frames.rows_scanned") > 0
        assert registry.counter("frames.table_ops") > 0

    def test_exploration_counters(self, paper_graph, fresh_obs):
        _, registry = fresh_obs
        session = GraphTempoSession(paper_graph)
        session.explore("stability", "maximal", "new")
        assert registry.counter("exploration.runs") == 1
        assert registry.counter("exploration.chains") >= 1
        assert registry.counter("exploration.chain_steps") >= 1

    def test_store_stats_mirror_metrics(self, paper_graph, fresh_obs):
        _, registry = fresh_obs
        store = MaterializedStore(paper_graph)
        store.union_aggregate(["gender"], paper_graph.timeline.labels)
        store.union_aggregate(["gender"], paper_graph.timeline.labels)
        assert registry.counter("materialize.cache_hits") == store.stats.hits
        assert registry.counter("materialize.cache_misses") == store.stats.misses
        assert registry.counter("materialize.derivations") == store.stats.derived
        assert store.stats.hits > 0 and store.stats.misses > 0

    def test_disabled_tracer_still_counts(self, paper_graph):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            aggregate(paper_graph, ["gender"], distinct=False)
        finally:
            set_metrics(previous)
        # Counters are always on, even with the default disabled tracer.
        assert registry.counter("aggregate.calls") == 1


class TestProfileRunner:
    def test_run_profile_example(self):
        from repro.obs.profile import run_profile

        report = run_profile("example", "session")
        assert report.summary["aggregate_engines_agree"] is True
        assert report.trace is not None
        assert report.trace.name == "profile.session"
        names = report.trace.span_names()
        assert "operator.union" in names and "aggregate" in names
        assert "explore" in names
        assert report.metrics["counters"]["aggregate.calls"] >= 2
        payload = report.to_dict()
        json.loads(to_json(payload))  # serializable
        assert payload["dataset"] == "example"

    def test_run_profile_restores_singletons(self):
        from repro.obs.profile import run_profile

        tracer_before = get_tracer()
        metrics_before = get_metrics()
        run_profile("example", "aggregate")
        assert get_tracer() is tracer_before
        assert get_metrics() is metrics_before

    def test_unknown_workload_rejected(self):
        from repro.obs.profile import run_profile

        with pytest.raises(ConfigurationError):
            run_profile("example", "nope")

    def test_unknown_dataset_rejected(self):
        from repro.obs.profile import run_profile

        with pytest.raises(ConfigurationError):
            run_profile("nope", "aggregate")
