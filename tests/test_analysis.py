"""Tests for the qualitative report builders (Section 5.2)."""

import pytest

from repro.analysis import dataset_report, evolution_report, exploration_report
from repro.exploration import EventType, ExtendSide, Goal


class TestDatasetReport:
    def test_contains_sizes(self, paper_graph):
        text = dataset_report(paper_graph, "example")
        assert "example" in text
        assert "t0" in text and "t2" in text
        assert "4" in text  # nodes at t0

    def test_totals_line(self, paper_graph):
        text = dataset_report(paper_graph)
        assert "5 distinct nodes" in text
        assert "6 distinct edges" in text


class TestEvolutionReport:
    def test_basic_report(self, paper_graph):
        report = evolution_report(paper_graph, ["t0"], ["t1"], ["gender"])
        assert "Aggregate nodes" in report.text
        assert "Aggregate edges" in report.text
        assert report.aggregate.node(("f",)).stability == 2

    def test_activity_filter(self, paper_graph):
        report = evolution_report(
            paper_graph, ["t0"], ["t1"], ["gender"], min_publications=1
        )
        # The filter keeps appearances with publications strictly > 1:
        # u1 (3 pubs) and u4 (2 pubs) at t0; nobody at t1 (all have 1
        # publication there) -> pure shrinkage.
        weights = report.aggregate.totals()
        assert weights.stability == 0
        assert weights.growth == 0
        assert weights.shrinkage == 2
        assert "publications > 1" in report.text

    def test_percentages_rendered(self, paper_graph):
        report = evolution_report(paper_graph, ["t0"], ["t1"], ["gender"])
        assert "%" in report.text


class TestExplorationReport:
    def test_report_rows_per_threshold(self, small_dblp):
        report = exploration_report(
            small_dblp,
            EventType.GROWTH,
            Goal.MINIMAL,
            ExtendSide.NEW,
            thresholds=[1, 10],
        )
        assert set(report.results) == {1, 10}
        assert "T_old" in report.text and "T_new" in report.text

    def test_empty_result_renders_dash(self, small_dblp):
        report = exploration_report(
            small_dblp,
            EventType.STABILITY,
            Goal.MAXIMAL,
            ExtendSide.NEW,
            thresholds=[10 ** 9],
        )
        assert "-" in report.text
        assert report.results[10 ** 9].pairs == ()

    def test_time_labels_used(self, small_dblp):
        report = exploration_report(
            small_dblp,
            EventType.GROWTH,
            Goal.MINIMAL,
            ExtendSide.NEW,
            thresholds=[1],
        )
        assert "2000" in report.text or "2001" in report.text

    def test_title_override(self, small_dblp):
        report = exploration_report(
            small_dblp,
            EventType.GROWTH,
            Goal.MINIMAL,
            ExtendSide.NEW,
            thresholds=[1],
            title="custom title",
        )
        assert report.text.startswith("custom title")

    def test_key_filter_threads_through(self, small_dblp):
        report = exploration_report(
            small_dblp,
            EventType.GROWTH,
            Goal.MINIMAL,
            ExtendSide.NEW,
            thresholds=[1],
            attributes=["gender"],
            key=(("f",), ("f",)),
        )
        for result in report.results.values():
            for pair in result.pairs:
                assert pair.count >= 1
