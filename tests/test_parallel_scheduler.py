"""Scheduler properties of :mod:`repro.parallel`.

Three families, matching the executor's promises:

* the chunk planner covers every task exactly once, for arbitrary
  ``(n_tasks, workers, chunk_size)`` — including fewer tasks than
  workers and empty input;
* assembled results are in task order no matter in which order chunks
  complete (simulated through a shuffling fake dispatch);
* worker failures surface as the right exception: domain errors keep
  their taxonomy type, infrastructure failures raise a
  :class:`~repro.errors.ParallelError` carrying the failing task spec.
"""

from __future__ import annotations

import os
import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AggregationError,
    ConfigurationError,
    ParallelError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    Chunk,
    InlineExecutor,
    ParallelExecutor,
    assemble,
    get_executor,
    parallelism_scope,
    plan_chunks,
)
from repro.parallel.executor import _ChunkOutcome


# ----------------------------------------------------------------------
# Module-level work functions (the pool pickles them by reference)
# ----------------------------------------------------------------------


def _double(payload, task):
    return (payload or 0) + task * 2


def _fail_on_three(payload, task):
    if task == 3:
        raise ValueError("boom on three")
    return task


def _domain_error(payload, task):
    raise AggregationError(f"domain failure on {task}")


def _sleep_forever(payload, task):
    time.sleep(60)
    return task


def _die(payload, task):
    os._exit(13)


# ----------------------------------------------------------------------
# Chunk planner coverage
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    n_tasks=st.integers(min_value=0, max_value=500),
    workers=st.integers(min_value=1, max_value=16),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
)
def test_plan_covers_every_task_exactly_once(n_tasks, workers, chunk_size):
    chunks = plan_chunks(n_tasks, workers, chunk_size)
    covered = [i for chunk in chunks for i in range(chunk.start, chunk.stop)]
    assert covered == list(range(n_tasks))
    # Chunk indices are sequential, chunks contiguous and non-empty.
    assert [chunk.index for chunk in chunks] == list(range(len(chunks)))
    for chunk in chunks:
        assert len(chunk) >= 1
    for previous, current in zip(chunks, chunks[1:]):
        assert previous.stop == current.start
    if chunk_size is not None:
        assert all(len(chunk) <= chunk_size for chunk in chunks)


def test_plan_empty_input_yields_no_chunks():
    assert plan_chunks(0, 4) == ()
    assert plan_chunks(0, 1, chunk_size=10) == ()


def test_plan_fewer_tasks_than_workers_has_no_empty_chunks():
    chunks = plan_chunks(3, 8)
    assert [len(chunk) for chunk in chunks] == [1, 1, 1]
    assert [(c.start, c.stop) for c in chunks] == [(0, 1), (1, 2), (2, 3)]


def test_plan_is_deterministic():
    assert plan_chunks(97, 5) == plan_chunks(97, 5)
    assert plan_chunks(97, 5, chunk_size=7) == plan_chunks(97, 5, chunk_size=7)


def test_plan_validates_arguments():
    with pytest.raises(ConfigurationError):
        plan_chunks(-1, 2)
    with pytest.raises(ConfigurationError):
        plan_chunks(5, 0)
    with pytest.raises(ConfigurationError):
        plan_chunks(5, 2, chunk_size=0)
    with pytest.raises(ConfigurationError):
        plan_chunks(5, 2, max_chunks=0)
    with pytest.raises(ConfigurationError, match="mutually exclusive"):
        plan_chunks(5, 2, chunk_size=2, max_chunks=3)


# Regressions found while writing the fabric tests: degenerate inputs
# (no tasks; a chunk-count cap exceeding the task count) must yield
# well-formed plans — no empty chunks, no zero chunk sizes, full cover.


def test_plan_empty_input_is_well_formed_under_every_cap():
    assert plan_chunks(0, 4, max_chunks=1) == ()
    assert plan_chunks(0, 16, max_chunks=100) == ()


def test_plan_more_chunks_requested_than_tasks():
    chunks = plan_chunks(3, 2, max_chunks=10)
    assert [len(chunk) for chunk in chunks] == [1, 1, 1]
    assert [(c.start, c.stop) for c in chunks] == [(0, 1), (1, 2), (2, 3)]


def test_plan_max_chunks_caps_chunk_count():
    chunks = plan_chunks(100, 8, max_chunks=3)
    assert len(chunks) <= 3
    covered = [i for chunk in chunks for i in range(chunk.start, chunk.stop)]
    assert covered == list(range(100))


@settings(max_examples=200, deadline=None)
@given(
    n_tasks=st.integers(min_value=0, max_value=500),
    workers=st.integers(min_value=1, max_value=16),
    max_chunks=st.integers(min_value=1, max_value=600),
)
def test_plan_max_chunks_always_well_formed(n_tasks, workers, max_chunks):
    chunks = plan_chunks(n_tasks, workers, max_chunks=max_chunks)
    covered = [i for chunk in chunks for i in range(chunk.start, chunk.stop)]
    assert covered == list(range(n_tasks))
    assert len(chunks) <= max(max_chunks, 1)
    for chunk in chunks:
        assert len(chunk) >= 1


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def test_assemble_flattens_in_task_order():
    chunks = plan_chunks(10, 2, chunk_size=4)
    results = {
        chunk.index: [i * 10 for i in range(chunk.start, chunk.stop)]
        for chunk in chunks
    }
    assert assemble(chunks, results) == [i * 10 for i in range(10)]


def test_assemble_rejects_missing_chunk():
    chunks = plan_chunks(4, 2, chunk_size=2)
    with pytest.raises(ParallelError) as excinfo:
        assemble(chunks, {0: [1, 2]})
    assert isinstance(excinfo.value.task, Chunk)
    assert excinfo.value.task.index == 1


def test_assemble_rejects_length_mismatch():
    chunks = plan_chunks(4, 2, chunk_size=2)
    with pytest.raises(ParallelError):
        assemble(chunks, {0: [1, 2], 1: [3]})


# ----------------------------------------------------------------------
# Deterministic ordering under adversarial completion order
# ----------------------------------------------------------------------


class _ShufflingExecutor(ParallelExecutor):
    """A fake pool: runs chunks inline but *completes* them in a
    shuffled order, exercising the index-keyed reassembly path."""

    def __init__(self, workers, seed, **kwargs):
        super().__init__(workers, **kwargs)
        self._shuffle = random.Random(seed).shuffle

    def _dispatch(self, chunks, tasks, fn, payload):
        shuffled = list(chunks)
        self._shuffle(shuffled)
        empty = MetricsRegistry().dump()
        return {
            chunk.index: _ChunkOutcome(
                results=[
                    fn(payload, task)
                    for task in tasks[chunk.start : chunk.stop]
                ],
                span=None,
                metrics=empty,
            )
            for chunk in shuffled
        }


@pytest.mark.parametrize("seed_offset", [0, 1, 2, 3])
def test_results_ordered_regardless_of_completion_order(test_seed, seed_offset):
    tasks = list(range(37))
    expected = InlineExecutor().map(_double, tasks, 5)
    executor = _ShufflingExecutor(4, test_seed + seed_offset, chunk_size=3)
    assert executor.map(_double, tasks, 5) == expected


def test_real_pool_results_are_in_task_order():
    tasks = list(range(25))
    executor = ParallelExecutor(2, chunk_size=4)
    assert executor.map(_double, tasks, 1) == [1 + t * 2 for t in tasks]


def test_empty_task_list_short_circuits():
    assert ParallelExecutor(4).map(_double, [], 0) == []


def test_single_worker_pool_runs_inline():
    # workers=1 must not pay for a pool: identical to InlineExecutor.
    tasks = list(range(9))
    assert ParallelExecutor(1).map(_double, tasks, 2) == [
        2 + t * 2 for t in tasks
    ]


# ----------------------------------------------------------------------
# Failure surfacing
# ----------------------------------------------------------------------


def test_worker_exception_raises_parallel_error_with_task():
    executor = ParallelExecutor(2, chunk_size=2)
    with pytest.raises(ParallelError) as excinfo:
        executor.map(_fail_on_three, list(range(8)))
    assert excinfo.value.task == 3
    assert "boom on three" in str(excinfo.value)


def test_worker_domain_error_keeps_taxonomy_type():
    executor = ParallelExecutor(2, chunk_size=1)
    with pytest.raises(AggregationError, match="domain failure"):
        executor.map(_domain_error, [0, 1])


def test_timeout_raises_worker_timeout_with_task():
    executor = ParallelExecutor(2, chunk_size=2, timeout=0.4)
    started = time.monotonic()
    with pytest.raises(WorkerTimeoutError) as excinfo:
        executor.map(_sleep_forever, list(range(4)))
    elapsed = time.monotonic() - started
    assert isinstance(excinfo.value, ParallelError)
    assert excinfo.value.task in range(4)
    assert elapsed < 30, "timeout must not wait for the sleeping worker"


def test_worker_crash_raises_worker_crash_error():
    executor = ParallelExecutor(2, chunk_size=2)
    with pytest.raises(WorkerCrashError) as excinfo:
        executor.map(_die, list(range(4)))
    assert isinstance(excinfo.value, ParallelError)
    assert excinfo.value.task in range(4)


# ----------------------------------------------------------------------
# Resolution rules
# ----------------------------------------------------------------------


def test_get_executor_defaults_to_inline(monkeypatch):
    # Pin a clean environment: the CI parity job exports
    # REPRO_PARALLEL_WORKERS for the whole suite, but this test is
    # about the no-configuration baseline.
    monkeypatch.delenv("REPRO_PARALLEL_WORKERS", raising=False)
    assert isinstance(get_executor(), InlineExecutor)
    assert isinstance(get_executor(1), InlineExecutor)


def test_get_executor_explicit_request_ignores_task_hint(monkeypatch):
    # This test is about the per-call pool specifically; the fabric
    # parity job pins REPRO_PARALLEL_BACKEND=sharded suite-wide.
    monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
    executor = get_executor(3, task_hint=1)
    assert isinstance(executor, ParallelExecutor)
    assert executor.workers == 3


def test_get_executor_implicit_default_is_gated_by_task_hint(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
    with parallelism_scope(4):
        assert isinstance(get_executor(task_hint=1), InlineExecutor)
        big = get_executor(task_hint=10_000_000)
        assert isinstance(big, ParallelExecutor)
        assert big.workers == 4


def test_parallelism_scope_nests_and_restores(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL_WORKERS", raising=False)
    with parallelism_scope(2) as outer:
        assert outer == 2
        with parallelism_scope(5) as inner:
            assert inner == 5
            assert get_executor(task_hint=10_000_000).workers == 5
        assert get_executor(task_hint=10_000_000).workers == 2
    assert isinstance(get_executor(task_hint=10_000_000), InlineExecutor)


def test_env_variable_sets_default(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
    executor = get_executor(task_hint=10_000_000)
    assert isinstance(executor, ParallelExecutor)
    assert executor.workers == 3


def test_bad_parallelism_values_rejected():
    with pytest.raises(ConfigurationError):
        get_executor(0)
    with pytest.raises(ConfigurationError):
        get_executor("many")
    with pytest.raises(ConfigurationError):
        ParallelExecutor(0)


# ----------------------------------------------------------------------
# Backend selection and executor pinning (the fabric seam)
# ----------------------------------------------------------------------


def test_env_backend_selects_the_shared_fabric(monkeypatch):
    from repro.parallel import ShardedExecutor, close_shared_fabrics

    monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "sharded")
    try:
        executor = get_executor(3, task_hint=1)
        assert isinstance(executor, ShardedExecutor)
        assert executor.workers == 3
        # Same shape -> same shared instance (that's the amortization).
        assert get_executor(3) is executor
        assert get_executor(2) is not executor
    finally:
        close_shared_fabrics()


def test_env_backend_inline_forces_serial(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "inline")
    assert isinstance(get_executor(4), InlineExecutor)


def test_env_backend_rejects_unknown_names(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "quantum")
    with pytest.raises(ConfigurationError, match="REPRO_PARALLEL_BACKEND"):
        get_executor(2)


def test_executor_scope_pins_an_instance(monkeypatch):
    from repro.parallel import executor_scope

    monkeypatch.delenv("REPRO_PARALLEL_WORKERS", raising=False)
    pinned = InlineExecutor()
    with executor_scope(pinned):
        # Pinning wins over explicit worker counts and task hints.
        assert get_executor(8) is pinned
        assert get_executor(task_hint=10_000_000) is pinned
        inner = ParallelExecutor(2)
        with executor_scope(inner):
            assert get_executor() is inner
        assert get_executor() is pinned
    assert isinstance(get_executor(), InlineExecutor)


def test_shared_fabric_replaces_closed_instances():
    from repro.parallel import close_shared_fabrics, shared_fabric

    try:
        first = shared_fabric(2)
        assert shared_fabric(2) is first
        first.close()
        replacement = shared_fabric(2)
        assert replacement is not first
        assert not replacement.closed
    finally:
        close_shared_fabrics()


def test_concurrent_maps_from_threads_do_not_cross_payloads():
    """Regression: the fork-COW payload channel is published in a module
    global; without the publish lock, thread A's pool could fork while
    thread B's payload was published, silently computing against the
    wrong payload (or crashing on shape mismatch)."""
    import threading

    executor = ParallelExecutor(2, chunk_size=4)
    tasks = list(range(16))
    failures = []

    def hammer(offset):
        try:
            for _ in range(5):
                expected = [offset + t * 2 for t in tasks]
                assert executor.map(_double, tasks, offset) == expected
        except BaseException as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(offset,))
        for offset in (0, 1000, 2000, 3000)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[0]
