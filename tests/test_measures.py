"""Tests for aggregate measures beyond COUNT (SUM/AVG/MIN/MAX)."""

import pytest

from repro.core import aggregate_measure


class TestNodeMeasures:
    def test_avg_at_t0(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", measure="avg", times=["t0"]
        )
        assert mg.node(("m",)) == 3.0                      # u1
        assert mg.node(("f",)) == pytest.approx(4 / 3)     # u2, u3, u4

    def test_sum(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", measure="sum", times=["t0"]
        )
        assert mg.node(("m",)) == 3
        assert mg.node(("f",)) == 4

    def test_min_max(self, paper_graph):
        lo = aggregate_measure(
            paper_graph, ["gender"], "publications", measure="min", times=["t0"]
        )
        hi = aggregate_measure(
            paper_graph, ["gender"], "publications", measure="max", times=["t0"]
        )
        assert lo.node(("f",)) == 1
        assert hi.node(("f",)) == 2

    def test_window_distinct_vs_all(self, paper_graph):
        # Over [t0, t1], u2 carries (f, 1) twice: DIST counts the value
        # once, ALL twice -> the sums differ.
        dist = aggregate_measure(
            paper_graph, ["gender"], "publications",
            measure="sum", distinct=True, times=["t0", "t1"],
        )
        non_dist = aggregate_measure(
            paper_graph, ["gender"], "publications",
            measure="sum", distinct=False, times=["t0", "t1"],
        )
        assert non_dist.node(("f",)) > dist.node(("f",))

    def test_missing_group_is_none(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", times=["t0"]
        )
        assert mg.node(("x",)) is None


class TestEdgeMeasures:
    def test_edge_avg(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", measure="avg", times=["t0"]
        )
        # m->f edges at t0: (u1,u2) values (3,1) and (u1,u4) values (3,2).
        assert mg.edge(("m",), ("f",)) == pytest.approx((3 + 1 + 3 + 2) / 4)

    def test_edge_max(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", measure="max", times=["t0"]
        )
        assert mg.edge(("f",), ("f",)) == 1  # (u2,u3): both have 1

    def test_missing_edge_is_none(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", times=["t0"]
        )
        assert mg.edge(("f",), ("m",)) is None


class TestValidation:
    def test_unknown_measure(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate_measure(
                paper_graph, ["gender"], "publications", measure="median"
            )

    def test_measure_attribute_cannot_group(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate_measure(
                paper_graph, ["publications"], "publications"
            )

    def test_unknown_time(self, paper_graph):
        with pytest.raises(KeyError):
            aggregate_measure(
                paper_graph, ["gender"], "publications", times=["t9"]
            )

    def test_repr(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", times=["t0"]
        )
        assert "avg(publications)" in repr(mg)

    def test_default_window_is_whole_timeline(self, paper_graph):
        mg = aggregate_measure(
            paper_graph, ["gender"], "publications", measure="max"
        )
        assert mg.node(("m",)) == 3  # u1@t0 or u5@t2
