"""Tests for the transitive purity / side-effect inference engine.

Fixture modules with known-pure and known-impure functions assert exact
classifications, the transitive fixpoint (including through cycles), the
dynamic-call fallback counter, and the ``repro-lint-purity/1`` report
schema.  The repo-level test pins the acceptance criterion: the registry
covers every public function in ``repro.core``, ``repro.exploration``
and ``repro.parallel``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.callgraph import Program, build_program
from repro.lint.config import config_from_mapping, load_config
from repro.lint.engine import load_modules
from repro.lint.purity import PurityReport, analyze_purity, report_dict

REPO = Path(__file__).resolve().parent.parent
DEFAULT_CONFIG = config_from_mapping({})


def analyze_fixture(
    tmp_path: Path, files: dict[str, str]
) -> tuple[Program, PurityReport]:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    modules, failures = load_modules([tmp_path], DEFAULT_CONFIG, root=tmp_path)
    assert failures == []
    program = build_program(modules)
    return program, analyze_purity(program)


FIXTURE = {
    "src/repro/pur/__init__.py": """
        __all__ = []
    """,
    "src/repro/pur/clean.py": """
        __all__ = ["double", "combine", "chain"]

        def double(x):
            return x * 2

        def combine(a, b):
            return double(a) + double(b)

        def chain(x):
            return combine(x, x)
    """,
    "src/repro/pur/dirty.py": """
        import os

        from .clean import double

        __all__ = ["log_it", "tainted", "mutate_param", "rebind", "env"]

        _CACHE = {}

        def log_it(x):
            print(x)
            return x

        def tainted(x):
            return log_it(double(x))

        def mutate_param(items):
            items.append(1)
            return items

        def rebind(x):
            global _CACHE
            _CACHE = {"x": x}
            return x

        def stash(x):
            _CACHE["x"] = x
            return x

        def env():
            return os.environ.get("HOME")

        def _hidden(x):
            return x
    """,
    "src/repro/pur/cyclic.py": """
        __all__ = ["even", "odd", "spin"]

        def even(n):
            return True if n == 0 else odd(n - 1)

        def odd(n):
            return False if n == 0 else even(n - 1)

        def spin(n, sink):
            if n:
                spin(n - 1, sink)
            sink.append(n)
    """,
    "src/repro/pur/dynamic.py": """
        __all__ = ["dispatch", "confined"]

        def dispatch(table, x):
            return table["k"](x) + table["j"](x)

        def confined(x):
            box = []
            box.append(x)
            return box
    """,
}


def test_pure_functions_classify_pure(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    for name in ("double", "combine", "chain"):
        entry = report.functions[f"repro.pur.clean.{name}"]
        assert entry.classification == "pure", entry.reasons


def test_impure_builtin_call_is_a_direct_effect(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    entry = report.functions["repro.pur.dirty.log_it"]
    assert entry.classification == "impure"
    assert "calls impure builtin 'print'" in entry.direct_effects


def test_impurity_propagates_transitively(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    entry = report.functions["repro.pur.dirty.tainted"]
    assert entry.classification == "impure"
    assert entry.direct_effects == ()
    assert "calls impure 'repro.pur.dirty.log_it'" in entry.reasons


def test_parameter_mutation_is_impure(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    entry = report.functions["repro.pur.dirty.mutate_param"]
    assert entry.classification == "impure"
    assert any("mutates parameter" in r for r in entry.direct_effects)


def test_global_rebind_and_mutation_are_impure(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    rebind = report.functions["repro.pur.dirty.rebind"]
    assert "rebinds module global '_CACHE'" in rebind.direct_effects
    stash = report.functions["repro.pur.dirty.stash"]
    assert any("mutates module global" in r for r in stash.direct_effects)


def test_impure_module_calls_are_impure(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    entry = report.functions["repro.pur.dirty.env"]
    assert entry.classification == "impure"
    assert any("impure module" in r for r in entry.direct_effects)


def test_pure_cycle_stays_pure(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    assert report.functions["repro.pur.cyclic.even"].is_pure
    assert report.functions["repro.pur.cyclic.odd"].is_pure


def test_self_recursive_impure_function(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    spin = report.functions["repro.pur.cyclic.spin"]
    assert spin.classification == "impure"  # sink.append mutates a parameter


def test_dynamic_calls_counted_not_propagated(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    entry = report.functions["repro.pur.dynamic.dispatch"]
    assert entry.classification == "pure"
    assert entry.unresolved_calls == 2


def test_local_container_mutation_is_pure(tmp_path: Path) -> None:
    _, report = analyze_fixture(tmp_path, FIXTURE)
    entry = report.functions["repro.pur.dynamic.confined"]
    assert entry.classification == "pure", entry.reasons
    # `box.append` cannot be resolved statically, so it counts toward
    # the soundness gate even though the mutation is thread-confined.
    assert entry.unresolved_calls == 1


def test_thread_local_global_writes_are_not_effects(tmp_path: Path) -> None:
    _, report = analyze_fixture(
        tmp_path,
        {
            "src/repro/tl.py": """
                import threading

                __all__ = ["remember"]

                _STATE = threading.local()

                def remember(x):
                    _STATE.value = x
                    return x
            """,
        },
    )
    entry = report.functions["repro.tl.remember"]
    assert entry.direct_effects == ()


def test_report_dict_schema(tmp_path: Path) -> None:
    program, report = analyze_fixture(tmp_path, FIXTURE)
    document = report_dict(program, report)
    assert document["schema"] == "repro-lint-purity/1"
    functions = document["functions"]
    assert isinstance(functions, dict)
    entry = functions["repro.pur.clean.double"]
    assert entry["classification"] == "pure"
    assert entry["public"] is True
    assert entry["unresolved_calls"] == 0
    summary = document["summary"]
    assert isinstance(summary, dict)
    assert summary["functions"] == len(functions)
    assert summary["pure"] + summary["impure"] == summary["functions"]
    private = functions["repro.pur.dirty._hidden"]
    assert private["public"] is False


def test_purity_report_is_cached_on_the_program(tmp_path: Path) -> None:
    program, report = analyze_fixture(tmp_path, FIXTURE)
    assert analyze_purity(program) is report


def test_registry_covers_all_public_functions_in_repo() -> None:
    """Acceptance criterion: every public function in repro.core,
    repro.exploration and repro.parallel appears in the registry."""
    config = load_config(REPO / "pyproject.toml")
    modules, failures = load_modules([REPO / "src"], config, root=REPO)
    assert failures == []
    program = build_program(modules)
    report = analyze_purity(program)
    prefixes = ("repro.core.", "repro.exploration.", "repro.parallel.")
    expected = {
        info.qualname
        for info in program.functions.values()
        if info.qualname.startswith(prefixes)
    }
    assert expected, "fixture drifted: no functions found under the prefixes"
    missing = expected - set(report.functions)
    assert missing == set()
    public = [q for q in expected if report.functions[q].public]
    assert len(public) > 100  # core+exploration+parallel surface is large
