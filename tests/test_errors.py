"""The repro.errors taxonomy: hierarchy, builtin compatibility, re-exports."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro.errors as errors
import repro.frames.errors as frame_errors
from repro.core import GraphIntegrityError, Timeline, project
from repro.datasets import paper_example
from repro.query.evaluator import QueryBindingError
from repro.query.lexer import QuerySyntaxError

REPO = Path(__file__).resolve().parent.parent


def test_every_taxonomy_class_roots_at_graphtempoerror() -> None:
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.GraphTempoError), name


def test_builtin_compatibility() -> None:
    assert issubclass(errors.ValidationError, ValueError)
    assert issubclass(errors.TemporalError, ValueError)
    assert issubclass(errors.AggregationError, ValueError)
    assert issubclass(errors.ExplorationError, ValueError)
    assert issubclass(errors.DatasetError, ValueError)
    assert issubclass(errors.InvalidTypeError, TypeError)
    assert issubclass(errors.UnknownLabelError, KeyError)
    assert issubclass(errors.TimeIndexError, IndexError)


def test_existing_domain_errors_are_rebased() -> None:
    assert issubclass(frame_errors.FrameError, errors.GraphTempoError)
    assert issubclass(GraphIntegrityError, errors.ValidationError)
    assert issubclass(QuerySyntaxError, errors.ValidationError)
    assert issubclass(QueryBindingError, errors.UnknownLabelError)


def test_frame_errors_reexported_by_identity() -> None:
    assert errors.FrameError is frame_errors.FrameError
    assert errors.LabelError is frame_errors.LabelError
    assert errors.SchemaError is frame_errors.SchemaError


def test_unknown_attribute_raises_attributeerror() -> None:
    with pytest.raises(AttributeError):
        errors.NoSuchError


def test_reexport_survives_frames_first_import_order() -> None:
    script = (
        "import repro.frames, repro.errors; "
        "assert repro.errors.FrameError is repro.frames.errors.FrameError; "
        "assert issubclass(repro.frames.errors.FrameError, "
        "repro.errors.GraphTempoError)"
    )
    subprocess.run(
        [sys.executable, "-c", script],
        check=True,
        env={"PYTHONPATH": str(REPO / "src")},
        timeout=120,
    )


def test_library_failures_are_catchable_uniformly() -> None:
    graph = paper_example()
    with pytest.raises(errors.GraphTempoError):
        project(graph, [])
    # ... and still satisfy the historical builtin contract:
    with pytest.raises(ValueError):
        project(graph, [])


def test_unknown_label_message_stays_readable() -> None:
    timeline = Timeline([2000, 2001])
    with pytest.raises(errors.UnknownLabelError) as excinfo:
        timeline.index_of(1999)
    # no KeyError-style quoting of the whole message
    assert str(excinfo.value) == "unknown time point: 1999"
    with pytest.raises(KeyError):
        timeline.index_of(1999)


def test_time_index_error_is_index_error() -> None:
    timeline = Timeline([2000, 2001])
    with pytest.raises(errors.TimeIndexError):
        timeline.label_at(99)
    with pytest.raises(IndexError):
        timeline.label_at(99)
