"""Shared fixtures: the paper's example graph and small synthetic graphs.

All randomness in the suite derives from one ``REPRO_TEST_SEED`` env var
(default 0, so an unset environment reproduces the committed baseline).
The effective seed is printed in the pytest header and attached to every
failing test's report, so a flaky failure is replayable with
``REPRO_TEST_SEED=<n> pytest <nodeid>``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_dblp,
    generate_evolving_graph,
    generate_movielens,
    paper_example,
)


TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def pytest_report_header(config):
    return f"REPRO_TEST_SEED={TEST_SEED}"


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item, call):
    report = yield
    if report.failed:
        report.sections.append(
            ("seed", f"REPRO_TEST_SEED={TEST_SEED} (replay with this env var)")
        )
    return report


@pytest.fixture(scope="session")
def test_seed() -> int:
    """The suite-wide base seed (``REPRO_TEST_SEED``, default 0)."""
    return TEST_SEED


@pytest.fixture()
def rng(test_seed: int) -> np.random.Generator:
    """A per-test generator derived from the suite seed."""
    return np.random.default_rng(test_seed)


@pytest.fixture(scope="session")
def paper_graph():
    """The Figure 1 / Table 2 running example."""
    return paper_example()


@pytest.fixture(scope="session")
def small_dblp():
    """A 2%-scale DBLP-like graph (fast; ~500 nodes, ~3k edges)."""
    return generate_dblp(scale=0.02, seed=7 + TEST_SEED)


@pytest.fixture(scope="session")
def small_movielens():
    """A 3%-scale MovieLens-like graph."""
    return generate_movielens(scale=0.03, seed=11 + TEST_SEED)


def make_tiny_graph(seed: int | None = None, n_times: int = 5):
    """A tiny, fully synthetic evolving graph for structural tests."""
    if seed is None:
        seed = 3 + TEST_SEED
    def level(rng, node_ids, t):
        return (node_ids % 3 + 1).astype(object)

    config = EvolvingGraphConfig(
        times=tuple(range(n_times)),
        node_targets=(12,) * n_times,
        edge_targets=(20,) * n_times,
        node_survival=0.7,
        node_return=0.3,
        edge_repeat=0.4,
        static_attrs=(StaticAttributeSpec("color", ("red", "blue")),),
        varying_attrs=(VaryingAttributeSpec("level", level),),
        seed=seed,
    )
    return generate_evolving_graph(config)


@pytest.fixture()
def tiny_graph():
    return make_tiny_graph()
