"""Shared fixtures: the paper's example graph and small synthetic graphs."""

from __future__ import annotations

import pytest

from repro.datasets import (
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    generate_dblp,
    generate_evolving_graph,
    generate_movielens,
    paper_example,
)


@pytest.fixture(scope="session")
def paper_graph():
    """The Figure 1 / Table 2 running example."""
    return paper_example()


@pytest.fixture(scope="session")
def small_dblp():
    """A 2%-scale DBLP-like graph (fast; ~500 nodes, ~3k edges)."""
    return generate_dblp(scale=0.02)


@pytest.fixture(scope="session")
def small_movielens():
    """A 3%-scale MovieLens-like graph."""
    return generate_movielens(scale=0.03)


def make_tiny_graph(seed: int = 3, n_times: int = 5):
    """A tiny, fully synthetic evolving graph for structural tests."""
    def level(rng, node_ids, t):
        return (node_ids % 3 + 1).astype(object)

    config = EvolvingGraphConfig(
        times=tuple(range(n_times)),
        node_targets=(12,) * n_times,
        edge_targets=(20,) * n_times,
        node_survival=0.7,
        node_return=0.3,
        edge_repeat=0.4,
        static_attrs=(StaticAttributeSpec("color", ("red", "blue")),),
        varying_attrs=(VaryingAttributeSpec("level", level),),
        seed=seed,
    )
    return generate_evolving_graph(config)


@pytest.fixture()
def tiny_graph():
    return make_tiny_graph()
