"""Failure injection: corrupted inputs must fail loudly, not silently.

Loaded data is the trust boundary of the library — these tests corrupt
persisted graphs and CSVs in targeted ways and assert that loading
either raises a clear error or that diagnostics flag the damage.
"""

import numpy as np
import pytest

from repro.core import GraphIntegrityError, TemporalGraph, Timeline
from repro.datasets import load_graph, save_graph
from repro.diagnostics import check_graph
from repro.frames import LabeledFrame, read_frame_csv


@pytest.fixture()
def saved(tmp_path, paper_graph):
    target = tmp_path / "graph"
    save_graph(paper_graph, target)
    return target


class TestCorruptedPersistence:
    def test_missing_nodes_file(self, saved):
        (saved / "nodes.csv").unlink()
        with pytest.raises(FileNotFoundError):
            load_graph(saved)

    def test_missing_static_file(self, saved):
        (saved / "static.csv").unlink()
        with pytest.raises(FileNotFoundError):
            load_graph(saved)

    def test_truncated_row(self, saved):
        path = saved / "nodes.csv"
        lines = path.read_text().splitlines()
        lines[1] = lines[1].rsplit(",", 1)[0]  # drop the last field
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(Exception):
            load_graph(saved, value_parsers={"publications": int})

    def test_non_numeric_presence_cell(self, saved):
        path = saved / "nodes.csv"
        text = path.read_text().replace(",1,", ",yes,", 1)
        path.write_text(text)
        with pytest.raises(ValueError):
            load_graph(saved)

    def test_duplicate_node_row(self, saved):
        path = saved / "nodes.csv"
        lines = path.read_text().splitlines()
        lines.append(lines[1])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(Exception):
            load_graph(saved)

    def test_edge_referencing_unknown_node_is_flagged(self, saved):
        path = saved / "edges.csv"
        lines = path.read_text().splitlines()
        lines.append("zz|u2,1,0,0")
        path.write_text("\n".join(lines) + "\n")
        # load_graph skips validation for speed; diagnostics must flag it.
        graph = load_graph(saved)
        codes = {f.code for f in check_graph(graph)}
        assert "dangling-edge" in codes

    def test_misaligned_attribute_timeline(self, saved):
        path = saved / "attr_publications.csv"
        text = path.read_text().replace("t2", "t9")
        path.write_text(text)
        with pytest.raises(GraphIntegrityError):
            load_graph(saved)


class TestCorruptedFrames:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StopIteration):
            read_frame_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("id,t0,t1\n")
        frame = read_frame_csv(path)
        assert frame.n_rows == 0


class TestMutatedGraphsAreDiagnosed:
    """Randomized corruption: flip presence bits and confirm diagnostics
    or validation notice every class of damage they claim to cover."""

    def _rebuild(self, graph, **overrides):
        parts = dict(
            timeline=graph.timeline,
            node_presence=graph.node_presence,
            edge_presence=graph.edge_presence,
            static_attrs=graph.static_attrs,
            varying_attrs=graph.varying_attrs,
        )
        parts.update(overrides)
        return TemporalGraph(validate=False, **parts)

    def test_edge_activity_corruption_detected(self, paper_graph):
        values = paper_graph.edge_presence.values.copy()
        # Activate an edge everywhere, including times its endpoints miss.
        values[0, :] = 1
        broken = self._rebuild(
            paper_graph,
            edge_presence=LabeledFrame(
                paper_graph.edge_presence.row_labels,
                paper_graph.timeline.labels,
                values,
            ),
        )
        codes = {f.code for f in check_graph(broken)}
        assert "edge-without-endpoints" in codes
        with pytest.raises(GraphIntegrityError):
            self._rebuild_validated(broken)

    def _rebuild_validated(self, graph):
        return TemporalGraph(
            timeline=graph.timeline,
            node_presence=graph.node_presence,
            edge_presence=graph.edge_presence,
            static_attrs=graph.static_attrs,
            varying_attrs=graph.varying_attrs,
            validate=True,
        )

    def test_value_without_presence_detected(self, paper_graph):
        values = paper_graph.varying_attrs["publications"].values.copy()
        values[:, :] = 1  # values everywhere, including absent cells
        broken = self._rebuild(
            paper_graph,
            varying_attrs={
                "publications": LabeledFrame(
                    paper_graph.node_presence.row_labels,
                    paper_graph.timeline.labels,
                    values,
                )
            },
        )
        codes = {f.code for f in check_graph(broken)}
        assert "value-on-absent-appearance" in codes

    def test_wiped_presence_detected(self, paper_graph):
        empty = np.zeros_like(paper_graph.node_presence.values)
        broken = self._rebuild(
            paper_graph,
            node_presence=LabeledFrame(
                paper_graph.node_presence.row_labels,
                paper_graph.timeline.labels,
                empty,
            ),
        )
        codes = {f.code for f in check_graph(broken)}
        assert "never-present-node" in codes
        assert "empty-time-point" in codes
