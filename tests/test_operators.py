"""Tests for the temporal operators (Definitions 2.2-2.5) on the paper's
running example."""

import pytest

from repro.core import difference, intersection, ordered_times, project, union


class TestOrderedTimes:
    def test_orders_by_timeline(self, paper_graph):
        assert ordered_times(paper_graph, ["t2", "t0"]) == ("t0", "t2")

    def test_merges_sets(self, paper_graph):
        assert ordered_times(paper_graph, ["t1"], ["t0", "t1"]) == ("t0", "t1")

    def test_unknown_time_rejected(self, paper_graph):
        with pytest.raises(KeyError):
            ordered_times(paper_graph, ["t9"])


class TestProject:
    def test_single_point(self, paper_graph):
        sub = project(paper_graph, ["t2"])
        assert set(sub.nodes) == {"u2", "u4", "u5"}
        assert set(sub.edges) == {("u4", "u2"), ("u5", "u4"), ("u5", "u2")}

    def test_requires_presence_throughout(self, paper_graph):
        sub = project(paper_graph, ["t0", "t1", "t2"])
        assert set(sub.nodes) == {"u2", "u4"}  # present at all three points

    def test_timeline_restricted(self, paper_graph):
        sub = project(paper_graph, ["t1"])
        assert sub.timeline.labels == ("t1",)

    def test_attributes_restricted(self, paper_graph):
        sub = project(paper_graph, ["t1"])
        assert sub.attribute_value("u4", "publications", "t1") == 1

    def test_empty_times_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            project(paper_graph, [])


class TestUnion:
    def test_figure2_union(self, paper_graph):
        """Figure 2: the union graph on (t0, t1)."""
        result = union(paper_graph, ["t0"], ["t1"])
        assert set(result.nodes) == {"u1", "u2", "u3", "u4"}
        assert set(result.edges) == {
            ("u1", "u2"), ("u2", "u3"), ("u1", "u4"), ("u4", "u2"),
        }

    def test_presence_restricted_to_window(self, paper_graph):
        result = union(paper_graph, ["t0"], ["t1"])
        assert result.node_times("u2") == ("t0", "t1")

    def test_single_set_window(self, paper_graph):
        result = union(paper_graph, ["t0", "t1", "t2"])
        assert result.n_nodes == 5
        assert result.n_edges == 6

    def test_union_is_symmetric(self, paper_graph):
        a = union(paper_graph, ["t0"], ["t2"])
        b = union(paper_graph, ["t2"], ["t0"])
        assert a == b

    def test_union_empty_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            union(paper_graph, [], [])


class TestIntersection:
    def test_stable_part(self, paper_graph):
        result = intersection(paper_graph, ["t0"], ["t1"])
        assert set(result.nodes) == {"u1", "u2", "u4"}
        assert set(result.edges) == {("u1", "u2")}

    def test_timeline_is_union_of_windows(self, paper_graph):
        result = intersection(paper_graph, ["t0"], ["t2"])
        assert result.timeline.labels == ("t0", "t2")

    def test_presence_keeps_both_sides(self, paper_graph):
        result = intersection(paper_graph, ["t0"], ["t1"])
        assert result.node_times("u1") == ("t0", "t1")

    def test_some_point_semantics(self, paper_graph):
        # u5 exists only at t2: intersect {t0,t1} with {t2} keeps nodes
        # existing at some point of each set.
        result = intersection(paper_graph, ["t0", "t1"], ["t2"])
        assert set(result.nodes) == {"u2", "u4"}

    def test_symmetric_node_sets(self, paper_graph):
        a = intersection(paper_graph, ["t0"], ["t2"])
        b = intersection(paper_graph, ["t2"], ["t0"])
        assert set(a.nodes) == set(b.nodes)
        assert set(a.edges) == set(b.edges)

    def test_empty_side_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            intersection(paper_graph, ["t0"], [])


class TestDifference:
    def test_deletions(self, paper_graph):
        """t0 - t1: what disappeared between t0 and t1."""
        result = difference(paper_graph, ["t0"], ["t1"])
        # u3 disappears entirely; edges (u2,u3) and (u1,u4) are deleted.
        assert set(result.edges) == {("u2", "u3"), ("u1", "u4")}
        # u1, u2, u4 survive but lose an edge -> kept by the edge clause.
        assert set(result.nodes) == {"u1", "u2", "u3", "u4"}

    def test_additions(self, paper_graph):
        """t1 - t0: what is new at t1."""
        result = difference(paper_graph, ["t1"], ["t0"])
        assert set(result.edges) == {("u4", "u2")}
        assert set(result.nodes) == {"u2", "u4"}

    def test_node_without_lost_edge_excluded(self, paper_graph):
        # t2 - t1: u5 is new; (u5,u4), (u5,u2) are new edges; u4->u2
        # persists, so u4/u2 appear only as endpoints of new edges.
        result = difference(paper_graph, ["t2"], ["t1"])
        assert set(result.nodes) == {"u5", "u4", "u2"}
        assert set(result.edges) == {("u5", "u4"), ("u5", "u2")}

    def test_defined_on_first_interval(self, paper_graph):
        result = difference(paper_graph, ["t0"], ["t1"])
        assert result.timeline.labels == ("t0",)

    def test_not_symmetric(self, paper_graph):
        forward = difference(paper_graph, ["t0"], ["t1"])
        backward = difference(paper_graph, ["t1"], ["t0"])
        assert set(forward.edges) != set(backward.edges)

    def test_difference_with_empty_right(self, paper_graph):
        # T2 empty: nothing to subtract; everything in T1 remains.
        result = difference(paper_graph, ["t0"], [])
        assert set(result.nodes) == set(paper_graph.nodes_at("t0"))

    def test_empty_left_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            difference(paper_graph, [], ["t0"])

    def test_interval_difference(self, paper_graph):
        # [t0,t1] - t2: edges present somewhere in t0/t1 and not at t2.
        result = difference(paper_graph, ["t0", "t1"], ["t2"])
        assert set(result.edges) == {("u1", "u2"), ("u2", "u3"), ("u1", "u4")}


class TestOperatorAlgebra:
    def test_union_contains_intersection(self, paper_graph):
        u = union(paper_graph, ["t0"], ["t1"])
        i = intersection(paper_graph, ["t0"], ["t1"])
        assert set(i.nodes) <= set(u.nodes)
        assert set(i.edges) <= set(u.edges)

    def test_union_is_intersection_plus_differences_for_edges(self, paper_graph):
        """E_union = E_inter | E_(t0-t1) | E_(t1-t0) — the evolution
        graph's edge decomposition."""
        u = set(union(paper_graph, ["t0"], ["t1"]).edges)
        i = set(intersection(paper_graph, ["t0"], ["t1"]).edges)
        d1 = set(difference(paper_graph, ["t0"], ["t1"]).edges)
        d2 = set(difference(paper_graph, ["t1"], ["t0"]).edges)
        assert u == i | d1 | d2
        assert not (i & d1) and not (i & d2) and not (d1 & d2)

    def test_project_subset_of_intersection(self, paper_graph):
        p = project(paper_graph, ["t0", "t1"])
        i = intersection(paper_graph, ["t0"], ["t1"])
        assert set(p.nodes) == set(i.nodes)
        assert set(p.edges) == set(i.edges)

    def test_operators_do_not_mutate_input(self, paper_graph):
        before = paper_graph.node_presence.values.copy()
        union(paper_graph, ["t0"], ["t1"])
        intersection(paper_graph, ["t0"], ["t1"])
        difference(paper_graph, ["t0"], ["t1"])
        assert (paper_graph.node_presence.values == before).all()
