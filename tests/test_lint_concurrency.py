"""Fixture-based tests for the whole-program rules GT007-GT012.

Mirrors the GT001-GT006 suite: one known-bad and one known-good snippet
per rule, laid out as ``src/repro/...`` so the dotted-name scoping is
exercised for real, plus CLI contract tests (``--format json``,
``--ignore``, ``--report``, exit codes) and the acceptance gate — the
repository itself is zero-violation under GT007-GT012 and the committed
CI baseline agrees.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import LintConfig, Violation, lint_paths, load_config
from repro.lint.config import config_from_mapping

REPO = Path(__file__).resolve().parent.parent


def make_config(*rules: str, **tables: dict[str, object]) -> LintConfig:
    """A config selecting exactly ``rules``, with optional table overrides."""
    overrides: dict[str, object] = {"select": list(rules)}
    overrides.update(tables)
    return config_from_mapping(overrides)


def lint_files(
    tmp_path: Path, files: dict[str, str], config: LintConfig
) -> list[Violation]:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], config, root=tmp_path)


def rule_ids(violations: list[Violation]) -> set[str]:
    return {violation.rule for violation in violations}


# ---------------------------------------------------------------------------
# GT007 — worker-function fork-safety
# ---------------------------------------------------------------------------


def test_gt007_flags_lambda_and_nested_submissions(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/jobs.py": """
                from repro.parallel import get_executor

                __all__ = ["bad_lambda", "bad_nested"]

                def bad_lambda(tasks):
                    executor = get_executor(2)
                    return executor.map(lambda p, t: t, tasks, None)

                def bad_nested(tasks):
                    def worker(payload, task):
                        return task
                    executor = get_executor(2)
                    return executor.map(worker, tasks, None)
            """,
        },
        make_config("GT007"),
    )
    assert len(violations) == 2
    assert rule_ids(violations) == {"GT007"}
    assert "lambda" in violations[0].message
    assert "nested function 'worker'" in violations[1].message


def test_gt007_flags_bound_method_submission(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/jobs.py": """
                from repro.parallel import get_executor

                __all__ = ["Runner"]

                class Runner:
                    def work(self, payload, task):
                        return task

                    def go(self, tasks):
                        executor = get_executor(2)
                        return executor.map(self.work, tasks, None)
            """,
        },
        make_config("GT007"),
    )
    assert rule_ids(violations) == {"GT007"}
    assert "bound method" in violations[0].message


def test_gt007_accepts_module_level_worker(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/jobs.py": """
                from repro.parallel import get_executor

                __all__ = ["run"]

                def _worker(payload, task):
                    return task

                def run(tasks):
                    executor = get_executor(2)
                    return executor.map(_worker, tasks, None)
            """,
        },
        make_config("GT007"),
    )
    assert violations == []


def test_gt007_resolves_one_level_of_indirection(tmp_path: Path) -> None:
    """The explore.py shape: a helper takes the worker as a parameter."""
    files = {
        "src/repro/jobs.py": """
            from repro.parallel import get_executor

            __all__ = ["good", "bad"]

            def _chunk(payload, task):
                return task

            def _run(fn, tasks):
                executor = get_executor(2)
                return executor.map(fn, tasks, None)

            def good(tasks):
                return _run(_chunk, tasks)

            def bad(tasks):
                def local(payload, task):
                    return task
                return _run(local, tasks)
        """,
    }
    violations = lint_files(tmp_path, files, make_config("GT007"))
    assert rule_ids(violations) == {"GT007"}
    assert len(violations) == 1
    assert "nested function 'local'" in violations[0].message


def test_gt007_flags_unresolvable_parameter(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/jobs.py": """
                from repro.parallel import get_executor

                __all__ = ["orphan"]

                def orphan(fn, tasks):
                    executor = get_executor(2)
                    return executor.map(fn, tasks, None)
            """,
        },
        make_config("GT007"),
    )
    assert rule_ids(violations) == {"GT007"}
    assert "no caller" in violations[0].message


def test_gt007_suppressible_inline(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/jobs.py": """
                from repro.parallel import get_executor

                __all__ = ["orphan"]

                def orphan(fn, tasks):
                    executor = get_executor(2)
                    return executor.map(fn, tasks, None)  # lint: ignore[GT007]
            """,
        },
        make_config("GT007"),
    )
    assert violations == []


# ---------------------------------------------------------------------------
# GT008 — workers must not mutate the shared payload
# ---------------------------------------------------------------------------


GT008_BAD = {
    "src/repro/jobs.py": """
        from repro.parallel import get_executor

        __all__ = ["run"]

        def _worker(payload, task):
            payload["seen"] = task
            rows = payload["rows"]
            rows.append(task)
            return task

        def run(tasks, payload):
            executor = get_executor(2)
            return executor.map(_worker, tasks, payload)
    """,
}

GT008_GOOD = {
    "src/repro/jobs.py": """
        from repro.parallel import get_executor

        __all__ = ["run"]

        def _worker(payload, task):
            rows = payload["rows"]
            local = list(rows)
            local.append(task)
            return len(local)

        def run(tasks, payload):
            executor = get_executor(2)
            return executor.map(_worker, tasks, payload)
    """,
}


def test_gt008_flags_payload_writes_and_alias_mutation(tmp_path: Path) -> None:
    violations = lint_files(tmp_path, GT008_BAD, make_config("GT008"))
    assert rule_ids(violations) == {"GT008"}
    assert len(violations) == 2
    assert "shared payload" in violations[0].message
    assert ".append()" in violations[1].message


def test_gt008_accepts_readonly_payload_with_local_copy(tmp_path: Path) -> None:
    violations = lint_files(tmp_path, GT008_GOOD, make_config("GT008"))
    assert violations == []


# ---------------------------------------------------------------------------
# GT009 — no mutable module globals written at runtime
# ---------------------------------------------------------------------------


def test_gt009_flags_runtime_global_mutation(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/state.py": """
                __all__ = ["remember", "reset"]

                _CACHE = {}
                _LOG = []

                def remember(key, value):
                    _CACHE[key] = value

                def reset():
                    global _LOG
                    _LOG = []
            """,
        },
        make_config("GT009"),
    )
    assert rule_ids(violations) == {"GT009"}
    assert len(violations) == 2
    assert "mutates module global '_CACHE'" in violations[0].message
    assert "rebinds module global '_LOG'" in violations[1].message


def test_gt009_exempts_sanctioned_registries_and_thread_locals(
    tmp_path: Path,
) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/state.py": """
                import threading

                __all__ = ["register", "remember"]

                _REGISTRY = {}
                _LOCAL = threading.local()

                def register(name, value):
                    _REGISTRY[name] = value

                def remember(value):
                    _LOCAL.value = value
            """,
        },
        make_config("GT009"),
    )
    assert violations == []


def test_gt009_custom_sanctioned_patterns(tmp_path: Path) -> None:
    config = config_from_mapping(
        {"select": ["GT009"], "GT009": {"sanctioned": ["repro.state._POOL"]}}
    )
    violations = lint_files(
        tmp_path,
        {
            "src/repro/state.py": """
                __all__ = ["fill"]

                _POOL = []

                def fill(item):
                    _POOL.append(item)
            """,
        },
        config,
    )
    assert violations == []


def test_gt009_locals_shadowing_globals_are_fine(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/state.py": """
                __all__ = ["compute"]

                _TABLE = {}

                def compute(x):
                    _TABLE = {}
                    _TABLE[x] = x
                    return _TABLE
            """,
        },
        make_config("GT009"),
    )
    assert violations == []


# ---------------------------------------------------------------------------
# GT010 — singleton swap discipline
# ---------------------------------------------------------------------------


GT010_CONFIG = config_from_mapping(
    {
        "select": ["GT010"],
        "GT010": {
            "singletons": ["repro.svc._current"],
            "setters": ["repro.svc.set_current"],
        },
    }
)


def test_gt010_flags_swap_outside_setter(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/svc.py": """
                import threading

                __all__ = ["hijack"]

                _current = object()
                _lock = threading.Lock()

                def hijack(new):
                    global _current
                    _current = new
            """,
        },
        GT010_CONFIG,
    )
    assert rule_ids(violations) == {"GT010"}
    assert "outside a sanctioned setter" in violations[0].message


def test_gt010_flags_unlocked_setter(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/svc.py": """
                __all__ = ["set_current"]

                _current = object()

                def set_current(new):
                    global _current
                    previous = _current
                    _current = new
                    return previous
            """,
        },
        GT010_CONFIG,
    )
    assert rule_ids(violations) == {"GT010"}
    assert "without holding a lock" in violations[0].message


def test_gt010_accepts_locked_setter(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/svc.py": """
                import threading

                __all__ = ["set_current"]

                _current = object()
                _lock = threading.Lock()

                def set_current(new):
                    global _current
                    with _lock:
                        previous = _current
                        _current = new
                    return previous
            """,
        },
        GT010_CONFIG,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# GT011 — no impure calls from pure operator contexts
# ---------------------------------------------------------------------------


def test_gt011_flags_impure_call_in_operator_module(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/core/helpers.py": """
                __all__ = ["audit"]

                _SEEN = []

                def audit(x):
                    _SEEN.append(x)
                    return x
            """,
            "src/repro/core/operators.py": """
                from .helpers import audit

                __all__ = ["project"]

                def project(frame):
                    audit(frame)
                    return frame
            """,
        },
        make_config("GT011"),
    )
    assert rule_ids(violations) == {"GT011"}
    assert violations[0].path.endswith("operators.py")
    assert "impure" in violations[0].message


def test_gt011_accepts_pure_helpers_and_allowlisted_calls(
    tmp_path: Path,
) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/core/helpers.py": """
                __all__ = ["double"]

                def double(x):
                    return x * 2
            """,
            "src/repro/obs/probe.py": """
                __all__ = ["count"]

                _HITS = []

                def count(x):
                    _HITS.append(x)
            """,
            "src/repro/core/operators.py": """
                from repro.obs.probe import count
                from .helpers import double

                __all__ = ["project"]

                def project(frame):
                    count(frame)
                    return double(frame)
            """,
        },
        make_config("GT011"),
    )
    assert violations == []


def test_gt011_out_of_scope_modules_are_not_checked(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/io/writer.py": """
                __all__ = ["dump"]

                _SEEN = []

                def _record(x):
                    _SEEN.append(x)

                def dump(x):
                    _record(x)
                    return x
            """,
        },
        make_config("GT011"),
    )
    assert violations == []


# ---------------------------------------------------------------------------
# GT012 — no unguarded attribute writes on shared singletons
# ---------------------------------------------------------------------------


def test_gt012_flags_attribute_write_on_accessor_result(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/session2.py": """
                from repro.obs import get_tracer

                __all__ = ["enable"]

                def enable():
                    tracer = get_tracer()
                    tracer.enabled = True
                    get_tracer().enabled = True
            """,
        },
        make_config("GT012"),
    )
    assert rule_ids(violations) == {"GT012"}
    assert len(violations) == 2
    assert "without a lock" in violations[0].message


def test_gt012_accepts_locked_write_and_reads(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/session2.py": """
                import threading

                from repro.obs import get_tracer

                __all__ = ["enable", "peek"]

                _lock = threading.Lock()

                def enable():
                    with _lock:
                        get_tracer().enabled = True

                def peek():
                    tracer = get_tracer()
                    return tracer.enabled
            """,
        },
        make_config("GT012"),
    )
    assert violations == []


def test_gt012_exempt_modules_can_write(tmp_path: Path) -> None:
    violations = lint_files(
        tmp_path,
        {
            "src/repro/obs/control.py": """
                from repro.obs import get_tracer

                __all__ = ["enable"]

                def enable():
                    get_tracer().enabled = True
            """,
        },
        make_config("GT012"),
    )
    assert violations == []


# ---------------------------------------------------------------------------
# CLI contract: --format json, --ignore, --report, exit codes
# ---------------------------------------------------------------------------


def run_cli(*args: str, cwd: Path) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def write_bad_tree(tmp_path: Path) -> None:
    target = tmp_path / "src/repro/state.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        textwrap.dedent(
            """
            __all__ = ["remember"]

            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value
            """
        )
    )


def test_cli_json_format_and_exit_code_one(tmp_path: Path) -> None:
    write_bad_tree(tmp_path)
    result = run_cli(
        "--select", "GT009", "--format", "json", "-q", "src", cwd=tmp_path
    )
    assert result.returncode == 1
    document = json.loads(result.stdout)
    assert document["schema"] == "repro-lint/1"
    assert document["rules"] == ["GT009"]
    assert document["summary"]["violations"] == 1
    violation = document["violations"][0]
    assert violation["rule"] == "GT009"
    assert violation["path"].endswith("state.py")
    assert violation["line"] > 0


def test_cli_ignore_drops_rules(tmp_path: Path) -> None:
    write_bad_tree(tmp_path)
    result = run_cli(
        "--select", "GT009", "--ignore", "GT009", "-q", "src", cwd=tmp_path
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_unknown_ignore_is_a_config_error(tmp_path: Path) -> None:
    write_bad_tree(tmp_path)
    result = run_cli("--ignore", "GT999", "src", cwd=tmp_path)
    assert result.returncode == 2
    assert "GT999" in result.stderr


def test_cli_report_writes_purity_registry(tmp_path: Path) -> None:
    write_bad_tree(tmp_path)
    result = run_cli(
        "--select", "GT005", "--report", "purity.json", "-q", "src",
        cwd=tmp_path,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads((tmp_path / "purity.json").read_text())
    assert document["schema"] == "repro-lint-purity/1"
    entry = document["functions"]["repro.state.remember"]
    assert entry["classification"] == "impure"
    assert any("mutates module global" in r for r in entry["reasons"])


def test_repro_cli_lint_subcommand_forwards(tmp_path: Path) -> None:
    write_bad_tree(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--select", "GT009", "-q", "src"],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1
    assert "GT009" in result.stdout


# ---------------------------------------------------------------------------
# Acceptance gate: the repository itself is clean under GT007-GT012
# ---------------------------------------------------------------------------


def test_repository_concurrency_rules_are_clean() -> None:
    config = load_config(REPO / "pyproject.toml")
    new_rules = ["GT007", "GT008", "GT009", "GT010", "GT011", "GT012"]
    assert all(rule in config.select for rule in new_rules)
    narrowed = LintConfig(
        select=tuple(new_rules), exclude=config.exclude, rules=config.rules
    )
    violations = lint_paths([REPO / "src", REPO / "tests"], narrowed, root=REPO)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_committed_baseline_matches_reality() -> None:
    baseline = json.loads(
        (REPO / "ci/lint_concurrency_baseline.json").read_text()
    )
    assert baseline["schema"] == "repro-lint/1"
    assert baseline["violations"] == []
    assert baseline["rules"] == [
        "GT007", "GT008", "GT009", "GT010", "GT011", "GT012",
    ]
