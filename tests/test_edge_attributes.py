"""Tests for static edge attributes and edge-measure aggregation."""

import pytest

from repro.core import (
    SnapshotUpdate,
    TemporalGraph,
    TemporalGraphBuilder,
    Timeline,
    aggregate_edge_measure,
    append_snapshot,
    union,
)
from repro.frames import LabeledFrame


@pytest.fixture()
def weighted_graph():
    """A small collaboration graph whose edges carry a paper count."""
    builder = TemporalGraphBuilder(
        ["t0", "t1"], static=["gender"], edge_static=["papers"]
    )
    for node, gender in [("a", "m"), ("b", "f"), ("c", "f"), ("d", "m")]:
        builder.add_node(node, {"gender": gender})
        builder.set_node_presence(node, "t0")
        builder.set_node_presence(node, "t1")
    builder.add_edge("a", "b", ["t0", "t1"], static={"papers": 3})
    builder.add_edge("b", "c", ["t0"], static={"papers": 5})
    builder.add_edge("a", "d", ["t1"], static={"papers": 2})
    builder.add_edge("c", "b", ["t1"], static={"papers": 1})
    return builder.build()


class TestBuilderEdgeAttributes:
    def test_values_stored(self, weighted_graph):
        assert weighted_graph.edge_attribute_value(("a", "b"), "papers") == 3
        assert weighted_graph.edge_attribute_names == ("papers",)

    def test_unknown_edge_attribute_rejected(self):
        builder = TemporalGraphBuilder(["t0"], edge_static=["papers"])
        builder.add_node("a")
        builder.add_node("b")
        builder.set_node_presence("a", "t0")
        builder.set_node_presence("b", "t0")
        with pytest.raises(KeyError):
            builder.add_edge("a", "b", ["t0"], static={"venues": 2})

    def test_no_edge_attributes_declared(self, paper_graph):
        assert paper_graph.edge_attrs is None
        assert paper_graph.edge_attribute_names == ()
        with pytest.raises(KeyError):
            paper_graph.edge_attribute_value(("u1", "u2"), "papers")

    def test_schema_mismatch_rejected(self):
        times = ("t0",)
        nodes = LabeledFrame(["a", "b"], times, [[1], [1]])
        edges = LabeledFrame([("a", "b")], times, [[1]])
        static = LabeledFrame(["a", "b"], (), [[], []])
        bad_attrs = LabeledFrame([("b", "a")], ["papers"], [[1]])
        from repro.core import GraphIntegrityError

        with pytest.raises(GraphIntegrityError):
            TemporalGraph(
                Timeline(times), nodes, edges, static, {},
                edge_attrs=bad_attrs,
            )


class TestPropagation:
    def test_restricted_keeps_attrs(self, weighted_graph):
        sub = weighted_graph.restricted(
            ["a", "b"], [("a", "b")], ["t0"]
        )
        assert sub.edge_attribute_value(("a", "b"), "papers") == 3

    def test_operators_keep_attrs(self, weighted_graph):
        window = union(weighted_graph, ["t0"], ["t1"])
        assert window.edge_attribute_value(("b", "c"), "papers") == 5

    def test_equality_includes_attrs(self, weighted_graph):
        other = TemporalGraph(
            timeline=weighted_graph.timeline,
            node_presence=weighted_graph.node_presence,
            edge_presence=weighted_graph.edge_presence,
            static_attrs=weighted_graph.static_attrs,
            varying_attrs=weighted_graph.varying_attrs,
            edge_attrs=None,
        )
        assert weighted_graph != other

    def test_append_snapshot_extends_attrs(self, weighted_graph):
        update = SnapshotUpdate(
            time="t2",
            nodes={"a": {}, "b": {}},
            edges=[("b", "a")],
            edge_attrs={("b", "a"): {"papers": 7}},
        )
        extended = append_snapshot(weighted_graph, update)
        assert extended.edge_attribute_value(("b", "a"), "papers") == 7
        assert extended.edge_attribute_value(("a", "b"), "papers") == 3

    def test_append_snapshot_unknown_edge_attr(self, weighted_graph):
        update = SnapshotUpdate(
            time="t2",
            nodes={"a": {}, "b": {}},
            edges=[("b", "a")],
            edge_attrs={("b", "a"): {"venues": 7}},
        )
        with pytest.raises(KeyError):
            append_snapshot(weighted_graph, update)

    def test_append_snapshot_unknown_attr_for_known_edge(self, weighted_graph):
        # Regression: names used to be validated only for first-appearance
        # edges; a misspelled name on a known edge passed silently.
        update = SnapshotUpdate(
            time="t2",
            nodes={"a": {}, "b": {}},
            edges=[("a", "b")],
            edge_attrs={("a", "b"): {"venues": 7}},
        )
        with pytest.raises(KeyError):
            append_snapshot(weighted_graph, update)


class TestEdgeMeasure:
    def test_sum_distinct(self, weighted_graph):
        result = aggregate_edge_measure(
            weighted_graph, ["gender"], "papers", measure="sum"
        )
        # m->f: (a,b) 3; f->f: (b,c) 5 + (c,b) 1; m->m: (a,d) 2.
        assert result.edge(("m",), ("f",)) == 3
        assert result.edge(("f",), ("f",)) == 6
        assert result.edge(("m",), ("m",)) == 2

    def test_sum_all_counts_appearances(self, weighted_graph):
        result = aggregate_edge_measure(
            weighted_graph, ["gender"], "papers", measure="sum", distinct=False
        )
        # (a,b) active twice -> 3 counted twice.
        assert result.edge(("m",), ("f",)) == 6

    def test_window_restriction(self, weighted_graph):
        result = aggregate_edge_measure(
            weighted_graph, ["gender"], "papers", measure="sum", times=["t0"]
        )
        assert result.edge(("m",), ("m",)) is None
        assert result.edge(("f",), ("f",)) == 5

    def test_avg_and_max(self, weighted_graph):
        avg = aggregate_edge_measure(
            weighted_graph, ["gender"], "papers", measure="avg"
        )
        top = aggregate_edge_measure(
            weighted_graph, ["gender"], "papers", measure="max"
        )
        assert avg.edge(("f",), ("f",)) == 3.0
        assert top.edge(("f",), ("f",)) == 5

    def test_requires_edge_attributes(self, paper_graph):
        with pytest.raises(ValueError):
            aggregate_edge_measure(paper_graph, ["gender"], "papers")

    def test_unknown_edge_attribute(self, weighted_graph):
        with pytest.raises(KeyError):
            aggregate_edge_measure(weighted_graph, ["gender"], "venues")

    def test_unknown_measure(self, weighted_graph):
        with pytest.raises(ValueError):
            aggregate_edge_measure(
                weighted_graph, ["gender"], "papers", measure="median"
            )

    def test_node_values_empty(self, weighted_graph):
        result = aggregate_edge_measure(weighted_graph, ["gender"], "papers")
        assert result.node_values == {}


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, weighted_graph):
        from repro.datasets import load_graph, save_graph

        save_graph(weighted_graph, tmp_path / "g")
        assert (tmp_path / "g" / "edge_static.csv").exists()
        loaded = load_graph(tmp_path / "g")
        # Values come back as strings; the frame structure matches.
        assert loaded.edge_attribute_value(("a", "b"), "papers") == "3"
        assert loaded.edge_attribute_names == ("papers",)

    def test_graph_without_edge_attrs_writes_no_file(self, tmp_path, paper_graph):
        from repro.datasets import load_graph, save_graph

        save_graph(paper_graph, tmp_path / "g")
        assert not (tmp_path / "g" / "edge_static.csv").exists()
        assert load_graph(tmp_path / "g").edge_attrs is None
