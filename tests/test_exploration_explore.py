"""Tests for U-Explore, I-Explore and the explore() dispatcher."""

import itertools

import pytest

from repro.exploration import (
    EntityKind,
    EventCounter,
    EventType,
    ExtendSide,
    Goal,
    Semantics,
    exhaustive_explore,
    explore,
    i_explore,
    u_explore,
)

FF = (("f",), ("f",))
MM = (("m",), ("m",))


class TestUExplore:
    def test_minimal_pair_on_paper_graph(self, paper_graph):
        counter = EventCounter(paper_graph, entity=EntityKind.NODES)
        result = u_explore(counter, EventType.STABILITY, ExtendSide.NEW, k=3)
        # t0 -> t1 already has 3 stable nodes (u1, u2, u4).
        first = result.pairs[0]
        assert first.old.interval.start == 0
        assert first.new.interval.start == 1
        assert first.new.is_point
        assert first.count == 3

    def test_extension_happens_when_needed(self, paper_graph):
        counter = EventCounter(paper_graph, entity=EntityKind.NODES)
        # 4 stable nodes never happen between t0 and anything.
        result = u_explore(counter, EventType.STABILITY, ExtendSide.NEW, k=4)
        assert all(p.old.interval.start != 0 for p in result.pairs) or not result.pairs

    def test_goal_recorded(self, paper_graph):
        counter = EventCounter(paper_graph)
        result = u_explore(counter, EventType.STABILITY, ExtendSide.NEW, k=1)
        assert result.goal is Goal.MINIMAL

    def test_pruning_reduces_evaluations(self, small_dblp):
        pruned = explore(
            small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW, k=1
        )
        oracle = exhaustive_explore(
            small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW, k=1
        )
        assert pruned.evaluations < oracle.evaluations
        assert pruned.pairs == oracle.pairs


class TestIExplore:
    def test_maximal_extends_while_passing(self, small_dblp):
        counter = EventCounter(small_dblp)
        result = i_explore(counter, EventType.STABILITY, ExtendSide.NEW, k=1)
        assert result.goal is Goal.MAXIMAL
        for pair in result.pairs:
            assert pair.count >= 1
            assert pair.new.semantics is Semantics.INTERSECTION

    def test_failing_reference_pruned(self, paper_graph):
        counter = EventCounter(paper_graph, entity=EntityKind.NODES)
        result = i_explore(counter, EventType.STABILITY, ExtendSide.NEW, k=99)
        assert result.pairs == ()

    def test_candidate_replacement(self, paper_graph):
        counter = EventCounter(paper_graph, entity=EntityKind.NODES)
        # k=2: t0 vs [t1..t2] under intersection keeps u2, u4 -> count 2,
        # so the candidate for reference t0 extends to the longest span.
        result = i_explore(counter, EventType.STABILITY, ExtendSide.NEW, k=2)
        by_ref = {p.old.interval.start: p for p in result.pairs if p.old.is_point}
        assert by_ref[0].new.interval.stop == 2


class TestDispatcherAgainstOracle:
    @pytest.mark.parametrize(
        "event,goal,extend",
        list(
            itertools.product(
                list(EventType), list(Goal), list(ExtendSide)
            )
        ),
    )
    def test_all_cases_match_oracle(self, small_dblp, event, goal, extend):
        for k in (1, 3, 10):
            fast = explore(
                small_dblp, event, goal, extend, k,
                attributes=["gender"], key=MM,
            )
            oracle = exhaustive_explore(
                small_dblp, event, goal, extend, k,
                attributes=["gender"], key=MM,
            )
            assert fast.pairs == oracle.pairs

    @pytest.mark.parametrize("event", list(EventType))
    def test_pruned_never_costs_more(self, small_dblp, event):
        for goal, extend in itertools.product(list(Goal), list(ExtendSide)):
            fast = explore(small_dblp, event, goal, extend, 5)
            oracle = exhaustive_explore(small_dblp, event, goal, extend, 5)
            assert fast.evaluations <= oracle.evaluations

    def test_invalid_k(self, small_dblp):
        with pytest.raises(ValueError):
            explore(small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 0)
        with pytest.raises(ValueError):
            exhaustive_explore(
                small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 0
            )


class TestTheorems:
    def test_theorem_3_7_sides_differ_for_stability_minimal(self, small_dblp):
        """Minimal stability pairs from extending T_new need not equal
        those from extending T_old (Theorem 3.7).  Some threshold must
        exhibit the difference — here one demonstrably does."""
        differs = False
        for k in (5, 10, 20, 30):
            via_new = explore(
                small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.NEW, k
            )
            via_old = explore(
                small_dblp, EventType.STABILITY, Goal.MINIMAL, ExtendSide.OLD, k
            )
            spans_new = {(p.old.interval, p.new.interval) for p in via_new.pairs}
            spans_old = {(p.old.interval, p.new.interval) for p in via_old.pairs}
            if spans_new != spans_old:
                differs = True
                break
        assert differs

    def test_theorem_3_8_maximal_stability_equivalent(self, small_dblp):
        """Theorem 3.8's substance: intersection over points is
        associative, so a window's count does not depend on the
        extension side, and every *fully maximal* passing window (no
        passing window strictly contains it) is found by both sides."""
        from repro.core import Interval
        from repro.exploration import Side

        counter = EventCounter(small_dblp)
        n = len(small_dblp.timeline)
        k = 3

        def window_count(start, stop):
            return counter.count(
                EventType.STABILITY,
                Side.point(start),
                Side(Interval(start + 1, stop), Semantics.INTERSECTION)
                if stop > start + 1
                else Side.point(stop),
            )

        passing = {
            (i, j)
            for i in range(n - 1)
            for j in range(i + 1, n)
            if window_count(i, j) >= k
        }
        fully_maximal = {
            (i, j)
            for (i, j) in passing
            if (i - 1, j) not in passing and (i, j + 1) not in passing
        }
        assert fully_maximal  # the check must not be vacuous

        via_new = explore(
            small_dblp, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, k
        )
        via_old = explore(
            small_dblp, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.OLD, k
        )
        windows_new = {
            (p.old.interval.start, p.new.interval.stop) for p in via_new.pairs
        }
        windows_old = {
            (p.old.interval.start, p.new.interval.stop) for p in via_old.pairs
        }
        assert fully_maximal <= windows_new
        assert fully_maximal <= windows_old

    def test_intersection_window_counts_match_across_sides(self, small_dblp):
        """The count for (point i, [i+1..j] ∩) equals ([i..j-1] ∩, point j)
        — both are 'present at every point of [i..j]'."""
        from repro.core import Interval
        from repro.exploration import Side

        counter = EventCounter(small_dblp)
        i, j = 2, 5
        a = counter.count(
            EventType.STABILITY,
            Side.point(i),
            Side(Interval(i + 1, j), Semantics.INTERSECTION),
        )
        b = counter.count(
            EventType.STABILITY,
            Side(Interval(i, j - 1), Semantics.INTERSECTION),
            Side.point(j),
        )
        assert a == b


class TestResultObject:
    def test_best(self, small_dblp):
        result = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 1
        )
        best = result.best()
        assert best is not None
        assert best.count == max(p.count for p in result.pairs)

    def test_best_empty(self, small_dblp):
        result = explore(
            small_dblp, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW,
            10 ** 9,
        )
        assert result.best() is None

    def test_str(self, small_dblp):
        result = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 1
        )
        text = str(result)
        assert "growth" in text and "evaluations" in text
