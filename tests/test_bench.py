"""Tests for the benchmark harness: timing, reporting, experiment drivers."""

import pytest

from repro.bench import (
    Measurement,
    ascii_chart,
    fig5_timepoint_aggregation,
    fig6_union_aggregation,
    fig7_intersection_aggregation,
    fig8_difference_old_new,
    fig9_difference_new_old,
    fig10_materialized_union_speedup,
    fig11_attribute_rollup_speedup,
    format_series,
    format_table,
    measure,
    speedup,
)


class TestTiming:
    def test_measure_returns_result(self):
        timing = measure(lambda: 42, repeats=2)
        assert timing.result == 42
        assert timing.repeats == 2
        assert timing.best <= timing.mean

    def test_measure_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: 1, repeats=0)

    def test_speedup(self):
        base = Measurement(best=1.0, mean=1.0, repeats=1, result=None)
        fast = Measurement(best=0.25, mean=0.3, repeats=1, result=None)
        assert speedup(base, fast) == 4.0

    def test_speedup_zero_denominator(self):
        base = Measurement(best=1.0, mean=1.0, repeats=1, result=None)
        zero = Measurement(best=0.0, mean=0.0, repeats=1, result=None)
        assert speedup(base, zero) == float("inf")

    def test_measurement_str(self):
        m = Measurement(best=0.001, mean=0.002, repeats=3, result=None)
        assert "ms" in str(m)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_table_floats(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_ascii_chart_contains_marks(self):
        chart = ascii_chart({"s1": [0, 1, 2], "s2": [2, 1, 0]}, ["a", "b", "c"])
        assert "*" in chart and "o" in chart
        assert "s1" in chart

    def test_ascii_chart_empty(self):
        assert ascii_chart({}, [], title="t") == "t"

    def test_format_series(self):
        text = format_series(
            {"line": [0.1, 0.2]}, ["x1", "x2"], title="demo"
        )
        assert "demo" in text and "x1" in text


@pytest.mark.slow
class TestExperimentDrivers:
    """Each figure driver replays a paper experiment on a tiny graph."""

    def test_fig5(self, small_movielens):
        series = fig5_timepoint_aggregation(
            small_movielens, [["gender"], ["rating"]]
        )
        assert set(series.series) == {"gender", "rating"}
        for values in series.series.values():
            assert len(values) == len(small_movielens.timeline)
            assert all(v >= 0 for v in values)

    def test_fig6(self, small_movielens):
        series = fig6_union_aggregation(small_movielens, [["gender"]])
        assert "gender (DIST)" in series.series
        assert "gender (ALL)" in series.series
        assert len(series.x_labels) == len(small_movielens.timeline)

    def test_fig6_split(self, small_movielens):
        series = fig6_union_aggregation(
            small_movielens, [["gender"]], distinct_modes=(True,), split=True
        )
        assert "gender (DIST) op" in series.series
        assert "gender (DIST) agg" in series.series

    def test_fig7_truncates_at_common_edge(self, small_movielens):
        series = fig7_intersection_aggregation(small_movielens, [["gender"]])
        assert 1 <= len(series.x_labels) <= len(small_movielens.timeline)

    def test_fig8(self, small_movielens):
        series = fig8_difference_old_new(
            small_movielens, [["gender"]], distinct_modes=(True,)
        )
        assert len(series.x_labels) == len(small_movielens.timeline) - 1

    def test_fig9(self, small_movielens):
        series = fig9_difference_new_old(
            small_movielens, [["gender"]], distinct_modes=(True,)
        )
        assert "gender (DIST)" in series.series

    def test_fig10_speedups_positive(self, small_movielens):
        series = fig10_materialized_union_speedup(small_movielens, [["gender"]])
        values = series.series["gender"]
        assert len(values) == len(small_movielens.timeline) - 1
        assert all(v > 0 for v in values)

    def test_fig11_speedups_positive(self, small_movielens):
        series = fig11_attribute_rollup_speedup(
            small_movielens,
            ["gender", "age", "occupation", "rating"],
            [["gender"], ["rating"]],
        )
        for values in series.series.values():
            assert len(values) == len(small_movielens.timeline)
            assert all(v > 0 for v in values)

    def test_series_add(self, small_movielens):
        series = fig5_timepoint_aggregation(small_movielens, [["gender"]])
        series.add("extra", 1.0)
        assert series.series["extra"] == [1.0]
