"""Hypothesis properties for the extension subsystems: coarsening,
group exploration, the query language and the event counter."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core import TimeHierarchy, aggregate, coarsen, union
from repro.exploration import (
    EntityKind,
    EventType,
    ExtendSide,
    Goal,
    explore,
    explore_groups,
)
from repro.query import parse
from repro.query.ast import (
    AggregateExpr,
    EvolutionExpr,
    ExploreExpr,
    OperatorExpr,
    WindowExpr,
)
from repro.testing import temporal_graphs


@st.composite
def graph_with_hierarchy(draw):
    graph = draw(temporal_graphs(min_times=2, max_times=4))
    width = draw(st.integers(1, len(graph.timeline)))
    hierarchy = TimeHierarchy.regular(graph.timeline.labels, width=width)
    return graph, hierarchy


@settings(max_examples=50, deadline=None)
@given(graph_with_hierarchy())
def test_union_coarsening_preserves_distinct_aggregates(data):
    """The DIST aggregate of a coarse unit equals the DIST aggregate of
    the union window it covers."""
    graph, hierarchy = data
    coarse = coarsen(graph, hierarchy, "union")
    for unit in coarse.timeline.labels:
        members = [m for m in hierarchy.members(unit) if m in graph.timeline]
        via_coarse = aggregate(coarse, ["gender"], distinct=True, times=[unit])
        via_base = aggregate(
            union(graph, members), ["gender"], distinct=True
        )
        assert dict(via_coarse.node_weights) == dict(via_base.node_weights)
        assert dict(via_coarse.edge_weights) == dict(via_base.edge_weights)


@settings(max_examples=50, deadline=None)
@given(graph_with_hierarchy())
def test_intersection_coarsening_is_subset_of_union(data):
    graph, hierarchy = data
    strict = coarsen(graph, hierarchy, "intersection")
    relaxed = coarsen(graph, hierarchy, "union")
    assert set(strict.nodes) <= set(relaxed.nodes)
    assert set(strict.edges) <= set(relaxed.edges)
    for node in strict.nodes:
        assert set(strict.node_times(node)) <= set(relaxed.node_times(node))


@settings(max_examples=25, deadline=None)
@given(temporal_graphs(), st.integers(1, 3))
def test_group_explorer_matches_single_group(graph, k):
    for event, goal, extend in itertools.product(
        EventType, Goal, ExtendSide
    ):
        multi = explore_groups(
            graph, event, goal, extend, k, ["gender"],
            entity=EntityKind.NODES,
        )
        for key, pairs in multi.pairs_by_group.items():
            single = explore(
                graph, event, goal, extend, k,
                entity=EntityKind.NODES, attributes=["gender"], key=key,
            )
            assert pairs == single.pairs


# ---------------------------------------------------------------------------
# Query language: generated ASTs render to text that reparses identically.
# ---------------------------------------------------------------------------

values = st.one_of(
    st.integers(0, 5000),
    st.sampled_from(["t0", "May", "gender", "two words", "f"]),
)
windows = st.builds(
    lambda a, b: WindowExpr(a, b),
    values,
    st.one_of(st.none(), values),
)
names = st.lists(
    st.sampled_from(["gender", "age", "rating", "publications"]),
    min_size=1,
    max_size=3,
    unique=True,
).map(tuple)

operator_exprs = st.one_of(
    st.builds(lambda w: OperatorExpr("project", (w,)), windows),
    st.builds(lambda w: OperatorExpr("union", (w,)), windows),
    st.builds(
        lambda a, b: OperatorExpr("union", (a, b)), windows, windows
    ),
    st.builds(
        lambda a, b: OperatorExpr("intersection", (a, b)), windows, windows
    ),
    st.builds(
        lambda a, b: OperatorExpr("difference", (a, b)), windows, windows
    ),
)

aggregate_exprs = st.builds(
    AggregateExpr,
    attributes=names,
    distinct=st.booleans(),
    source=operator_exprs,
)

evolution_exprs = st.builds(
    EvolutionExpr, old=windows, new=windows, attributes=names
)

tuples = st.lists(values, min_size=1, max_size=2).map(tuple)
explore_exprs = st.builds(
    lambda event, goal, extend, k, entity, attributes, key_parts: ExploreExpr(
        event, goal, extend, k, entity, attributes,
        None
        if key_parts is None
        else (key_parts if entity == "nodes" else (key_parts, key_parts)),
    ),
    event=st.sampled_from(["stability", "growth", "shrinkage"]),
    goal=st.sampled_from(["minimal", "maximal"]),
    extend=st.sampled_from(["old", "new"]),
    k=st.integers(1, 10 ** 6),
    entity=st.sampled_from(["nodes", "edges"]),
    attributes=names,
    key_parts=st.one_of(st.none(), tuples),
)

query_exprs = st.one_of(
    operator_exprs, aggregate_exprs, evolution_exprs, explore_exprs
)


@settings(max_examples=200, deadline=None)
@given(query_exprs)
def test_ast_to_text_roundtrip(expr):
    """str(expr) is valid query syntax that parses back to an
    equivalent AST (integer-looking string labels may rebind to ints,
    which the evaluator treats identically)."""
    text = str(expr)
    reparsed = parse(text)
    assert str(reparsed) == text
