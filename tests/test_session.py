"""Tests for the interactive session facade."""

import pytest

from repro import GraphTempoSession
from repro.core import TimeHierarchy, aggregate, union
from repro.exploration import EventType, ExtendSide, Goal


@pytest.fixture()
def session(paper_graph):
    hierarchy = TimeHierarchy({"early": ["t0", "t1"], "late": ["t2"]})
    return GraphTempoSession(paper_graph, hierarchy)


class TestWindowResolution:
    def test_none_is_whole_timeline(self, session):
        assert session.window(None) == ("t0", "t1", "t2")

    def test_span_pair(self, session):
        assert session.window(("t0", "t1")) == ("t0", "t1")

    def test_label_list(self, session):
        assert session.window(["t2", "t0"]) == ("t2", "t0")

    def test_hierarchy_units(self, session):
        assert session.window(["early"]) == ("t0", "t1")
        assert session.window(["early", "late"]) == ("t0", "t1", "t2")

    def test_unknown_label(self, session):
        with pytest.raises(KeyError):
            session.window(["t9"])


class TestOperators:
    def test_project(self, session):
        assert set(session.project(["t2"]).nodes) == {"u2", "u4", "u5"}

    def test_union(self, session, paper_graph):
        assert session.union(["t0"], ["t1"]) == union(paper_graph, ["t0"], ["t1"])

    def test_union_single_window(self, session):
        assert session.union(("t0", "t2")).n_nodes == 5

    def test_intersection(self, session):
        assert set(session.intersection(["t0"], ["t1"]).edges) == {("u1", "u2")}

    def test_difference(self, session):
        result = session.difference(["t0"], ["t1"])
        assert ("u2", "u3") in result.edges


class TestAggregation:
    def test_aggregate_matches_direct(self, session, paper_graph):
        via_session = session.aggregate(["gender"], window=("t0", "t1"))
        direct = aggregate(
            union(paper_graph, ["t0", "t1"]), ["gender"], distinct=True
        )
        assert dict(via_session.node_weights) == dict(direct.node_weights)

    def test_aggregate_uses_cube_cache(self, session):
        session.aggregate(["gender"], window=["t0"])
        session.aggregate(["gender"], window=["t0"])
        assert session.cube.stats.exact_hits == 1

    def test_materialize_is_chainable(self, session):
        result = session.materialize(["gender"])
        assert result is session
        assert session.cube.materialized_count == 3  # one per time point

    def test_hierarchy_unit_window(self, session, paper_graph):
        via_unit = session.aggregate(["gender"], window=["early"], distinct=False)
        direct = aggregate(
            union(paper_graph, ["t0", "t1"]), ["gender"], distinct=False
        )
        assert dict(via_unit.node_weights) == dict(direct.node_weights)


class TestEvolutionAndExploration:
    def test_evolution(self, session):
        evo = session.evolution(["t0"], ["t1"], ["gender", "publications"])
        assert evo.node(("f", 1)).stability == 1

    def test_explore_with_strings(self, session):
        result = session.explore("growth", "minimal", "new", k=1)
        assert result.event is EventType.GROWTH
        assert result.goal is Goal.MINIMAL
        assert result.extend is ExtendSide.NEW
        assert result.pairs

    def test_explore_default_threshold(self, session):
        result = session.explore("stability")
        assert result.k >= 1

    def test_explore_groups(self, session):
        multi = session.explore_groups(
            "growth", "minimal", "new", 1, ["gender"]
        )
        assert multi.pairs_by_group

    def test_exploration_text(self, session):
        text = session.exploration_text(
            "growth", "minimal", "new", thresholds=[1]
        )
        assert "T_old" in text


class TestZoomAndReports:
    def test_zoom_out(self, session):
        zoomed = session.zoom_out()
        assert zoomed.graph.timeline.labels == ("early", "late")

    def test_zoom_out_strict(self, session):
        zoomed = session.zoom_out("intersection")
        assert "u3" not in zoomed.graph.nodes

    def test_zoom_without_hierarchy(self, paper_graph):
        with pytest.raises(ValueError):
            GraphTempoSession(paper_graph).zoom_out()

    def test_report(self, session):
        assert "session graph" in session.report()

    def test_evolution_text(self, session):
        text = session.evolution_text(["t0"], ["t1"], ["gender"])
        assert "Aggregate nodes" in text


class TestSessionQuery:
    def test_query_aggregate(self, session):
        agg = session.query("aggregate gender over union [t0], [t1]")
        assert agg.node_weight(("f",)) == 3

    def test_query_operator(self, session, paper_graph):
        result = session.query("intersection [t0], [t1]")
        assert set(result.edges) == {("u1", "u2")}

    def test_query_explore(self, session):
        result = session.query("explore growth k 1")
        assert result.pairs
