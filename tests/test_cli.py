"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == 0.05

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "6", "--dataset", "movielens", "--scale", "0.01"]
        )
        assert args.number == 6
        assert args.dataset == "movielens"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "6", "--dataset", "imdb"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "DBLP" in out and "MovieLens" in out
        assert "2000" in out and "Aug" in out

    def test_figure_command(self, capsys):
        assert main(["figure", "5", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "gender" in out

    def test_figure_10_command(self, capsys):
        assert main(["figure", "10", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_figure_out_of_range(self):
        with pytest.raises(SystemExit):
            main(["figure", "99", "--scale", "0.01"])

    def test_evolution_command(self, capsys):
        assert main(["evolution", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "evolution on ['gender']" in out
        assert "publications > 4" in out

    def test_explore_command(self, capsys):
        assert main(["explore", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "stability" in out
        assert "w_th" in out

    def test_figure_split_flag(self, capsys):
        assert main(["figure", "6", "--scale", "0.01", "--split"]) == 0
        out = capsys.readouterr().out
        assert " op" in out and " agg" in out


class TestExtendedCommands:
    def test_groups_command(self, capsys):
        assert main(["groups", "--scale", "0.02", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "group sweep" in out
        assert "best pair" in out

    def test_zoom_command(self, capsys):
        assert main(["zoom", "--scale", "0.01", "--width", "7"]) == 0
        out = capsys.readouterr().out
        assert "union" in out and "intersection" in out
        assert "2000..2006" in out

    def test_olap_command(self, capsys):
        assert main(["olap", "--scale", "0.01", "--budget", "3"]) == 0
        out = capsys.readouterr().out
        assert "materialize" in out
        assert "CubeStats" in out

    def test_metrics_command(self, capsys):
        assert main(["metrics", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "homophily" in out and "turnover" in out

    def test_dot_command(self, tmp_path, capsys):
        assert main(["dot", "--scale", "0.01", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "aggregate.dot").exists()
        assert (tmp_path / "evolution.dot").exists()

    def test_query_command(self, capsys):
        assert main([
            "query", "aggregate gender all over union [2000..2002]",
            "--scale", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "Aggregate nodes" in out and "gender" in out

    def test_query_command_non_aggregate(self, capsys):
        assert main([
            "query", "explore growth k 1", "--scale", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "growth/minimal" in out

    def test_check_command(self, capsys):
        assert main(["check", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "[info] size:" in out

    def test_stream_command(self, capsys):
        assert main(["stream", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "appends/s" in out
        assert "replay identity holds" in out

    def test_timeseries_command(self, capsys):
        assert main(["timeseries", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "growth of female-female edges" in out
        assert "largest shift" in out
