"""Property-based tests (hypothesis) for the core invariants.

A random-graph strategy builds small temporal attributed graphs with
arbitrary presence patterns; the properties assert the algebraic laws the
paper's algorithms rely on: operator containments, the evolution
decomposition, DIST <= ALL, distributivity of the materialization rules,
the monotonicity lemmas, and pruned-vs-exhaustive exploration agreement.
"""

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    TemporalGraph,
    Timeline,
    aggregate,
    difference,
    intersection,
    project,
    union,
)
from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    exhaustive_explore,
    explore,
)
from repro.frames import LabeledFrame, Table, unpivot
from repro.materialize import MaterializedStore


from repro.testing import temporal_graphs  # noqa: E402


@st.composite
def graph_and_windows(draw):
    graph = draw(temporal_graphs())
    n = len(graph.timeline)
    i = draw(st.integers(0, n - 2))
    j = draw(st.integers(i + 1, n - 1))
    labels = graph.timeline.labels
    return graph, labels[: i + 1], labels[i + 1 : j + 1]


@settings(max_examples=60, deadline=None)
@given(graph_and_windows())
def test_intersection_contained_in_union(data):
    graph, t1, t2 = data
    u = union(graph, t1, t2)
    i = intersection(graph, t1, t2)
    assert set(i.nodes) <= set(u.nodes)
    assert set(i.edges) <= set(u.edges)


@settings(max_examples=60, deadline=None)
@given(graph_and_windows())
def test_project_contained_in_intersection(data):
    graph, t1, t2 = data
    window = t1 + t2
    p = project(graph, window)
    i = intersection(graph, t1, t2)
    assert set(p.nodes) <= set(i.nodes)
    assert set(p.edges) <= set(i.edges)


@settings(max_examples=60, deadline=None)
@given(graph_and_windows())
def test_evolution_edge_decomposition(data):
    """E_union is the disjoint union of stable, grown and shrunk edges."""
    graph, t1, t2 = data
    u = set(union(graph, t1, t2).edges)
    stable = set(intersection(graph, t1, t2).edges)
    shrunk = set(difference(graph, t1, t2).edges)
    grown = set(difference(graph, t2, t1).edges)
    assert u == stable | shrunk | grown
    assert not (stable & shrunk)
    assert not (stable & grown)
    assert not (shrunk & grown)


@settings(max_examples=60, deadline=None)
@given(graph_and_windows())
def test_difference_nodes_cover_edge_endpoints(data):
    graph, t1, t2 = data
    d = difference(graph, t1, t2)
    nodes = set(d.nodes)
    for u, v in d.edges:
        assert u in nodes and v in nodes


@settings(max_examples=60, deadline=None)
@given(graph_and_windows())
def test_dist_weights_never_exceed_all(data):
    graph, t1, t2 = data
    u = union(graph, t1, t2)
    for attrs in (["gender"], ["level"], ["gender", "level"]):
        dist = aggregate(u, attrs, distinct=True)
        non_dist = aggregate(u, attrs, distinct=False)
        for key, weight in dist.node_weights.items():
            assert weight <= non_dist.node_weight(key)
        for (s, t), weight in dist.edge_weights.items():
            assert weight <= non_dist.edge_weight(s, t)


@settings(max_examples=60, deadline=None)
@given(temporal_graphs())
def test_aggregate_total_matches_entity_counts(graph):
    """DIST weights over the whole timeline sum to distinct entity/tuple
    appearance counts; for static attributes, to entity counts."""
    agg = aggregate(graph, ["gender"], distinct=True)
    assert agg.total_node_weight() == graph.n_nodes
    assert agg.total_edge_weight() == graph.n_edges


@settings(max_examples=60, deadline=None)
@given(temporal_graphs())
def test_static_all_counts_presence_cells(graph):
    agg = aggregate(graph, ["gender"], distinct=False)
    assert agg.total_node_weight() == int(graph.node_presence.values.sum())
    assert agg.total_edge_weight() == int(graph.edge_presence.values.sum())


@settings(max_examples=50, deadline=None)
@given(temporal_graphs())
def test_rollup_matches_direct_aggregation_per_point(graph):
    for time in graph.timeline.labels:
        full = aggregate(graph, ["gender", "level"], times=[time])
        rolled = full.rollup(["gender"])
        direct = aggregate(graph, ["gender"], times=[time])
        assert dict(rolled.node_weights) == dict(direct.node_weights)
        assert dict(rolled.edge_weights) == dict(direct.edge_weights)


@settings(max_examples=50, deadline=None)
@given(temporal_graphs())
def test_t_distributive_union_all(graph):
    store = MaterializedStore(graph)
    times = graph.timeline.labels
    for attrs in (["gender"], ["level"]):
        derived = store.union_aggregate(attrs, times)
        direct = aggregate(union(graph, times), attrs, distinct=False)
        assert dict(derived.node_weights) == dict(direct.node_weights)
        assert dict(derived.edge_weights) == dict(direct.edge_weights)


@settings(max_examples=30, deadline=None)
@given(temporal_graphs(), st.integers(1, 4))
def test_explore_matches_oracle(graph, k):
    for event in EventType:
        for goal in Goal:
            for extend in ExtendSide:
                fast = explore(graph, event, goal, extend, k)
                oracle = exhaustive_explore(graph, event, goal, extend, k)
                assert fast.pairs == oracle.pairs


@settings(max_examples=40, deadline=None)
@given(graph_and_windows())
def test_union_idempotent(data):
    graph, t1, t2 = data
    once = union(graph, t1, t2)
    twice = union(once, t1, t2)
    assert set(once.nodes) == set(twice.nodes)
    assert set(once.edges) == set(twice.edges)


# ---------------------------------------------------------------------------
# Frame-level properties
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(0, 3),
        st.integers(0, 5),
    ),
    max_size=30,
)


@settings(max_examples=80, deadline=None)
@given(rows_strategy)
def test_deduplicate_idempotent(rows):
    table = Table(["k", "t", "v"], rows)
    once = table.deduplicate()
    assert once.deduplicate() == once


@settings(max_examples=80, deadline=None)
@given(rows_strategy)
def test_groupby_count_totals(rows):
    table = Table(["k", "t", "v"], rows)
    counts = table.groupby_count(["k"])
    assert sum(counts.values()) == len(table)


@settings(max_examples=80, deadline=None)
@given(rows_strategy)
def test_groupby_sum_matches_manual(rows):
    table = Table(["k", "t", "v"], rows)
    sums = table.groupby_sum(["k"], "v")
    manual = {}
    for k, _, v in rows:
        manual[(k,)] = manual.get((k,), 0) + v
    assert sums == manual


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(st.one_of(st.none(), st.integers(0, 9)), min_size=3, max_size=3),
        min_size=1,
        max_size=6,
    )
)
def test_unpivot_counts_non_missing_cells(grid):
    labels = [f"r{i}" for i in range(len(grid))]
    frame = LabeledFrame(labels, ["c0", "c1", "c2"], np.array(grid, dtype=object))
    long = unpivot(frame)
    expected = sum(1 for row in grid for cell in row if cell is not None)
    assert len(long) == expected


@settings(max_examples=50, deadline=None)
@given(rows_strategy, rows_strategy)
def test_inner_join_subset_of_left_join(left_rows, right_rows):
    left = Table(["k", "t", "v"], left_rows)
    right = Table(["k", "x", "y"], right_rows).deduplicate(["k"])
    inner = left.join(right, on=["k"])
    outer = left.join(right, on=["k"], how="left")
    assert len(outer) == len(left)
    assert set(inner.rows) <= set(outer.rows)
