"""Shard parity: the persistent fabric must be bit-identical to serial.

The strongest claim the fabric makes is that persistence, pinning,
batching, routing and recovery are *invisible* in results.  This suite
enforces it against the same oracles the per-call pool answers to:

* all eight Table-1 exploration cases — identical pairs *and* identical
  evaluation counts across :class:`~repro.parallel.InlineExecutor`,
  :class:`~repro.parallel.ParallelExecutor` and
  :class:`~repro.parallel.ShardedExecutor` (exploration's reference-
  range tasks make this the time-window sharding axis);
* both aggregation engines, DIST and ALL (aggregation's entity-range
  tasks make this the entity sharding axis);
* the full registered fuzz-law suite replayed under an
  :func:`~repro.parallel.executor_scope` pinning one shared fabric;
* physical shard slices (:func:`~repro.parallel.shard_backend`) cover
  the backend exactly, for entity-range and time-window axes alike;
* a concurrent readers × appender stress through
  :class:`~repro.serving.QueryServer` multiplexing every request onto
  one shared fabric — results replay bit-identically against the exact
  version that served them.
"""

from __future__ import annotations

import itertools
import threading

import pytest

from tests.conftest import TEST_SEED, make_tiny_graph
from repro.core import aggregate
from repro.core.aggregation import aggregate_general
from repro.core.operators import presence_signature
from repro.core.updates import SnapshotUpdate
from repro.datasets import paper_example
from repro.exploration import EventType, ExtendSide, Goal, explore
from repro.parallel import (
    InlineExecutor,
    ParallelExecutor,
    ShardedExecutor,
    executor_scope,
    shard_backend,
)
from repro.query import run_query
from repro.serving import QueryServer
from repro.storage import backend_names, get_backend
from repro.streaming import StreamingStore
from repro.testing import run_fuzz

ALL_CASES = tuple(itertools.product(EventType, Goal, ExtendSide))


@pytest.fixture()
def no_work_floor(monkeypatch):
    """Remove the implicit-parallelism gate so tiny graphs still pool."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_WORK", "0")


@pytest.fixture(scope="module")
def graph():
    return make_tiny_graph(seed=17 + TEST_SEED, n_times=7)


@pytest.fixture(scope="module")
def fabric():
    """One persistent fabric shared by the whole module — reuse across
    dozens of unrelated fan-outs is itself part of what's under test."""
    executor = ShardedExecutor(2)
    yield executor
    executor.close()


def _executors(fabric):
    return (
        ("inline", InlineExecutor()),
        ("parallel", ParallelExecutor(2)),
        ("sharded", fabric),
    )


# ----------------------------------------------------------------------
# Table-1 exploration cases: time-window sharded tasks
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "event,goal,extend",
    ALL_CASES,
    ids=[f"{e}-{g}-{x}" for e, g, x in ALL_CASES],
)
def test_explore_parity_every_case(graph, fabric, no_work_floor, event, goal, extend):
    baseline = explore(graph, event, goal, extend, 1)
    for name, executor in _executors(fabric):
        with executor_scope(executor):
            result = explore(graph, event, goal, extend, 1, parallelism=2)
        assert baseline.diff(result) == (), f"{name} diverged"
        assert baseline.pairs == result.pairs, name
        # Bit-identical includes the pruning decisions, not just pairs.
        assert baseline.evaluations == result.evaluations, name


# ----------------------------------------------------------------------
# Aggregation: entity-range sharded tasks, both engines
# ----------------------------------------------------------------------


@pytest.mark.parametrize("distinct", [True, False], ids=["dist", "all"])
@pytest.mark.parametrize(
    "attributes",
    [["color"], ["level"], ["color", "level"]],
    ids=["static", "varying", "mixed"],
)
def test_aggregate_parity_both_engines(
    graph, fabric, no_work_floor, attributes, distinct
):
    serial = aggregate(graph, attributes, distinct=distinct)
    oracle = aggregate_general(graph, attributes, distinct=distinct)
    for name, executor in _executors(fabric):
        with executor_scope(executor):
            fast = aggregate(graph, attributes, distinct=distinct, parallelism=2)
            general = aggregate_general(graph, attributes, distinct=distinct)
        assert serial.diff(fast) == (), f"{name} fast engine diverged"
        assert oracle.diff(general) == (), f"{name} general engine diverged"


def test_repeated_calls_stay_bit_exact_on_a_warm_pool(graph, fabric, no_work_floor):
    """Payload pins and shard routing must not drift results over time."""
    serial = aggregate(graph, ["color"], distinct=True)
    with executor_scope(fabric):
        for _ in range(4):
            warm = aggregate(graph, ["color"], distinct=True, parallelism=2)
            assert serial.diff(warm) == ()


# ----------------------------------------------------------------------
# The full law registry on the fabric
# ----------------------------------------------------------------------


def test_all_laws_hold_on_the_fabric(test_seed, fabric, no_work_floor):
    with executor_scope(fabric):
        report = run_fuzz(seed=test_seed, cases=3, shrink=False)
    assert report.ok, report.summary() + "".join(
        f"\n{f}" for f in report.failures
    )


def test_fuzz_replay_identical_inline_vs_fabric(test_seed, fabric, no_work_floor):
    serial = run_fuzz(seed=test_seed, cases=2, shrink=False)
    with executor_scope(fabric):
        sharded = run_fuzz(seed=test_seed, cases=2, shrink=False)
    assert serial.ok == sharded.ok
    assert serial.checks == sharded.checks
    assert serial.laws == sharded.laws
    assert [str(f) for f in serial.failures] == [
        str(f) for f in sharded.failures
    ]


# ----------------------------------------------------------------------
# Physical shard slices: entity-range and time-window axes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", backend_names())
@pytest.mark.parametrize("n_shards", [1, 2, 3, 50])
def test_entity_shards_cover_the_backend_exactly(graph, backend_name, n_shards):
    backend = get_backend(backend_name).from_graph(graph)
    shards = shard_backend(backend, n_shards, by="entity")
    assert len(shards) == n_shards
    covered = [label for shard in shards for label in shard.node_labels]
    assert covered == list(backend.node_labels)
    for shard in shards:
        assert shard.times == backend.times
        assert shard.edge_labels == backend.edge_labels
        for mode in ("any", "all", "none"):
            mask = shard.presence_mask("nodes", mode=mode)
            assert len(mask) == len(shard.node_labels)


@pytest.mark.parametrize("backend_name", backend_names())
def test_time_shards_cover_the_timeline_exactly(graph, backend_name):
    backend = get_backend(backend_name).from_graph(graph)
    shards = shard_backend(backend, 3, by="time")
    covered = [time for shard in shards for time in shard.times]
    assert covered == list(backend.times)
    for shard in shards:
        assert shard.node_labels == backend.node_labels
        # A time shard is exactly the storage-level window projection.
        if shard.times:
            window = backend.slice_time(shard.times)
            assert (
                shard.presence_mask("nodes").tolist()
                == window.presence_mask("nodes").tolist()
            )


@pytest.mark.parametrize("backend_name", backend_names())
def test_edge_shards_cover_the_backend_exactly(graph, backend_name):
    backend = get_backend(backend_name).from_graph(graph)
    shards = shard_backend(backend, 2, by="edges")
    covered = [label for shard in shards for label in shard.edge_labels]
    assert covered == list(backend.edge_labels)


def test_sharded_aggregation_merges_to_the_whole(graph):
    """Entity shards are a physical partition: summing per-shard DIST
    node weights over the same window reproduces the whole graph's.
    Edges stay whole in an entity shard, so the shard-local graph keeps
    only edges with both endpoints inside the shard (cross-shard edges
    belong to the broadcast/merge path, not the shard-local one)."""
    backend = get_backend("dense").from_graph(graph)
    whole = aggregate(graph, ["color"], distinct=True)
    merged: dict = {}
    for shard in shard_backend(backend, 3, by="entity"):
        nodes = set(shard.node_labels)
        keep = [
            edge
            for edge in shard.edge_labels
            if edge[0] in nodes and edge[1] in nodes
        ]
        frames = shard.to_frames()
        local = type(shard).from_frames(
            frames._replace(
                edge_presence=frames.edge_presence.select_rows(keep),
                edge_attrs=(
                    None
                    if frames.edge_attrs is None
                    else frames.edge_attrs.select_rows(keep)
                ),
            )
        )
        part = aggregate(local.to_graph(), ["color"], distinct=True)
        for key, weight in part.node_weights.items():
            merged[key] = merged.get(key, 0) + weight
    assert merged == dict(whole.node_weights)


# ----------------------------------------------------------------------
# Concurrent readers × appender on one shared fabric
# ----------------------------------------------------------------------

QUERIES = (
    "aggregate gender all over union [t0..t2]",
    "aggregate gender distinct over project [t0..t1]",
    "aggregate gender, publications all over union [t0..t1]",
    "evolution [t0] -> [t1] by gender",
    "union [t0], [t2]",
    "difference [t2], [t0]",
)


def _updates(n):
    updates = []
    for i in range(n):
        node = f"s{i}"
        updates.append(
            SnapshotUpdate(
                time=f"t{3 + i}",
                nodes={
                    "u1": {"publications": 1 + i},
                    "u2": {"publications": 2},
                    node: {"publications": i},
                },
                static={node: {"gender": "f" if i % 2 else "m"}},
                edges=[("u1", "u2"), ("u2", node)],
            )
        )
    return updates


def _assert_matches(text, served, graph):
    naive = run_query(graph, text)
    if hasattr(served, "diff"):
        problems = served.diff(naive)
        assert not problems, f"{text!r} diverged: {problems[0]}"
    else:
        assert presence_signature(served) == presence_signature(naive), (
            f"{text!r} presence diverged"
        )


def test_concurrent_readers_and_appender_on_one_fabric(no_work_floor):
    """Readers multiplex onto one persistent fabric through the server's
    ``executor=`` seam while an appender publishes versions; the store's
    invalidation hook drops the fabric's payload pins per version, and
    every served result must replay bit-identically against the version
    that served it."""
    store = StreamingStore(paper_example())
    fabric = ShardedExecutor(2)
    unsubscribe = fabric.bind_store(store)
    # cache_capacity=0: every request truly executes on the fabric.
    server = QueryServer(store, cache_capacity=0, executor=fabric)
    n_readers = 4
    rounds_total = 5
    updates = _updates(rounds_total - 1)
    records = [[] for _ in range(n_readers)]
    failures = []
    rounds = threading.Barrier(n_readers + 1)

    def reader(index):
        try:
            for _ in range(rounds_total):
                rounds.wait()
                for text in QUERIES:
                    served = server.serve(text)
                    records[index].append((text, served))
        except BaseException as exc:  # surfaces after join
            failures.append(exc)

    def appender():
        try:
            for round_index in range(rounds_total):
                rounds.wait()
                if round_index < len(updates):
                    store.append_snapshot(updates[round_index])
        except BaseException as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(n_readers)
    ]
    threads.append(threading.Thread(target=appender))
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        server.close()
        unsubscribe()
        fabric.close()
    assert not failures, failures[0]
    assert server.version == len(updates)

    served_versions = set()
    for bucket in records:
        assert bucket  # every reader made progress
        for text, served in bucket:
            served_versions.add(served.version)
            graph = store.at_version(served.version).graph
            _assert_matches(text, served.result, graph)
    # Appends interleaved with serving: more than one version answered.
    assert len(served_versions) >= 2, served_versions


def test_bind_store_invalidates_payload_pins(no_work_floor):
    store = StreamingStore(paper_example())
    fabric = ShardedExecutor(2)
    fabric.bind_store(store)
    server = QueryServer(store, cache_capacity=0, executor=fabric)
    try:
        first = server.serve("aggregate gender all over union [t0..t2]")
        store.append_snapshot(_updates(1)[0])
        second = server.serve("aggregate gender all over union [t0..t3]")
        assert second.version == first.version + 1
        # The rebound result reflects the new version, evaluated on the
        # same (re-pinned, re-sharded) fabric.
        _assert_matches(
            "aggregate gender all over union [t0..t3]",
            second.result,
            store.graph,
        )
    finally:
        server.close()
        fabric.close()
