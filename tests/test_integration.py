"""Cross-module integration: full pipelines through the whole stack.

Each test chains several subsystems the way a real analysis would,
asserting consistency at every hand-off (generator -> persistence ->
diagnostics -> session -> cube -> exploration -> reports).
"""

import pytest

from repro import GraphTempoSession
from repro.analysis import (
    dataset_report,
    event_series,
    evolution_report,
    turnover,
)
from repro.core import (
    TimeHierarchy,
    aggregate,
    aggregate_fast,
    coarsen,
    union,
    with_degree_attribute,
)
from repro.datasets import generate_dblp, load_graph, save_graph
from repro.diagnostics import check_graph
from repro.exploration import (
    EntityKind,
    EventType,
    ExtendSide,
    Goal,
    drill_explore,
    explore,
    explore_groups,
    suggest_threshold,
)
from repro.materialize import MaterializedStore
from repro.olap import TemporalGraphCube, greedy_view_selection
from repro.query import run_query
from repro.testing import assert_same_aggregate


class TestPersistencePipeline:
    def test_generate_save_load_analyze(self, tmp_path, small_dblp):
        """A saved-and-reloaded graph yields identical analyses."""
        save_graph(small_dblp, tmp_path / "dblp")
        reloaded = load_graph(
            tmp_path / "dblp",
            node_parser=int,
            time_parser=int,
            value_parsers={"publications": int},
        )
        assert not [
            f for f in check_graph(reloaded) if f.severity == "error"
        ]
        window = small_dblp.timeline.labels[:5]
        assert_same_aggregate(
            aggregate(union(small_dblp, window), ["gender"]),
            aggregate(union(reloaded, window), ["gender"]),
        )
        original = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 10
        )
        rerun = explore(
            reloaded, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 10
        )
        assert original.pairs == rerun.pairs


class TestSessionPipeline:
    def test_session_cube_query_agree(self, small_movielens):
        """The session cube, the raw API and the query language agree."""
        session = GraphTempoSession(small_movielens)
        via_session = session.aggregate(
            ["gender"], window=("May", "Jul"), distinct=False
        )
        via_api = aggregate(
            union(small_movielens, ["May", "Jun", "Jul"]),
            ["gender"],
            distinct=False,
        )
        via_query = run_query(
            small_movielens, "aggregate gender all over union [May..Jul]"
        )
        via_fast = aggregate_fast(
            union(small_movielens, ["May", "Jun", "Jul"]),
            ["gender"],
            distinct=False,
        )
        assert_same_aggregate(via_session, via_api)
        assert_same_aggregate(via_query, via_api)
        assert_same_aggregate(via_fast, via_api)

    def test_view_selection_feeds_cube(self, small_movielens):
        """Greedy views warm a cube so single-attribute queries never hit
        the base graph."""
        cube = TemporalGraphCube(small_movielens)
        selection = greedy_view_selection(
            small_movielens, small_movielens.attribute_names, budget=5
        )
        for view in selection.selected:
            cube.materialize(view, distinct=False)
        for attr in small_movielens.attribute_names:
            cube.cuboid([attr], distinct=False)
        assert cube.stats.base_computations == 0

    def test_materialized_store_consistent_with_cube(self, small_dblp):
        window = small_dblp.timeline.labels[:6]
        store = MaterializedStore(small_dblp)
        store.precompute(["gender"], distinct=False, times=window)
        cube = TemporalGraphCube(small_dblp)
        cube.materialize(["gender"], per_time_point=True, times=window)
        assert_same_aggregate(
            store.union_aggregate(["gender"], window),
            cube.cuboid(["gender"], times=window, distinct=False),
        )


class TestExplorationPipeline:
    def test_threshold_explore_report_chain(self, small_dblp):
        ff = (("f",), ("f",))
        w = suggest_threshold(
            small_dblp, EventType.GROWTH, "max",
            attributes=["gender"], key=ff,
        )
        result = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, w,
            attributes=["gender"], key=ff,
        )
        # w_th is the max consecutive-pair count, so at least one minimal
        # pair exists and every reported pair meets it.
        assert result.pairs
        assert all(p.count >= w for p in result.pairs)
        series = event_series(
            small_dblp, EventType.GROWTH, attributes=["gender"], key=ff
        )
        assert max(series.counts) == w

    def test_drill_and_groups_compose(self, small_dblp):
        hierarchy = TimeHierarchy.regular(small_dblp.timeline.labels, 7)
        drilled = drill_explore(
            small_dblp, hierarchy,
            EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k=40,
        )
        assert drilled.coarse.pairs
        sweep = explore_groups(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
            k=40, attributes=["gender"],
        )
        # The dominant group's best count can't exceed the unfiltered
        # exploration's best count.
        flat = explore(
            small_dblp, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, 40
        )
        top = sweep.interesting_groups[0]
        assert sweep.best_pair(top).count <= flat.best().count

    def test_derived_attribute_exploration(self, small_dblp):
        """Degree classes work end to end: derive, aggregate, explore."""
        enriched = with_degree_attribute(
            small_dblp, name="dclass", classes=(1, 3)
        )
        counter_key = ("3+",)
        result = explore(
            enriched, EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD, 1,
            entity=EntityKind.NODES, attributes=["dclass"], key=counter_key,
        )
        for pair in result.pairs:
            assert pair.count >= 1


class TestReportingPipeline:
    def test_coarsen_then_report(self, small_dblp):
        hierarchy = TimeHierarchy.regular(small_dblp.timeline.labels, 7)
        coarse = coarsen(small_dblp, hierarchy, "union")
        text = dataset_report(coarse, "coarse")
        assert "coarse" in text
        report = evolution_report(
            coarse,
            [coarse.timeline.labels[0]],
            [coarse.timeline.labels[1]],
            ["gender"],
        )
        assert 0.0 <= turnover(report.aggregate, entity="nodes") <= 1.0
