"""Integration tests: every example script runs end to end.

Each example is executed as a subprocess (the way a user runs it) at a
tiny scale, and its output is checked for the landmark lines that show
the scenario actually executed.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Table 2" in out
        assert "DIST=3" in out and "ALL=4" in out
        assert "St=1 Gr=1 Shr=1" in out

    def test_dataset_report(self):
        out = run_example("dataset_report.py", "0.01")
        assert "Table 3 shape" in out and "Table 4 shape" in out
        assert "reloaded graph matches the original size table: True" in out

    def test_dblp_evolution(self):
        out = run_example("dblp_evolution.py", "0.02")
        assert "Figure 12a" in out and "Figure 12b" in out
        assert "stable authors" in out

    def test_movielens_exploration(self):
        out = run_example("movielens_exploration.py", "0.02")
        assert "Figure 13a" in out
        assert "w_th=" in out

    def test_epidemic_contacts(self):
        out = run_example("epidemic_contacts.py")
        assert "within-grade contact share" in out
        assert "largest pupil shrinkage" in out
        assert "closure onset" in out

    def test_olap_session(self):
        out = run_example("olap_session.py", "0.02")
        assert "materialize" in out
        assert "homophily" in out

    def test_streaming_updates(self):
        out = run_example("streaming_updates.py")
        assert "consistent: True" in out
        assert "False" not in out.split("consistent:")[1].splitlines()[0]

    def test_custom_dataset(self):
        out = run_example("custom_dataset.py")
        assert "reloaded matches: True" in out
        assert "[info] size:" in out

    @pytest.mark.slow
    def test_reproduce_all_smoke(self):
        out = run_example("reproduce_all.py", "0.01")
        assert "Figure 14" in out
        assert "Total wall time" in out

    def test_timeline_navigation(self):
        out = run_example("timeline_navigation.py", "0.02")
        assert "largest shift" in out
        assert "drill into" in out
        assert "best pair" in out
