"""Tests for appending snapshots and incremental materialization."""

import pytest
from hypothesis import given, settings

from repro.core import (
    SnapshotUpdate,
    aggregate,
    append_snapshot,
    snapshot_at,
    split_history,
    union,
)
from repro.errors import UnknownLabelError, ValidationError
from repro.materialize import IncrementalStore
from repro.testing import (
    GraphSpec,
    assert_same_graph,
    random_temporal_graph,
    temporal_graphs,
)


def make_update(time="t3"):
    return SnapshotUpdate(
        time=time,
        nodes={
            "u2": {"publications": 2},
            "u5": {"publications": 1},
            "u9": {"publications": 4},
        },
        static={"u9": {"gender": "f"}},
        edges=[("u5", "u2"), ("u9", "u2")],
    )


class TestAppendSnapshot:
    def test_timeline_extended(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert extended.timeline.labels == ("t0", "t1", "t2", "t3")

    def test_original_untouched(self, paper_graph):
        append_snapshot(paper_graph, make_update())
        assert len(paper_graph.timeline) == 3
        assert "u9" not in paper_graph.nodes

    def test_new_node_added(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert "u9" in extended.nodes
        assert extended.attribute_value("u9", "gender") == "f"
        assert extended.node_times("u9") == ("t3",)

    def test_returning_node(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        # u5 existed at t2, returns at t3.
        assert extended.node_times("u5") == ("t2", "t3")
        assert extended.attribute_value("u5", "publications", "t3") == 1

    def test_absent_node_stays_absent(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert extended.node_times("u1") == ("t0", "t1")
        assert extended.attribute_value("u1", "publications", "t3") is None

    def test_existing_edge_extended(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        # (u5, u2) already existed at t2.
        assert extended.edge_times(("u5", "u2")) == ("t2", "t3")

    def test_new_edge_added(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert extended.edge_times(("u9", "u2")) == ("t3",)

    def test_duplicate_time_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            append_snapshot(
                paper_graph, SnapshotUpdate(time="t2", nodes={})
            )

    def test_edge_endpoint_missing_from_snapshot(self, paper_graph):
        update = SnapshotUpdate(
            time="t3", nodes={"u2": {}}, edges=[("u2", "u4")]
        )
        with pytest.raises(ValueError):
            append_snapshot(paper_graph, update)

    def test_unknown_varying_attribute(self, paper_graph):
        update = SnapshotUpdate(time="t3", nodes={"u2": {"citations": 9}})
        with pytest.raises(KeyError):
            append_snapshot(paper_graph, update)

    def test_unknown_static_attribute(self, paper_graph):
        update = SnapshotUpdate(
            time="t3", nodes={"zz": {}}, static={"zz": {"height": 3}}
        )
        with pytest.raises(KeyError):
            append_snapshot(paper_graph, update)

    def test_appended_graph_supports_operators(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        agg = aggregate(
            union(extended, ["t2"], ["t3"]), ["gender"], distinct=True
        )
        assert agg.node_weight(("f",)) == 3  # u2, u4, u9

    def test_chained_appends(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update("t3"))
        extended = append_snapshot(
            extended,
            SnapshotUpdate(time="t4", nodes={"u9": {"publications": 5}}),
        )
        assert extended.node_times("u9") == ("t3", "t4")

    def test_empty_update_extends_timeline_only(self, paper_graph):
        extended = append_snapshot(
            paper_graph, SnapshotUpdate(time="t3", nodes={})
        )
        assert extended.timeline.labels == ("t0", "t1", "t2", "t3")
        assert extended.nodes_at("t3") == ()
        assert extended.edges_at("t3") == ()
        # Aggregating the empty snapshot rolls up to nothing, not an error.
        agg = aggregate(extended, ["gender"], distinct=True, times=["t3"])
        assert dict(agg.node_weights) == {}


class TestSnapshotAt:
    def test_unknown_timepoint_rejected(self, paper_graph):
        with pytest.raises(UnknownLabelError):
            snapshot_at(paper_graph, "t9")

    def test_round_trip_through_append(self, paper_graph):
        # Rebuilding t2 from its own snapshot reproduces the original.
        update = snapshot_at(paper_graph, "t2")
        assert update.time == "t2"
        truncated = paper_graph.restricted(
            paper_graph.node_presence.rows_any(["t0", "t1"]),
            paper_graph.edge_presence.rows_any(["t0", "t1"]),
            ["t0", "t1"],
        )
        rebuilt = append_snapshot(truncated, update)
        assert rebuilt.nodes_at("t2") == paper_graph.nodes_at("t2")
        assert rebuilt.edges_at("t2") == paper_graph.edges_at("t2")

    def test_snapshot_carries_varying_values(self, paper_graph):
        update = snapshot_at(paper_graph, "t0")
        assert update.nodes["u1"]["publications"] == 3


class TestSplitHistory:
    def test_replay_reconstructs_graph(self, paper_graph):
        initial, updates = split_history(paper_graph)
        assert initial.timeline.labels == ("t0",)
        assert [u.time for u in updates] == ["t1", "t2"]
        rebuilt = initial
        for update in updates:
            rebuilt = append_snapshot(rebuilt, update)
        assert_same_graph(rebuilt, paper_graph)

    def test_replay_reconstructs_synthetic(self, tiny_graph):
        initial, updates = split_history(tiny_graph)
        rebuilt = initial
        for update in updates:
            rebuilt = append_snapshot(rebuilt, update)
        assert_same_graph(rebuilt, tiny_graph)

    def test_incremental_store_from_history(self, paper_graph):
        store = IncrementalStore.from_history(paper_graph, [("gender",)])
        direct = aggregate(paper_graph, ["gender"], distinct=False)
        assert dict(store.union_total(["gender"]).node_weights) == dict(
            direct.node_weights
        )


class TestIncrementalStore:
    def test_initial_totals(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        direct = aggregate(paper_graph, ["gender"], distinct=False)
        assert dict(store.union_total(["gender"]).node_weights) == dict(
            direct.node_weights
        )

    def test_append_updates_totals(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        extended = store.append(make_update())
        direct = aggregate(extended, ["gender"], distinct=False)
        assert dict(store.union_total(["gender"]).node_weights) == dict(
            direct.node_weights
        )
        assert dict(store.union_total(["gender"]).edge_weights) == dict(
            direct.edge_weights
        )

    def test_multiple_tracked_sets(self, paper_graph):
        store = IncrementalStore(
            paper_graph, [("gender",), ("publications",)]
        )
        extended = store.append(make_update())
        for attrs in (["gender"], ["publications"]):
            direct = aggregate(extended, attrs, distinct=False)
            assert dict(store.union_total(attrs).node_weights) == dict(
                direct.node_weights
            )

    def test_timepoint_access(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        store.append(make_update())
        point = store.timepoint_aggregate(["gender"], 3)
        direct = aggregate(store.graph, ["gender"], distinct=False, times=["t3"])
        assert dict(point.node_weights) == dict(direct.node_weights)

    def test_untracked_rejected(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        with pytest.raises(KeyError):
            store.union_total(["publications"])

    def test_duplicate_tracked_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            IncrementalStore(paper_graph, [("gender",), ("gender",)])

    def test_graph_property_tracks_appends(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        assert store.graph is paper_graph
        extended = store.append(make_update())
        assert store.graph is extended


class TestSnapshotUpdateFrozen:
    def test_generator_edges_survive_replay(self, paper_graph):
        """Regression: edges passed as a generator used to be consumed on
        the first append, silently dropping every edge from a replay."""
        update = SnapshotUpdate(
            time="t3",
            nodes={"u2": {"publications": 2}, "u5": {"publications": 1}},
            edges=(e for e in [("u5", "u2")]),
        )
        first = append_snapshot(paper_graph, update)
        second = append_snapshot(paper_graph, update)
        assert first.edge_times(("u5", "u2")) == ("t2", "t3")
        assert_same_graph(first, second)

    def test_edges_frozen_to_tuple(self):
        update = SnapshotUpdate(time="t0", nodes={"a": {}}, edges=iter(()))
        assert update.edges == ()
        assert isinstance(update.edges, tuple)

    def test_mappings_are_owned_copies(self):
        nodes = {"a": {"publications": 1}}
        static = {"a": {"gender": "f"}}
        update = SnapshotUpdate(time="t0", nodes=nodes, static=static)
        nodes["b"] = {}
        static["a"]["gender"] = "m"
        assert set(update.nodes) == {"a"}
        assert update.static["a"]["gender"] == "f"

    def test_update_is_picklable(self):
        import pickle

        update = make_update()
        clone = pickle.loads(pickle.dumps(update))
        assert clone == update


class TestUniformAttributeValidation:
    def test_unknown_static_name_for_known_node(self, paper_graph):
        """Regression: unknown static names were only validated for
        first-appearance nodes; for known nodes they passed silently."""
        update = SnapshotUpdate(
            time="t3", nodes={"u2": {}}, static={"u2": {"height": 180}}
        )
        with pytest.raises(UnknownLabelError):
            append_snapshot(paper_graph, update)

    def test_known_static_name_for_known_node_ignored(self, paper_graph):
        # Valid names on known nodes stay accepted (values ignored:
        # static attributes cannot change).
        update = SnapshotUpdate(
            time="t3", nodes={"u2": {}}, static={"u2": {"gender": "m"}}
        )
        extended = append_snapshot(paper_graph, update)
        assert extended.attribute_value("u2", "gender") == "f"

    def test_edge_attrs_rejected_without_edge_attr_frame(self, paper_graph):
        # paper_graph has no edge attributes: any supplied name is unknown.
        update = SnapshotUpdate(
            time="t3",
            nodes={"u2": {}, "u5": {}},
            edges=[("u5", "u2")],
            edge_attrs={("u5", "u2"): {"papers": 1}},
        )
        with pytest.raises(UnknownLabelError):
            append_snapshot(paper_graph, update)


class TestReplayRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=temporal_graphs())
    def test_split_replay_identity(self, graph):
        """split_history ∘ replay == identity, for arbitrary well-formed
        graphs; replaying the same updates twice stays identical (the
        frozen-update guarantee)."""
        initial, updates = split_history(graph)
        first = initial
        for update in updates:
            first = append_snapshot(first, update)
        assert_same_graph(first, graph)
        second = initial
        for update in updates:
            second = append_snapshot(second, update)
        assert_same_graph(second, first)

    @pytest.mark.parametrize("seed", range(6))
    def test_hostile_graphs_replay_or_reject(self, seed):
        """Dangling-edge (hostile) graphs never replay into something
        different: the replay either reconstructs the graph or fails
        from the taxonomy when a snapshot references a ghost endpoint."""
        graph = random_temporal_graph(
            GraphSpec(n_times=4, n_nodes=8, dangling_edges=2), seed=seed
        )
        initial, updates = split_history(graph)
        rebuilt = initial
        try:
            for update in updates:
                rebuilt = append_snapshot(rebuilt, update)
        except ValidationError:
            return
        assert_same_graph(rebuilt, graph)
