"""Tests for appending snapshots and incremental materialization."""

import pytest

from repro.core import (
    SnapshotUpdate,
    aggregate,
    append_snapshot,
    union,
)
from repro.materialize import IncrementalStore


def make_update(time="t3"):
    return SnapshotUpdate(
        time=time,
        nodes={
            "u2": {"publications": 2},
            "u5": {"publications": 1},
            "u9": {"publications": 4},
        },
        static={"u9": {"gender": "f"}},
        edges=[("u5", "u2"), ("u9", "u2")],
    )


class TestAppendSnapshot:
    def test_timeline_extended(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert extended.timeline.labels == ("t0", "t1", "t2", "t3")

    def test_original_untouched(self, paper_graph):
        append_snapshot(paper_graph, make_update())
        assert len(paper_graph.timeline) == 3
        assert "u9" not in paper_graph.nodes

    def test_new_node_added(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert "u9" in extended.nodes
        assert extended.attribute_value("u9", "gender") == "f"
        assert extended.node_times("u9") == ("t3",)

    def test_returning_node(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        # u5 existed at t2, returns at t3.
        assert extended.node_times("u5") == ("t2", "t3")
        assert extended.attribute_value("u5", "publications", "t3") == 1

    def test_absent_node_stays_absent(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert extended.node_times("u1") == ("t0", "t1")
        assert extended.attribute_value("u1", "publications", "t3") is None

    def test_existing_edge_extended(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        # (u5, u2) already existed at t2.
        assert extended.edge_times(("u5", "u2")) == ("t2", "t3")

    def test_new_edge_added(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        assert extended.edge_times(("u9", "u2")) == ("t3",)

    def test_duplicate_time_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            append_snapshot(
                paper_graph, SnapshotUpdate(time="t2", nodes={})
            )

    def test_edge_endpoint_missing_from_snapshot(self, paper_graph):
        update = SnapshotUpdate(
            time="t3", nodes={"u2": {}}, edges=[("u2", "u4")]
        )
        with pytest.raises(ValueError):
            append_snapshot(paper_graph, update)

    def test_unknown_varying_attribute(self, paper_graph):
        update = SnapshotUpdate(time="t3", nodes={"u2": {"citations": 9}})
        with pytest.raises(KeyError):
            append_snapshot(paper_graph, update)

    def test_unknown_static_attribute(self, paper_graph):
        update = SnapshotUpdate(
            time="t3", nodes={"zz": {}}, static={"zz": {"height": 3}}
        )
        with pytest.raises(KeyError):
            append_snapshot(paper_graph, update)

    def test_appended_graph_supports_operators(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update())
        agg = aggregate(
            union(extended, ["t2"], ["t3"]), ["gender"], distinct=True
        )
        assert agg.node_weight(("f",)) == 3  # u2, u4, u9

    def test_chained_appends(self, paper_graph):
        extended = append_snapshot(paper_graph, make_update("t3"))
        extended = append_snapshot(
            extended,
            SnapshotUpdate(time="t4", nodes={"u9": {"publications": 5}}),
        )
        assert extended.node_times("u9") == ("t3", "t4")


class TestIncrementalStore:
    def test_initial_totals(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        direct = aggregate(paper_graph, ["gender"], distinct=False)
        assert dict(store.union_total(["gender"]).node_weights) == dict(
            direct.node_weights
        )

    def test_append_updates_totals(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        extended = store.append(make_update())
        direct = aggregate(extended, ["gender"], distinct=False)
        assert dict(store.union_total(["gender"]).node_weights) == dict(
            direct.node_weights
        )
        assert dict(store.union_total(["gender"]).edge_weights) == dict(
            direct.edge_weights
        )

    def test_multiple_tracked_sets(self, paper_graph):
        store = IncrementalStore(
            paper_graph, [("gender",), ("publications",)]
        )
        extended = store.append(make_update())
        for attrs in (["gender"], ["publications"]):
            direct = aggregate(extended, attrs, distinct=False)
            assert dict(store.union_total(attrs).node_weights) == dict(
                direct.node_weights
            )

    def test_timepoint_access(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        store.append(make_update())
        point = store.timepoint_aggregate(["gender"], 3)
        direct = aggregate(store.graph, ["gender"], distinct=False, times=["t3"])
        assert dict(point.node_weights) == dict(direct.node_weights)

    def test_untracked_rejected(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        with pytest.raises(KeyError):
            store.union_total(["publications"])

    def test_duplicate_tracked_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            IncrementalStore(paper_graph, [("gender",), ("gender",)])

    def test_graph_property_tracks_appends(self, paper_graph):
        store = IncrementalStore(paper_graph, [("gender",)])
        assert store.graph is paper_graph
        extended = store.append(make_update())
        assert store.graph is extended
