"""Tests for derived (structure-computed) attributes."""

import pytest

from repro.core import (
    aggregate,
    degree_class,
    with_degree_attribute,
    with_derived_attribute,
)


class TestWithDerivedAttribute:
    def test_computed_where_present(self, paper_graph):
        extended = with_derived_attribute(
            paper_graph, "tick", lambda g, node, time: f"{node}@{time}"
        )
        assert extended.attribute_value("u1", "tick", "t0") == "u1@t0"
        assert extended.attribute_value("u1", "tick", "t2") is None

    def test_existing_attributes_preserved(self, paper_graph):
        extended = with_derived_attribute(
            paper_graph, "tick", lambda g, n, t: 1
        )
        assert extended.attribute_value("u1", "publications", "t0") == 3
        assert extended.attribute_value("u1", "gender") == "m"

    def test_name_collision_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            with_derived_attribute(paper_graph, "gender", lambda g, n, t: 1)

    def test_original_untouched(self, paper_graph):
        with_derived_attribute(paper_graph, "tick", lambda g, n, t: 1)
        assert "tick" not in paper_graph.attribute_names

    def test_usable_in_aggregation(self, paper_graph):
        extended = with_derived_attribute(
            paper_graph, "parity",
            lambda g, n, t: g.attribute_value(n, "publications", t) % 2,
        )
        agg = aggregate(extended, ["parity"], times=["t0"])
        # t0 publications: 3, 1, 1, 2 -> odd 3, even 1.
        assert agg.node_weight((1,)) == 3
        assert agg.node_weight((0,)) == 1


class TestDegreeClass:
    def test_default_buckets(self):
        assert degree_class(0) == "0"
        assert degree_class(1) == "1-2"
        assert degree_class(2) == "1-2"
        assert degree_class(3) == "3-9"
        assert degree_class(9) == "3-9"
        assert degree_class(10) == "10+"
        assert degree_class(99) == "10+"

    def test_custom_buckets(self):
        assert degree_class(4, boundaries=(1, 5)) == "1-4"
        assert degree_class(5, boundaries=(1, 5)) == "5+"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            degree_class(-1)


class TestWithDegreeAttribute:
    def test_total_degree_t0(self, paper_graph):
        extended = with_degree_attribute(paper_graph)
        # t0 edges: (u1,u2), (u2,u3), (u1,u4) -> u1 deg 2, u2 deg 2,
        # u3 deg 1, u4 deg 1.
        assert extended.attribute_value("u1", "degree", "t0") == 2
        assert extended.attribute_value("u2", "degree", "t0") == 2
        assert extended.attribute_value("u3", "degree", "t0") == 1

    def test_out_vs_in(self, paper_graph):
        out = with_degree_attribute(paper_graph, direction="out")
        incoming = with_degree_attribute(paper_graph, direction="in")
        assert out.attribute_value("u1", "degree", "t0") == 2
        assert incoming.attribute_value("u1", "degree", "t0") == 0
        assert incoming.attribute_value("u2", "degree", "t0") == 1

    def test_bad_direction(self, paper_graph):
        with pytest.raises(ValueError):
            with_degree_attribute(paper_graph, direction="sideways")

    def test_classes(self, paper_graph):
        extended = with_degree_attribute(
            paper_graph, name="dclass", classes=(1, 2)
        )
        assert extended.attribute_value("u1", "dclass", "t0") == "2+"
        assert extended.attribute_value("u3", "dclass", "t0") == "1-1"

    def test_topological_aggregation(self, small_dblp):
        """The Graph-OLAP 'topological dimension' workflow: group the
        collaboration graph by degree class and gender."""
        extended = with_degree_attribute(
            small_dblp, name="dclass", classes=(1, 3, 10)
        )
        year = extended.timeline.labels[-1]
        agg = aggregate(extended, ["gender", "dclass"], times=[year])
        assert agg.total_node_weight() == small_dblp.n_nodes_at(year)
        # Most authors have few collaborations per year.
        low = sum(
            w for key, w in agg.node_weights.items() if key[1] in ("1-2", "3-9")
        )
        assert low > agg.total_node_weight() / 2
