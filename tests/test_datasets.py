"""Tests for the dataset generators: calibration, determinism, invariants."""

import numpy as np
import pytest

from repro.datasets import (
    DBLP_EDGE_COUNTS,
    DBLP_NODE_COUNTS,
    DBLP_YEARS,
    MOVIELENS_EDGE_COUNTS,
    MOVIELENS_MONTHS,
    MOVIELENS_NODE_COUNTS,
    EvolvingGraphConfig,
    StaticAttributeSpec,
    VaryingAttributeSpec,
    dblp_config,
    generate_dblp,
    generate_evolving_graph,
    generate_movielens,
    movielens_config,
)
from repro.datasets.synthetic import hash_uniform


class TestDblpCalibration:
    def test_timeline_matches_table3(self, small_dblp):
        assert small_dblp.timeline.labels == DBLP_YEARS

    def test_node_counts_follow_scaled_table3(self, small_dblp):
        config = dblp_config(scale=0.02)
        for year, target in zip(DBLP_YEARS, config.node_targets):
            assert small_dblp.n_nodes_at(year) == target

    def test_edge_counts_follow_scaled_table3(self, small_dblp):
        config = dblp_config(scale=0.02)
        for year, target in zip(DBLP_YEARS, config.edge_targets):
            assert small_dblp.n_edges_at(year) == target

    def test_full_scale_targets_equal_table3(self):
        config = dblp_config(scale=1.0)
        assert config.node_targets == DBLP_NODE_COUNTS
        assert config.edge_targets == DBLP_EDGE_COUNTS

    def test_attributes(self, small_dblp):
        assert small_dblp.static_attribute_names == ("gender",)
        assert small_dblp.varying_attribute_names == ("publications",)

    def test_gender_domain(self, small_dblp):
        genders = {
            small_dblp.attribute_value(n, "gender") for n in small_dblp.nodes
        }
        assert genders == {"m", "f"}

    def test_female_minority(self, small_dblp):
        values = [
            small_dblp.attribute_value(n, "gender") for n in small_dblp.nodes
        ]
        share = values.count("f") / len(values)
        assert 0.1 < share < 0.35

    def test_publications_positive_where_present(self, small_dblp):
        pubs = small_dblp.varying_attrs["publications"]
        presence = small_dblp.node_presence
        for node in list(small_dblp.nodes)[:50]:
            for t, flag in zip(small_dblp.timeline.labels, presence.row(node)):
                value = pubs.cell(node, t)
                if flag:
                    assert isinstance(value, int) and value >= 1
                else:
                    assert value is None

    def test_determinism(self):
        a = generate_dblp(scale=0.01)
        b = generate_dblp(scale=0.01)
        assert a == b

    def test_seed_changes_output(self):
        a = generate_dblp(scale=0.01, seed=1)
        b = generate_dblp(scale=0.01, seed=2)
        assert a != b


class TestMovielensCalibration:
    def test_timeline(self, small_movielens):
        assert small_movielens.timeline.labels == MOVIELENS_MONTHS

    def test_counts_follow_scaled_table4(self, small_movielens):
        config = movielens_config(scale=0.03)
        for month, n_target, m_target in zip(
            MOVIELENS_MONTHS, config.node_targets, config.edge_targets
        ):
            assert small_movielens.n_nodes_at(month) == n_target
            # Edge targets are capped by the number of possible ordered
            # pairs at tiny scales.
            n = small_movielens.n_nodes_at(month)
            assert small_movielens.n_edges_at(month) == min(
                m_target, n * (n - 1)
            )

    def test_full_scale_targets_equal_table4(self):
        config = movielens_config(scale=1.0)
        assert config.node_targets == MOVIELENS_NODE_COUNTS
        assert config.edge_targets == MOVIELENS_EDGE_COUNTS

    def test_august_is_the_peak(self, small_movielens):
        sizes = {t: small_movielens.n_edges_at(t) for t in MOVIELENS_MONTHS}
        assert max(sizes, key=sizes.get) == "Aug"

    def test_attributes(self, small_movielens):
        assert small_movielens.static_attribute_names == (
            "gender", "age", "occupation",
        )
        assert small_movielens.varying_attribute_names == ("rating",)

    def test_occupation_domain_size(self):
        config = movielens_config()
        occupation = next(
            s for s in config.static_attrs if s.name == "occupation"
        )
        assert len(occupation.values) == 21

    def test_age_domain_size(self):
        config = movielens_config()
        age = next(s for s in config.static_attrs if s.name == "age")
        assert len(age.values) == 6

    def test_rating_range(self, small_movielens):
        rating = small_movielens.varying_attrs["rating"]
        values = [v for v in rating.values.ravel() if v is not None]
        assert values
        assert all(1.0 <= v <= 5.0 for v in values)


class TestEvolvingGraphEngine:
    def test_invariants_hold(self, tiny_graph):
        """Edges are only active when both endpoints are (the invariant
        generate_evolving_graph promises without validation)."""
        node_rows = {
            n: row.astype(bool)
            for n, row in tiny_graph.node_presence.iter_rows()
        }
        for (u, v), row in tiny_graph.edge_presence.iter_rows():
            active = np.asarray(row, dtype=bool)
            assert not (active & ~node_rows[u]).any()
            assert not (active & ~node_rows[v]).any()

    def test_no_self_loops(self, tiny_graph):
        assert all(u != v for u, v in tiny_graph.edges)

    def test_node_targets_validated(self):
        with pytest.raises(ValueError):
            EvolvingGraphConfig(times=(0, 1), node_targets=(5,), edge_targets=(1, 1))

    def test_edge_targets_validated(self):
        with pytest.raises(ValueError):
            EvolvingGraphConfig(times=(0, 1), node_targets=(5, 5), edge_targets=(1,))

    def test_survival_range_validated(self):
        with pytest.raises(ValueError):
            EvolvingGraphConfig(
                times=(0,), node_targets=(5,), edge_targets=(1,),
                node_survival=1.5,
            )

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            EvolvingGraphConfig(times=(0,), node_targets=(0,), edge_targets=(0,))

    def test_scaled_preserves_structure(self):
        config = dblp_config(scale=1.0)
        scaled = config.scaled(0.1)
        assert scaled.node_survival == config.node_survival
        assert scaled.persistence == config.persistence
        assert scaled.node_targets[0] == round(config.node_targets[0] * 0.1)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            dblp_config().scaled(0)

    def test_edge_repeat_produces_stability(self):
        config = EvolvingGraphConfig(
            times=(0, 1), node_targets=(30, 30), edge_targets=(60, 60),
            node_survival=1.0, edge_repeat=0.5, seed=5,
        )
        graph = generate_evolving_graph(config)
        both = graph.edge_presence.all_mask([0, 1]).sum()
        assert both >= 20  # about half the edges repeat

    def test_no_edge_repeat_no_forced_stability(self):
        config = EvolvingGraphConfig(
            times=(0, 1), node_targets=(50, 50), edge_targets=(60, 60),
            node_survival=1.0, edge_repeat=0.0, seed=5,
        )
        graph = generate_evolving_graph(config)
        both = graph.edge_presence.all_mask([0, 1]).sum()
        assert both < 10  # only chance collisions

    def test_static_spec_probabilities(self):
        rng = np.random.default_rng(0)
        spec = StaticAttributeSpec("x", ("a", "b"), (1.0, 0.0))
        values = spec.sample(rng, 100)
        assert set(values) == {"a"}

    def test_varying_spec_receives_node_ids(self):
        seen = {}

        def sampler(rng, node_ids, t):
            seen[t] = node_ids.copy()
            return np.zeros(len(node_ids), dtype=object)

        config = EvolvingGraphConfig(
            times=(0, 1), node_targets=(5, 5), edge_targets=(2, 2),
            varying_attrs=(VaryingAttributeSpec("v", sampler),), seed=1,
        )
        generate_evolving_graph(config)
        assert set(seen) == {0, 1}
        assert all(len(ids) == 5 for ids in seen.values())

    def test_hash_uniform_deterministic(self):
        ids = np.arange(10)
        assert (hash_uniform(ids) == hash_uniform(ids)).all()
        assert ((0 <= hash_uniform(ids)) & (hash_uniform(ids) < 1)).all()

    def test_persistence_biases_survival(self):
        base = dict(
            times=tuple(range(6)),
            node_targets=(100,) * 6,
            edge_targets=(50,) * 6,
            node_survival=0.5,
            node_return=0.0,
            seed=9,
        )
        flat = generate_evolving_graph(EvolvingGraphConfig(**base))
        biased = generate_evolving_graph(
            EvolvingGraphConfig(**base, persistence=6.0)
        )

        def survivors_every_time(graph):
            return int(graph.node_presence.all_mask().sum())

        assert survivors_every_time(biased) > survivors_every_time(flat)
