"""Tests for experiment-driver internals not covered by the smoke suite."""

import pytest

pytestmark = pytest.mark.slow

from repro.bench.experiments import (
    ExperimentSeries,
    _interval_spans,
    _strict_span_limit,
)
from repro.core import TemporalGraphBuilder


def graph_with_common_edge_span(span: int, total: int = 4):
    """A graph whose longest anchored common-edge span is exactly ``span``."""
    times = [f"t{i}" for i in range(total)]
    builder = TemporalGraphBuilder(times, static=["g"])
    builder.add_node("a", {"g": "x"})
    builder.add_node("b", {"g": "x"})
    for t in times:
        builder.set_node_presence("a", t)
        builder.set_node_presence("b", t)
    builder.add_edge("a", "b", times[:span])
    # A second edge that never repeats keeps later points non-empty.
    builder.add_node("c", {"g": "x"})
    builder.set_node_presence("c", times[-1])
    builder.add_edge("a", "c", [times[-1]])
    return builder.build()


class TestStrictSpanLimit:
    @pytest.mark.parametrize("span", [1, 2, 3])
    def test_exact_limit(self, span):
        graph = graph_with_common_edge_span(span)
        assert _strict_span_limit(graph) == span

    def test_full_timeline(self):
        graph = graph_with_common_edge_span(4)
        assert _strict_span_limit(graph) == 4

    def test_paper_shape_on_dblp(self, small_dblp):
        limit = _strict_span_limit(small_dblp)
        assert 1 <= limit <= len(small_dblp.timeline)


class TestIntervalSpans:
    def test_anchored_prefixes(self, paper_graph):
        spans = _interval_spans(paper_graph)
        assert spans == [("t0",), ("t0", "t1"), ("t0", "t1", "t2")]


class TestExperimentSeries:
    def test_add_appends(self):
        series = ExperimentSeries("demo", "x", [1, 2])
        series.add("s", 0.5)
        series.add("s", 0.7)
        assert series.series["s"] == [0.5, 0.7]

    def test_value_name_default(self):
        series = ExperimentSeries("demo", "x", [])
        assert series.value_name == "time (s)"
