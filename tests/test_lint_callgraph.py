"""Tests for the cross-module symbol table and call-graph builder.

A fixture mini-package — laid out on disk like the real tree — exercises
import resolution (absolute, aliased, package-relative), re-export
canonicalization through ``__init__``, method/nested-function qualnames,
call cycles, and the dynamic-call fallback.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.callgraph import Program, build_program
from repro.lint.config import config_from_mapping
from repro.lint.engine import load_modules

DEFAULT_CONFIG = config_from_mapping({})


def build_fixture(tmp_path: Path, files: dict[str, str]) -> Program:
    """Write ``files`` under ``tmp_path`` and build the program view."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    modules, failures = load_modules([tmp_path], DEFAULT_CONFIG, root=tmp_path)
    assert failures == []
    return build_program(modules)


MINI_PACKAGE = {
    "src/repro/mini/__init__.py": """
        from .alpha import entry, helper

        __all__ = ["entry", "helper"]
    """,
    "src/repro/mini/alpha.py": """
        from . import beta
        from .beta import shared as borrowed

        __all__ = ["entry", "helper"]

        _REGISTRY = {}
        LIMIT = 10

        def entry(x):
            return beta.shared(x) + helper(x)

        def helper(x):
            return borrowed(x)

        class Engine:
            def run(self, x):
                return self.step(x)

            def step(self, x):
                return entry(x)

        def outer(x):
            def inner(y):
                return y + 1
            return inner(x)
    """,
    "src/repro/mini/beta.py": """
        import os
        import numpy as np

        __all__ = ["shared", "ping"]

        def shared(x):
            return x * 2

        def ping(x):
            # Mutual recursion with alpha: a cross-module cycle.
            from .alpha import entry
            return entry(x)

        def dyn(handlers, x):
            return handlers["k"](x)
    """,
}


def test_symbol_table_records_functions_classes_globals(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    symbols = program.symbols["repro.mini.alpha"]
    assert symbols.functions["entry"] == "repro.mini.alpha.entry"
    assert "run" in symbols.classes["Engine"]
    assert symbols.globals["_REGISTRY"].mutable
    assert not symbols.globals["LIMIT"].mutable


def test_relative_imports_resolve_against_the_package(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    imports = program.symbols["repro.mini.alpha"].imports
    assert imports["beta"] == "repro.mini.beta"
    assert imports["borrowed"] == "repro.mini.beta.shared"


def test_cross_module_calls_resolve_to_defining_module(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    entry = program.functions["repro.mini.alpha.entry"]
    callees = {site.callee for site in entry.calls}
    assert callees == {"repro.mini.beta.shared", "repro.mini.alpha.helper"}


def test_aliased_from_import_resolves(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    helper = program.functions["repro.mini.alpha.helper"]
    assert [site.callee for site in helper.calls] == ["repro.mini.beta.shared"]


def test_reexport_canonicalizes_through_init(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    # repro.mini.entry (the __init__ re-export) canonicalizes to alpha.
    resolved = program.resolve_dotted("repro.mini", "entry")
    assert resolved == "repro.mini.alpha.entry"


def test_method_qualnames_and_self_resolution(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    run = program.functions["repro.mini.alpha.Engine.run"]
    assert run.is_method and run.class_name == "Engine"
    assert [site.callee for site in run.calls] == [
        "repro.mini.alpha.Engine.step"
    ]


def test_nested_function_qualname_and_call_edge(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    outer = program.functions["repro.mini.alpha.outer"]
    assert outer.nested == ["repro.mini.alpha.outer.<locals>.inner"]
    inner = program.functions["repro.mini.alpha.outer.<locals>.inner"]
    assert inner.is_nested
    # The call to `inner` from outer's own body resolves to the nested def.
    assert [site.callee for site in outer.calls] == [
        "repro.mini.alpha.outer.<locals>.inner"
    ]


def test_cycles_do_not_break_the_builder(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    ping = program.functions["repro.mini.beta.ping"]
    # `entry` is imported inside the function body; function-scope imports
    # are recorded at module level by the conservative walker, so the
    # mutual edge resolves.
    assert "repro.mini.alpha.entry" in {site.callee for site in ping.calls}
    entry_callers = {
        info.qualname for info, _ in program.callers_of("repro.mini.alpha.entry")
    }
    assert "repro.mini.beta.ping" in entry_callers
    assert "repro.mini.alpha.Engine.step" in entry_callers


def test_dynamic_calls_stay_unresolved(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    dyn = program.functions["repro.mini.beta.dyn"]
    assert [site.callee for site in dyn.calls] == [None]
    assert dyn.calls[0].raw == "<dynamic>"


def test_external_imports_keep_their_dotted_path(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    assert program.resolve_dotted("repro.mini.beta", "os.environ.get") == (
        "os.environ.get"
    )
    assert program.resolve_dotted("repro.mini.beta", "np.zeros") == (
        "numpy.zeros"
    )


def test_thread_local_globals_are_marked(tmp_path: Path) -> None:
    program = build_fixture(
        tmp_path,
        {
            "src/repro/tl.py": """
                import threading

                __all__ = []

                _STATE = threading.local()
                _PLAIN = []
            """,
        },
    )
    symbols = program.symbols["repro.tl"]
    assert symbols.globals["_STATE"].thread_local
    assert not symbols.globals["_PLAIN"].thread_local
    assert symbols.globals["_PLAIN"].mutable


def test_unknown_names_resolve_to_none(tmp_path: Path) -> None:
    program = build_fixture(tmp_path, MINI_PACKAGE)
    assert program.resolve_dotted("repro.mini.alpha", "nowhere") is None
    assert program.resolve_dotted("no.such.module", "entry") is None
    # Attribute access through a data global is dynamic, not resolvable.
    assert program.resolve_dotted("repro.mini.alpha", "_REGISTRY.get") is None
