"""Tests for the public test-utility package itself."""

import pytest
from hypothesis import given, settings

from repro.core import aggregate
from repro.diagnostics import check_graph
from repro.errors import UnknownLabelError, ValidationError
from repro.testing import (
    GraphSpec,
    assert_same_aggregate,
    assert_same_graph,
    graph_from_maps,
    graph_to_maps,
    random_temporal_graph,
    temporal_graphs,
)


@settings(max_examples=40, deadline=None)
@given(temporal_graphs())
def test_strategy_graphs_satisfy_invariants(graph):
    """Every generated graph passes construction validation (implicit)
    and the diagnostics audit reports no errors."""
    findings = check_graph(graph)
    assert not [f for f in findings if f.severity == "error"]


@settings(max_examples=40, deadline=None)
@given(temporal_graphs(min_times=3, max_times=3, min_nodes=4))
def test_strategy_respects_bounds(graph):
    assert len(graph.timeline) == 3
    assert graph.n_nodes >= 4


@settings(max_examples=20, deadline=None)
@given(temporal_graphs())
def test_strategy_attribute_schema(graph):
    assert graph.static_attribute_names == ("gender",)
    assert graph.varying_attribute_names == ("level",)


class TestAssertSameAggregate:
    def test_passes_on_identical(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], times=["t0"])
        b = aggregate(paper_graph, ["gender"], times=["t0"])
        assert_same_aggregate(a, b)

    def test_fails_on_weight_difference(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], times=["t0"])
        b = aggregate(paper_graph, ["gender"], times=["t1"])
        with pytest.raises(AssertionError):
            assert_same_aggregate(a, b)

    def test_fails_on_mode_difference(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], distinct=True)
        b = aggregate(paper_graph, ["gender"], distinct=False)
        with pytest.raises(AssertionError):
            assert_same_aggregate(a, b)


class TestGraphFromMapsTaxonomy:
    """Inconsistent inputs raise typed repro.errors, never bare asserts."""

    def test_minimal_graph_builds(self):
        graph = graph_from_maps(["t0"], {"a": ["t0"]})
        assert graph.nodes == ("a",)
        assert graph.node_times("a") == ("t0",)

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValidationError):
            graph_from_maps([], {})

    def test_presence_at_unknown_time_rejected(self):
        with pytest.raises(UnknownLabelError):
            graph_from_maps(["t0"], {"a": ["t9"]})

    def test_edge_presence_at_unknown_time_rejected(self):
        with pytest.raises(UnknownLabelError):
            graph_from_maps(
                ["t0"],
                {"a": ["t0"], "b": ["t0"]},
                edge_times={("a", "b"): ["t9"]},
            )

    def test_static_for_unknown_node_rejected(self):
        with pytest.raises(UnknownLabelError):
            graph_from_maps(["t0"], {"a": ["t0"]}, static={"zz": {"g": "m"}})

    def test_varying_for_unknown_node_rejected(self):
        with pytest.raises(UnknownLabelError):
            graph_from_maps(
                ["t0"], {"a": ["t0"]}, varying={"zz": {"level": {"t0": 1}}}
            )

    def test_varying_value_where_node_absent_rejected(self):
        # The inconsistent presence/attribute frame case.
        with pytest.raises(ValidationError):
            graph_from_maps(
                ["t0", "t1"],
                {"a": ["t0"]},
                varying={"a": {"level": {"t1": 2}}},
            )

    def test_dangling_edge_rejected_by_default(self):
        with pytest.raises(ValidationError):
            graph_from_maps(
                ["t0"], {"a": ["t0"]}, edge_times={("a", "ghost"): ["t0"]}
            )

    def test_dangling_edge_allowed_when_asked(self):
        graph = graph_from_maps(
            ["t0"],
            {"a": ["t0"]},
            edge_times={("a", "ghost"): ["t0"]},
            allow_dangling=True,
        )
        assert ("a", "ghost") in graph.edges

    def test_round_trip_with_random_graph(self, test_seed):
        graph = random_temporal_graph(GraphSpec(), seed=test_seed)
        rebuilt = graph_from_maps(**graph_to_maps(graph))
        assert_same_graph(rebuilt, graph)
