"""Tests for the public test-utility module itself."""

import pytest
from hypothesis import given, settings

from repro.core import aggregate
from repro.diagnostics import check_graph
from repro.testing import assert_same_aggregate, temporal_graphs


@settings(max_examples=40, deadline=None)
@given(temporal_graphs())
def test_strategy_graphs_satisfy_invariants(graph):
    """Every generated graph passes construction validation (implicit)
    and the diagnostics audit reports no errors."""
    findings = check_graph(graph)
    assert not [f for f in findings if f.severity == "error"]


@settings(max_examples=40, deadline=None)
@given(temporal_graphs(min_times=3, max_times=3, min_nodes=4))
def test_strategy_respects_bounds(graph):
    assert len(graph.timeline) == 3
    assert graph.n_nodes >= 4


@settings(max_examples=20, deadline=None)
@given(temporal_graphs())
def test_strategy_attribute_schema(graph):
    assert graph.static_attribute_names == ("gender",)
    assert graph.varying_attribute_names == ("level",)


class TestAssertSameAggregate:
    def test_passes_on_identical(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], times=["t0"])
        b = aggregate(paper_graph, ["gender"], times=["t0"])
        assert_same_aggregate(a, b)

    def test_fails_on_weight_difference(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], times=["t0"])
        b = aggregate(paper_graph, ["gender"], times=["t1"])
        with pytest.raises(AssertionError):
            assert_same_aggregate(a, b)

    def test_fails_on_mode_difference(self, paper_graph):
        a = aggregate(paper_graph, ["gender"], distinct=True)
        b = aggregate(paper_graph, ["gender"], distinct=False)
        with pytest.raises(AssertionError):
            assert_same_aggregate(a, b)
