"""Tests for event time series and the simple detectors."""

import pytest

from repro.analysis import (
    EventSeries,
    event_series,
    largest_shift,
    zscore_anomalies,
)
from repro.exploration import EntityKind, EventType


class TestEventSeries:
    def test_paper_graph_growth(self, paper_graph):
        series = event_series(paper_graph, EventType.GROWTH)
        assert series.steps == (("t0", "t1"), ("t1", "t2"))
        assert series.counts == (1, 2)

    def test_key_filter(self, paper_graph):
        series = event_series(
            paper_graph, EventType.GROWTH,
            attributes=["gender"], key=(("f",), ("f",)),
        )
        assert series.counts == (1, 0)

    def test_node_entity(self, paper_graph):
        series = event_series(
            paper_graph, EventType.SHRINKAGE, entity=EntityKind.NODES
        )
        assert series.counts == (1, 1)

    def test_to_table(self, paper_graph):
        series = event_series(paper_graph, EventType.GROWTH)
        text = series.to_table()
        assert "t0 -> t1" in text and "growth events" in text

    def test_len(self, paper_graph):
        assert len(event_series(paper_graph, EventType.GROWTH)) == 2


class TestLargestShift:
    def test_movielens_spike(self, small_movielens):
        series = event_series(small_movielens, EventType.GROWTH)
        index, delta = largest_shift(series)
        # The biggest change surrounds the August spike.
        months = [step[1] for step in series.steps]
        assert months[index] in ("Aug", "Sep")
        assert delta != 0

    def test_manual_series(self):
        series = EventSeries(
            EventType.GROWTH, EntityKind.EDGES,
            ((0, 1), (1, 2), (2, 3)), (5, 50, 48),
        )
        assert largest_shift(series) == (1, 45)

    def test_negative_shift(self):
        series = EventSeries(
            EventType.GROWTH, EntityKind.EDGES,
            ((0, 1), (1, 2)), (50, 5),
        )
        assert largest_shift(series) == (1, -45)

    def test_too_short(self, paper_graph):
        series = EventSeries(
            EventType.GROWTH, EntityKind.EDGES, ((0, 1),), (3,)
        )
        with pytest.raises(ValueError):
            largest_shift(series)


class TestZscoreAnomalies:
    def test_spike_detected(self):
        series = EventSeries(
            EventType.GROWTH, EntityKind.EDGES,
            tuple((i, i + 1) for i in range(6)),
            (10, 11, 9, 10, 60, 10),
        )
        anomalies = zscore_anomalies(series, threshold=1.5)
        assert [i for i, _ in anomalies] == [4]
        assert anomalies[0][1] > 1.5

    def test_constant_series_has_none(self):
        series = EventSeries(
            EventType.GROWTH, EntityKind.EDGES,
            ((0, 1), (1, 2)), (5, 5),
        )
        assert zscore_anomalies(series) == []

    def test_empty_series(self):
        series = EventSeries(EventType.GROWTH, EntityKind.EDGES, (), ())
        assert zscore_anomalies(series) == []

    def test_threshold_validation(self, paper_graph):
        series = event_series(paper_graph, EventType.GROWTH)
        with pytest.raises(ValueError):
            zscore_anomalies(series, threshold=0)

    def test_movielens_august(self, small_movielens):
        series = event_series(small_movielens, EventType.GROWTH)
        anomalies = zscore_anomalies(series, threshold=1.2)
        hot_steps = {series.steps[i] for i, _ in anomalies}
        assert any("Aug" in step for step in hot_steps)
