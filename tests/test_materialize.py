"""Tests for partial materialization (Section 4.3)."""

from types import SimpleNamespace

import pytest

from repro.core import aggregate, union
from repro.errors import MaterializationError, UnknownLabelError
from repro.materialize import IncrementalStore, MaterializedStore


@pytest.fixture()
def store(small_dblp):
    return MaterializedStore(small_dblp)


class TestCache:
    def test_miss_then_hit(self, store, small_dblp):
        time = small_dblp.timeline.labels[0]
        store.timepoint_aggregate(["gender"], time)
        assert store.stats.misses == 1
        store.timepoint_aggregate(["gender"], time)
        assert store.stats.hits == 1
        assert len(store) == 1

    def test_distinct_flag_is_part_of_key(self, store, small_dblp):
        time = small_dblp.timeline.labels[0]
        store.timepoint_aggregate(["gender"], time, distinct=True)
        store.timepoint_aggregate(["gender"], time, distinct=False)
        assert store.stats.misses == 2

    def test_attribute_set_is_part_of_key(self, store, small_dblp):
        time = small_dblp.timeline.labels[0]
        store.timepoint_aggregate(["gender"], time)
        store.timepoint_aggregate(["publications"], time)
        assert store.stats.misses == 2

    def test_precompute_fills_cache(self, store, small_dblp):
        store.precompute(["gender"])
        assert len(store) == len(small_dblp.timeline)

    def test_precompute_subset_of_times(self, store, small_dblp):
        times = small_dblp.timeline.labels[:3]
        store.precompute(["gender"], times=times)
        assert len(store) == 3

    def test_cached_equals_direct(self, store, small_dblp):
        time = small_dblp.timeline.labels[2]
        cached = store.timepoint_aggregate(["gender"], time, distinct=True)
        direct = aggregate(small_dblp, ["gender"], distinct=True, times=[time])
        assert dict(cached.node_weights) == dict(direct.node_weights)


class TestTDistributivity:
    def test_union_all_matches_scratch_static(self, store, small_dblp):
        times = small_dblp.timeline.labels[:5]
        derived = store.union_aggregate(["gender"], times)
        direct = aggregate(union(small_dblp, times), ["gender"], distinct=False)
        assert dict(derived.node_weights) == dict(direct.node_weights)
        assert dict(derived.edge_weights) == dict(direct.edge_weights)

    def test_union_all_matches_scratch_varying(self, store, small_dblp):
        times = small_dblp.timeline.labels[:4]
        derived = store.union_aggregate(["publications"], times)
        direct = aggregate(
            union(small_dblp, times), ["publications"], distinct=False
        )
        assert dict(derived.node_weights) == dict(direct.node_weights)
        assert dict(derived.edge_weights) == dict(direct.edge_weights)

    def test_union_all_full_timeline(self, store, small_dblp):
        times = small_dblp.timeline.labels
        derived = store.union_aggregate(["gender"], times)
        direct = aggregate(union(small_dblp, times), ["gender"], distinct=False)
        assert dict(derived.edge_weights) == dict(direct.edge_weights)

    def test_single_point(self, store, small_dblp):
        time = small_dblp.timeline.labels[0]
        derived = store.union_aggregate(["gender"], [time])
        direct = aggregate(small_dblp, ["gender"], distinct=False, times=[time])
        assert dict(derived.node_weights) == dict(direct.node_weights)

    def test_empty_times_rejected(self, store):
        with pytest.raises(ValueError):
            store.union_aggregate(["gender"], [])

    def test_duplicate_labels_not_summed_twice(self, store, small_dblp):
        """Regression: ``times`` is normalized through ``ordered_times``
        — the union operator treats its input as a set, so a repeated
        label must not contribute its per-point aggregate twice."""
        times = small_dblp.timeline.labels[:3]
        doubled = list(times) + list(times)
        derived = store.union_aggregate(["gender"], doubled)
        direct = aggregate(union(small_dblp, times), ["gender"], distinct=False)
        assert dict(derived.node_weights) == dict(direct.node_weights)
        assert dict(derived.edge_weights) == dict(direct.edge_weights)

    def test_out_of_order_labels_normalized(self, store, small_dblp):
        times = list(small_dblp.timeline.labels[:4])
        derived = store.union_aggregate(["gender"], times[::-1])
        direct = aggregate(union(small_dblp, times), ["gender"], distinct=False)
        assert dict(derived.node_weights) == dict(direct.node_weights)

    def test_unknown_label_rejected(self, store):
        with pytest.raises(UnknownLabelError):
            store.union_aggregate(["gender"], ["not-a-time-point"])

    def test_distinct_is_not_t_distributive(self, small_dblp):
        """Summing per-point DIST aggregates overcounts vs. the true
        union DIST aggregate — the reason Section 4.3 excludes it."""
        times = small_dblp.timeline.labels[:5]
        summed = None
        for time in times:
            point = aggregate(small_dblp, ["gender"], distinct=True, times=[time])
            forged = type(point)(
                point.attributes, point.node_weights, point.edge_weights,
                distinct=False,
            )
            summed = forged if summed is None else summed + forged
        true = aggregate(union(small_dblp, times), ["gender"], distinct=True)
        assert summed.total_node_weight() > true.total_node_weight()


class TestDDistributivity:
    def test_rollup_matches_scratch_dist(self, store, small_dblp):
        time = small_dblp.timeline.labels[1]
        derived = store.rollup_aggregate(
            ["gender", "publications"], ["gender"], time, distinct=True
        )
        direct = aggregate(small_dblp, ["gender"], distinct=True, times=[time])
        assert dict(derived.node_weights) == dict(direct.node_weights)
        assert dict(derived.edge_weights) == dict(direct.edge_weights)

    def test_rollup_matches_scratch_all(self, store, small_dblp):
        time = small_dblp.timeline.labels[1]
        derived = store.rollup_aggregate(
            ["gender", "publications"], ["publications"], time, distinct=False
        )
        direct = aggregate(
            small_dblp, ["publications"], distinct=False, times=[time]
        )
        assert dict(derived.node_weights) == dict(direct.node_weights)

    def test_rollup_movielens_pairs(self, small_movielens):
        store = MaterializedStore(small_movielens)
        time = small_movielens.timeline.labels[0]
        all_attrs = ["gender", "age", "occupation", "rating"]
        for subset in (["gender"], ["gender", "age"], ["rating", "occupation"]):
            derived = store.rollup_aggregate(all_attrs, subset, time)
            direct = aggregate(small_movielens, subset, times=[time])
            assert dict(derived.node_weights) == dict(direct.node_weights)
            assert dict(derived.edge_weights) == dict(direct.edge_weights)

    def test_rollup_counts_derivations(self, store, small_dblp):
        time = small_dblp.timeline.labels[0]
        store.rollup_aggregate(["gender", "publications"], ["gender"], time)
        assert store.stats.derived == 1

    def test_rollup_reuses_superset_cache(self, store, small_dblp):
        time = small_dblp.timeline.labels[0]
        store.rollup_aggregate(["gender", "publications"], ["gender"], time)
        store.rollup_aggregate(
            ["gender", "publications"], ["publications"], time
        )
        assert store.stats.misses == 1
        assert store.stats.hits == 1


class TestIncrementalStoreEmptyTimeline:
    def test_empty_timeline_raises_from_taxonomy(self):
        """Regression: a graph-like object with an empty timeline must
        fail with a MaterializationError, not a bare IndexError on
        ``points[0]``.  A real TemporalGraph cannot have an empty
        timeline (Timeline rejects it), so a duck-typed stub stands in
        for graph substrates that may not enforce that."""
        stub = SimpleNamespace(timeline=SimpleNamespace(labels=()))
        with pytest.raises(MaterializationError, match="empty timeline"):
            IncrementalStore(stub, [["gender"]])

    def test_error_is_a_value_error(self):
        stub = SimpleNamespace(timeline=SimpleNamespace(labels=()))
        with pytest.raises(ValueError):
            IncrementalStore(stub, [])

class TestIncrementalTimepointAccess:
    @pytest.fixture()
    def inc_store(self, paper_graph):
        return IncrementalStore(paper_graph, [("gender",)])

    def test_negative_index_counts_from_end(self, inc_store, paper_graph):
        """Documented semantics: the index is a Python sequence index
        into the timeline, so ``-1`` is the latest point."""
        last = inc_store.timepoint_aggregate(["gender"], -1)
        direct = aggregate(
            paper_graph, ["gender"], distinct=False, times=["t2"]
        )
        assert dict(last.node_weights) == dict(direct.node_weights)
        assert dict(
            inc_store.timepoint_aggregate(["gender"], -3).node_weights
        ) == dict(
            inc_store.timepoint_aggregate(["gender"], 0).node_weights
        )

    @pytest.mark.parametrize("index", [3, -4, 99])
    def test_out_of_range_raises_from_taxonomy(self, inc_store, index):
        """Regression: an out-of-range index used to escape as a bare
        IndexError from the list access."""
        with pytest.raises(MaterializationError, match="out of range"):
            inc_store.timepoint_aggregate(["gender"], index)

    def test_error_names_the_valid_range(self, inc_store):
        with pytest.raises(MaterializationError, match=r"-3\.\.2"):
            inc_store.timepoint_aggregate(["gender"], 3)

    def test_versioned_store_exposed(self, inc_store, paper_graph):
        versioned = inc_store.versioned
        assert versioned.version == 0
        assert versioned.graph is paper_graph
