"""Tests for networkx interoperability."""

import networkx as nx
import pytest

from repro.core import aggregate
from repro.interop import aggregate_to_networkx, from_snapshots, to_networkx


class TestToNetworkx:
    def test_snapshot_membership(self, paper_graph):
        snapshot = to_networkx(paper_graph, ["t0"])
        assert set(snapshot.nodes) == {"u1", "u2", "u3", "u4"}
        assert snapshot.has_edge("u1", "u2")
        assert not snapshot.has_edge("u4", "u2")  # only from t1 on

    def test_window_membership(self, paper_graph):
        window = to_networkx(paper_graph, ["t0", "t1"])
        assert window.number_of_nodes() == 4
        assert window.has_edge("u4", "u2")

    def test_default_is_full_timeline(self, paper_graph):
        full = to_networkx(paper_graph)
        assert full.number_of_nodes() == 5
        assert full.number_of_edges() == 6

    def test_node_attributes(self, paper_graph):
        snapshot = to_networkx(paper_graph, ["t0"])
        assert snapshot.nodes["u2"]["gender"] == "f"
        assert snapshot.nodes["u2"]["publications"] == {"t0": 1}
        assert snapshot.nodes["u2"]["times"] == ("t0",)

    def test_edge_attributes(self, paper_graph):
        window = to_networkx(paper_graph, ["t0", "t1"])
        assert window.edges["u1", "u2"]["times"] == ("t0", "t1")

    def test_directedness(self, paper_graph):
        snapshot = to_networkx(paper_graph, ["t0"])
        assert isinstance(snapshot, nx.DiGraph)
        assert snapshot.has_edge("u2", "u3")
        assert not snapshot.has_edge("u3", "u2")


class TestFromSnapshots:
    def test_roundtrip_presence(self, paper_graph):
        snapshots = {
            t: to_networkx(paper_graph, [t]) for t in paper_graph.timeline.labels
        }
        rebuilt = from_snapshots(
            snapshots, static=["gender"], varying=[]
        )
        assert rebuilt.size_table() == paper_graph.size_table()
        assert set(rebuilt.edges) == set(paper_graph.edges)

    def test_static_attributes_survive(self, paper_graph):
        snapshots = {
            t: to_networkx(paper_graph, [t]) for t in paper_graph.timeline.labels
        }
        rebuilt = from_snapshots(snapshots, static=["gender"])
        for node in rebuilt.nodes:
            assert rebuilt.attribute_value(node, "gender") == (
                paper_graph.attribute_value(node, "gender")
            )

    def test_varying_attributes(self):
        g0 = nx.DiGraph()
        g0.add_node("a", score=1)
        g0.add_node("b", score=2)
        g0.add_edge("a", "b")
        g1 = nx.DiGraph()
        g1.add_node("a", score=5)
        rebuilt = from_snapshots({"d0": g0, "d1": g1}, varying=["score"])
        assert rebuilt.attribute_value("a", "score", "d0") == 1
        assert rebuilt.attribute_value("a", "score", "d1") == 5
        assert rebuilt.attribute_value("b", "score", "d1") is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_snapshots({})


class TestAggregateToNetworkx:
    def test_weights(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        out = aggregate_to_networkx(agg)
        assert out.nodes[("f",)]["weight"] == 3
        assert out.edges[("m",), ("f",)]["weight"] == 2

    def test_supports_networkx_algorithms(self, paper_graph):
        agg = aggregate(paper_graph, ["gender"], times=["t0"])
        out = aggregate_to_networkx(agg)
        # A plain networkx algorithm should run on the result.
        assert nx.number_weakly_connected_components(out) >= 1

    def test_dangling_aggregate_edges_add_nodes(self):
        from repro.core import AggregateGraph

        agg = AggregateGraph(
            ("g",), {}, {((("x",)), (("y",))): 4}, distinct=True
        )
        out = aggregate_to_networkx(agg)
        assert out.nodes[("x",)]["weight"] == 0
        assert out.edges[("x",), ("y",)]["weight"] == 4
