"""Setup shim: lets `pip install -e .` work on minimal environments
(no `wheel` package) via the legacy editable-install code path."""

from setuptools import setup

setup()
