"""Disease-propagation monitoring: the paper's school-contact scenario.

Section 1 motivates GraphTempo with face-to-face proximity networks in
schools: contacts concentrate within a class and grade, so temporal
aggregation by (class, grade) reveals how risky the contact structure is
and whether mitigation (targeted class closure) worked.

This example uses :func:`repro.datasets.generate_contacts`: an 8-day
school contact network where the 2nd grade is closed on days 5-6.
GraphTempo is then used to:

1. aggregate contacts by grade and check homophily (within-grade edge
   weight vs cross-grade weight);
2. measure shrinkage of contacts at the closure — the paper's proposed
   way to evaluate a mitigation measure;
3. detect stable cross-grade contacts that persist despite the closure,
   indicating further measures are needed.

Run with ``python examples/epidemic_contacts.py``.
"""

from repro import aggregate, union
from repro.analysis import exploration_report, homophily
from repro.datasets import ContactNetworkConfig, generate_contacts
from repro.exploration import EntityKind, EventType, ExtendSide, Goal


def main() -> None:
    graph = generate_contacts(
        ContactNetworkConfig(
            days=8,
            pupils_per_class=20,
            contacts_per_day=600,
            closed_grade="2nd",
            closure_days=(4, 5),  # days 5 and 6
        )
    )
    print("School contact network:", graph)

    print("\n--- 1. Homophily: aggregate contacts by grade (week 1) ---")
    week1 = union(graph, graph.timeline.labels[:4])
    by_grade = aggregate(week1, ["grade"], distinct=False)
    share = homophily(by_grade)
    print(f"within-grade contact share: {share:.0%} "
          "(random mixing over 3 grades would be ~33%)")
    by_class = aggregate(week1, ["grade", "klass"], distinct=False)
    print(f"within-class contact share: {homophily(by_class):.0%}")

    print("\n--- 2. Did the closure remove pupils from circulation? ---")
    # Contacts churn daily regardless of mitigation, so the closure
    # signal lives in *node* shrinkage: pupils disappearing from the
    # contact graph.
    report = exploration_report(
        graph,
        EventType.SHRINKAGE,
        Goal.MINIMAL,
        ExtendSide.OLD,
        thresholds=[10, 25, 40],
        entity=EntityKind.NODES,
        title="shrinkage of pupils in circulation",
    )
    print(report.text)
    best = report.results[10].best()
    if best is not None:
        labels = graph.timeline.labels
        print(
            f"largest pupil shrinkage: {best.count} pupils left circulation "
            f"between {labels[best.old.interval.stop]} and "
            f"{labels[best.new.interval.start]} — the closure onset."
        )

    print("\n--- 3. Stable contacts that survived the closure ---")
    report = exploration_report(
        graph,
        EventType.STABILITY,
        Goal.MAXIMAL,
        ExtendSide.NEW,
        thresholds=[50, 150],
        title="stability of contacts across day pairs",
    )
    print(report.text)

    print("\n--- 4. Which grade pairs kept growing during the closure? ---")
    from repro.exploration import explore_groups

    sweep = explore_groups(
        graph, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
        k=30, attributes=["grade"],
    )
    for key in sweep.interesting_groups[:4]:
        print(f"  {key[0][0]} -> {key[1][0]}: best pair {sweep.best_pair(key)}")
    print(
        "\nStable and still-growing contacts during the closure window "
        "indicate residual transmission paths — the paper's argument for "
        "monitoring stability, not just shrinkage, when evaluating "
        "mitigations."
    )


if __name__ == "__main__":
    main()
