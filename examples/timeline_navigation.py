"""Navigating a long timeline: zoom, drill, and anomaly detection.

The paper's conclusions plan an interactive framework that helps users
"navigate large graphs and detect intervals and attribute groups of
interest".  This example runs that workflow on the 21-year DBLP-like
graph:

1. look at the event **time series** and its anomalies;
2. **zoom out** to half-decades and explore cheaply;
3. **drill** into the interesting coarse windows at year granularity;
4. sweep all **attribute groups** inside the hottest window.

Run with ``python examples/timeline_navigation.py [scale]``.
"""

import sys

from repro.analysis import event_series, largest_shift, zscore_anomalies
from repro.core import TimeHierarchy
from repro.datasets import generate_dblp
from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    drill_explore,
    explore_groups,
    suggest_threshold,
)


def main(scale: float = 0.05) -> None:
    graph = generate_dblp(scale=scale)
    years = graph.timeline.labels

    print("--- 1. the growth signal over time ---")
    series = event_series(graph, EventType.GROWTH)
    print(series.to_table())
    index, delta = largest_shift(series)
    old, new = series.steps[index]
    print(f"\nlargest shift: {delta:+d} new edges at {old} -> {new}")
    for i, z in zscore_anomalies(series, threshold=1.5):
        step = series.steps[i]
        print(f"anomalous step: {step[0]} -> {step[1]} (z = {z:+.2f})")

    print("\n--- 2 + 3. zoom out to half-decades, then drill ---")
    hierarchy = TimeHierarchy.regular(years, width=5)
    k = suggest_threshold(graph, EventType.GROWTH, "max") // 2
    result = drill_explore(
        graph, hierarchy,
        EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, k=max(1, k),
    )
    print(
        f"coarse pass over {len(hierarchy)} units: "
        f"{len(result.coarse.pairs)} hits in "
        f"{result.coarse.evaluations} evaluations"
    )
    for window, fine in result.fine.items():
        print(f"  drill into {window[0]}..{window[1]}: "
              f"{len(fine.pairs)} year-level pairs "
              f"({fine.evaluations} evaluations)")
    print(f"total result(G) evaluations: {result.total_evaluations}")

    print("\n--- 4. which collaboration groups drive the hottest window? ---")
    sweep = explore_groups(
        graph, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
        k=max(1, k // 4), attributes=["gender"],
    )
    for key in sweep.interesting_groups:
        best = sweep.best_pair(key)
        print(f"  {key[0][0]} -> {key[1][0]}: best pair {best}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
