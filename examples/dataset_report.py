"""Dataset reports and persistence round-trip (Tables 3/4).

Prints the per-time-point size tables for both synthetic datasets and
demonstrates saving/loading a temporal graph as a directory of CSVs.

Run with ``python examples/dataset_report.py [scale]``.
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import dataset_report
from repro.datasets import generate_dblp, generate_movielens, load_graph, save_graph


def main(scale: float = 0.05) -> None:
    dblp = generate_dblp(scale=scale)
    print(dataset_report(dblp, f"DBLP-like @ scale {scale} (Table 3 shape)"))
    print()
    movielens = generate_movielens(scale=scale)
    print(
        dataset_report(
            movielens, f"MovieLens-like @ scale {scale} (Table 4 shape)"
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "dblp"
        save_graph(dblp, target)
        files = sorted(p.name for p in target.iterdir())
        print(f"\nsaved to {target}: {files}")
        loaded = load_graph(
            target,
            node_parser=int,
            time_parser=int,
            value_parsers={"publications": int},
        )
        same_sizes = loaded.size_table() == dblp.size_table()
        print(f"reloaded graph matches the original size table: {same_sizes}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
