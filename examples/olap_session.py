"""Interactive OLAP-style analysis with the session facade.

Demonstrates the exploration framework the paper's conclusion plans:
one :class:`~repro.GraphTempoSession` over the MovieLens-like graph,
with a month->season time hierarchy, materialized views chosen by the
greedy policy, and a chain of roll-up / drill-down / slice / dice /
zoom-out steps answering questions about the co-rating population.

Run with ``python examples/olap_session.py [scale]``.
"""

import sys

from repro import GraphTempoSession
from repro.analysis import homophily
from repro.core import TimeHierarchy
from repro.datasets import generate_movielens
from repro.olap import drill_across, greedy_view_selection


def main(scale: float = 0.05) -> None:
    graph = generate_movielens(scale=scale)
    hierarchy = TimeHierarchy(
        {"summer": ["May", "Jun", "Jul", "Aug"], "fall": ["Sep", "Oct"]}
    )
    session = GraphTempoSession(graph, hierarchy)
    print(session.report())

    print("\n--- choose views to materialize (greedy, budget 4) ---")
    selection = greedy_view_selection(
        graph, graph.attribute_names, budget=4
    )
    for view in selection.selected:
        print(f"  materialize {view}")
        session.cube.materialize(view, distinct=False)

    print("\n--- who rates together? gender x age over the summer ---")
    by_gender_age = session.cube.cuboid(
        ["gender", "age"], times=["summer"], distinct=False
    )
    nodes, _ = by_gender_age.to_tables()
    print(nodes.to_string(max_rows=6))
    print(f"cube served this via: {session.cube.stats}")

    print("\n--- roll up to gender, then slice the female population ---")
    by_gender = session.cube.rollup(
        ["gender", "age"], remove="age", times=["summer"]
    )
    print(f"gender weights: {dict(by_gender.node_weights)}")
    female_by_age = session.cube.slice(
        ["gender", "age"], "gender", "f", times=["summer"]
    )
    print(f"female users by age group: {dict(female_by_age.node_weights)}")

    print("\n--- drill across: summer vs fall gender mix ---")
    fall = session.cube.cuboid(["gender"], times=["fall"], distinct=False)
    summer = session.cube.cuboid(["gender"], times=["summer"], distinct=False)
    for key, (s, f) in sorted(drill_across(summer, fall).items()):
        print(f"  {key}: summer {s} appearances -> fall {f}")

    print("\n--- homophily of gendered co-rating, per month ---")
    for month in graph.timeline.labels:
        agg = session.aggregate(["gender"], window=[month], distinct=False)
        print(f"  {month}: {homophily(agg):.3f}")

    print("\n--- zoom out to seasons and re-ask ---")
    zoomed = session.zoom_out("union")
    print(zoomed.report())
    agg = zoomed.aggregate(["gender"], distinct=False)
    print(f"seasonal gender weights: {dict(agg.node_weights)}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
