"""Collaboration-network evolution: the paper's DBLP scenario (Fig. 12).

The introduction motivates GraphTempo with questions like "did the share
of stable female collaborations grow after a diversity action?".  This
example answers them on the synthetic DBLP-like graph:

1. restrict to high-activity author appearances (#publications > 4);
2. build the aggregate evolution graph of 2010 w.r.t. the 2000s and of
   2020 w.r.t. the 2010s;
3. report stability / growth / shrinkage per gender, and compare the two
   decades.

Run with ``python examples/dblp_evolution.py [scale]``.
"""

import sys

from repro.analysis import evolution_report
from repro.datasets import generate_dblp


def main(scale: float = 0.05) -> None:
    print(f"Generating DBLP-like graph at scale {scale}...")
    graph = generate_dblp(scale=scale)
    years = graph.timeline.labels

    first_decade = years[:10]          # 2000..2009
    print("\n=== Figure 12a: evolution of 2010 w.r.t. the 2000s ===\n")
    report_a = evolution_report(
        graph, first_decade, [years[10]], ["gender"], min_publications=4
    )
    print(report_a.text)

    second_decade = years[10:20]       # 2010..2019
    print("\n=== Figure 12b: evolution of 2020 w.r.t. the 2010s ===\n")
    report_b = evolution_report(
        graph, second_decade, [years[20]], ["gender"], min_publications=4
    )
    print(report_b.text)

    print("\n=== Decade-over-decade comparison ===\n")
    for gender in ("m", "f"):
        early = report_a.aggregate.node((gender,))
        late = report_b.aggregate.node((gender,))
        print(
            f"gender={gender}: stable authors {early.stability} -> {late.stability} "
            f"(stability ratio {early.ratio('stability'):.0%} -> "
            f"{late.ratio('stability'):.0%})"
        )
    ff_early = report_a.aggregate.edge(("f",), ("f",))
    ff_late = report_b.aggregate.edge(("f",), ("f",))
    print(
        f"female-female collaborations: St/Gr/Shr "
        f"{ff_early.stability}/{ff_early.growth}/{ff_early.shrinkage} -> "
        f"{ff_late.stability}/{ff_late.growth}/{ff_late.shrinkage}"
    )
    print(
        "\nAs in the paper, edges of highly active authors show far more "
        "turnover (growth + shrinkage) than stability, while the author "
        "population itself is largely stable."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
