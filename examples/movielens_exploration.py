"""Interval-pair exploration: the paper's MovieLens scenario (Fig. 13).

Finds, for female-female co-rating edges:

* the **maximal** interval pairs with at least k *stable* edges
  (intersection semantics, I-Explore);
* the **minimal** interval pairs with at least k *new* edges
  (union semantics, U-Explore);
* the **minimal** interval pairs with at least k *deleted* edges.

Thresholds follow Section 3.5: ``w_th`` is taken from the aggregates of
consecutive month pairs and scaled into a ladder ``k1 <= k2 <= k3``.

Run with ``python examples/movielens_exploration.py [scale]``.
"""

import sys

from repro.analysis import exploration_report
from repro.datasets import generate_movielens
from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    suggest_threshold,
    threshold_ladder,
)

FEMALE_FEMALE = (("f",), ("f",))


def main(scale: float = 0.05) -> None:
    print(f"Generating MovieLens-like graph at scale {scale}...")
    graph = generate_movielens(scale=scale)

    print("\n=== Figure 13a: stability (maximal pairs, intersection) ===\n")
    w_th = suggest_threshold(
        graph, EventType.STABILITY, mode="max",
        attributes=["gender"], key=FEMALE_FEMALE,
    )
    ladder = sorted(set(threshold_ladder(w_th, (1 / 86, 0.5, 1.0))))
    report = exploration_report(
        graph, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW, ladder,
        attributes=["gender"], key=FEMALE_FEMALE,
        title=f"stability of f-f co-ratings, w_th={w_th}",
    )
    print(report.text)

    print("\n=== Figure 13b: growth (minimal pairs, union) ===\n")
    w_th = suggest_threshold(
        graph, EventType.GROWTH, mode="max",
        attributes=["gender"], key=FEMALE_FEMALE,
    )
    ladder = sorted(set(threshold_ladder(w_th, (1 / 12, 0.5, 1.0))))
    report = exploration_report(
        graph, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW, ladder,
        attributes=["gender"], key=FEMALE_FEMALE,
        title=f"growth of f-f co-ratings, w_th={w_th}",
    )
    print(report.text)

    print("\n=== Figure 13c: shrinkage (minimal pairs, union) ===\n")
    w_th = suggest_threshold(
        graph, EventType.SHRINKAGE, mode="min",
        attributes=["gender"], key=FEMALE_FEMALE,
    )
    ladder = sorted(set(threshold_ladder(w_th, (1.0, 2.0, 5.0))))
    report = exploration_report(
        graph, EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD, ladder,
        attributes=["gender"], key=FEMALE_FEMALE,
        title=f"shrinkage of f-f co-ratings, w_th={w_th}",
    )
    print(report.text)
    print(
        "\nAs in the paper, the August spike dominates: the largest growth "
        "lands on August and the edge set shows high month-to-month turnover."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
