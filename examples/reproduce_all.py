"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment suite — Tables 3/4 and Figures 5-14 — on the
synthetic datasets and prints each artifact's series/rows.  This is the
script behind EXPERIMENTS.md; at the default scale (0.1) it takes a few
minutes, most of it in the MovieLens time-varying sweeps.

Run with ``python examples/reproduce_all.py [scale]``.
"""

import sys
import time

from repro.analysis import dataset_report, evolution_report, exploration_report
from repro.bench import (
    fig5_timepoint_aggregation,
    fig6_union_aggregation,
    fig7_intersection_aggregation,
    fig8_difference_old_new,
    fig9_difference_new_old,
    fig10_materialized_union_speedup,
    fig11_attribute_rollup_speedup,
    format_series,
)
from repro.datasets import generate_dblp, generate_movielens
from repro.exploration import (
    EventType,
    ExtendSide,
    Goal,
    suggest_threshold,
    threshold_ladder,
)

FF = (("f",), ("f",))


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def show(series) -> None:
    print(
        format_series(
            series.series,
            series.x_labels,
            x_name=series.x_name,
            value_name=series.value_name,
            title=series.name,
        )
    )


def main(scale: float = 0.1) -> None:
    started = time.time()
    print(f"Running all experiments at scale {scale}")

    banner("Tables 3 / 4 — dataset sizes")
    dblp = generate_dblp(scale=scale)
    movielens = generate_movielens(scale=scale)
    print(dataset_report(dblp, "DBLP"))
    print()
    print(dataset_report(movielens, "MovieLens"))

    banner("Figure 5 — time-point aggregation per attribute")
    show(fig5_timepoint_aggregation(
        dblp, [["gender"], ["publications"], ["gender", "publications"]]
    ))
    print()
    show(fig5_timepoint_aggregation(
        movielens,
        [["gender"], ["rating"], ["gender", "rating"],
         ["gender", "age", "occupation", "rating"]],
    ))

    banner("Figure 6 — union + aggregation (DIST/ALL)")
    show(fig6_union_aggregation(dblp, [["gender"], ["publications"]]))
    print()
    show(fig6_union_aggregation(movielens, [["gender"], ["rating"]]))

    banner("Figure 7 — intersection + aggregation (DIST)")
    show(fig7_intersection_aggregation(
        dblp, [["gender"], ["publications"]]
    ))
    print()
    show(fig7_intersection_aggregation(movielens, [["gender"], ["rating"]]))

    banner("Figure 8 — difference T_old(∪) - T_new + aggregation")
    show(fig8_difference_old_new(dblp, [["gender"], ["publications"]]))
    print()
    show(fig8_difference_old_new(movielens, [["gender"], ["rating"]],
                                 distinct_modes=(True,)))

    banner("Figure 9 — difference T_new - T_old(∪) + aggregation")
    show(fig9_difference_new_old(dblp, [["gender"], ["publications"]]))
    print()
    show(fig9_difference_new_old(movielens, [["gender"], ["rating"]],
                                 distinct_modes=(True,)))

    banner("Figure 10 — speedup of materialized union(ALL)")
    show(fig10_materialized_union_speedup(
        dblp, [["gender"], ["publications"]], repeats=3
    ))

    banner("Figure 11 — speedup of attribute roll-up per time point")
    show(fig11_attribute_rollup_speedup(
        dblp, ["gender", "publications"], [["gender"], ["publications"]],
        repeats=3,
    ))
    print()
    show(fig11_attribute_rollup_speedup(
        movielens,
        ["gender", "age", "occupation", "rating"],
        [["gender"], ["rating"], ["gender", "age"],
         ["gender", "age", "rating"]],
        repeats=3,
    ))

    banner("Figure 12 — evolution of high-activity DBLP authors (gender)")
    years = dblp.timeline.labels
    print(evolution_report(dblp, years[:10], [years[10]], ["gender"],
                           min_publications=4).text)
    print()
    print(evolution_report(dblp, years[10:20], [years[20]], ["gender"],
                           min_publications=4).text)

    banner("Figure 13 — MovieLens exploration (female-female co-ratings)")
    _exploration_block(movielens)

    banner("Figure 14 — DBLP exploration (female-female collaborations)")
    _exploration_block(dblp)

    print(f"\nTotal wall time: {time.time() - started:.1f}s")


def _exploration_block(graph) -> None:
    w_st = suggest_threshold(graph, EventType.STABILITY, "max",
                             attributes=["gender"], key=FF)
    print(exploration_report(
        graph, EventType.STABILITY, Goal.MAXIMAL, ExtendSide.NEW,
        sorted(set(threshold_ladder(w_st, (0.05, 0.5, 1.0)))),
        attributes=["gender"], key=FF,
        title=f"(a) stability, maximal pairs, w_th={w_st}",
    ).text)
    print()
    w_gr = suggest_threshold(graph, EventType.GROWTH, "max",
                             attributes=["gender"], key=FF)
    print(exploration_report(
        graph, EventType.GROWTH, Goal.MINIMAL, ExtendSide.NEW,
        sorted(set(threshold_ladder(w_gr, (0.1, 0.5, 1.0)))),
        attributes=["gender"], key=FF,
        title=f"(b) growth, minimal pairs, w_th={w_gr}",
    ).text)
    print()
    w_sh = suggest_threshold(graph, EventType.SHRINKAGE, "min",
                             attributes=["gender"], key=FF)
    print(exploration_report(
        graph, EventType.SHRINKAGE, Goal.MINIMAL, ExtendSide.OLD,
        sorted(set(threshold_ladder(w_sh, (1.0, 2.0, 5.0)))),
        attributes=["gender"], key=FF,
        title=f"(c) shrinkage, minimal pairs, w_th={w_sh}",
    ).text)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
