"""Bringing your own data: build, audit, persist and query a graph.

The adoption path for a downstream user with their own evolving graph:

1. build a :class:`~repro.core.TemporalGraph` from per-day records with
   the builder (or :func:`repro.interop.from_snapshots` for networkx
   data);
2. audit it with :mod:`repro.diagnostics`;
3. persist it as CSVs and reload it;
4. analyse it with the query language and the session facade.

The toy data here is a five-person messaging network over four days
with a static ``team`` attribute and a time-varying ``workload`` level.

Run with ``python examples/custom_dataset.py``.
"""

import tempfile
from pathlib import Path

from repro import GraphTempoSession
from repro.core import TemporalGraphBuilder
from repro.datasets import load_graph, save_graph
from repro.diagnostics import check_graph, format_findings
from repro.query import run_query

DAYS = ("mon", "tue", "wed", "thu")

#: (person, team) -> workload per day (None = absent that day).
PEOPLE = {
    "ana": ("core", [2, 3, 3, 1]),
    "bo": ("core", [1, 1, None, 1]),
    "cal": ("infra", [3, None, 2, 2]),
    "dee": ("infra", [2, 2, 2, None]),
    "eve": ("core", [None, 1, 2, 3]),
}

#: (sender, receiver) -> active days.
MESSAGES = {
    ("ana", "bo"): ["mon", "tue"],
    ("ana", "cal"): ["mon", "wed"],
    ("bo", "dee"): ["mon", "tue"],
    ("cal", "dee"): ["mon", "wed"],
    ("eve", "ana"): ["tue", "wed"],
    ("eve", "bo"): ["tue", "thu"],
    ("ana", "eve"): ["thu"],
}


def build() -> "object":
    builder = TemporalGraphBuilder(DAYS, static=["team"], varying=["workload"])
    for person, (team, workloads) in PEOPLE.items():
        builder.add_node(person, {"team": team})
        for day, load in zip(DAYS, workloads):
            if load is not None:
                builder.set_node_presence(person, day, workload=load)
    for (sender, receiver), days in MESSAGES.items():
        builder.add_edge(sender, receiver, days)
    return builder.build()


def main() -> None:
    graph = build()
    print("built:", graph)

    print("\n--- 1. audit ---")
    print(format_findings(check_graph(graph)))

    print("\n--- 2. persist and reload ---")
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "messaging"
        save_graph(graph, target)
        reloaded = load_graph(target, value_parsers={"workload": int})
        print(f"reloaded matches: {reloaded.size_table() == graph.size_table()}")

    print("\n--- 3. query it ---")
    for text in (
        "aggregate team all over union [mon..thu]",
        "aggregate team, workload over union [mon], [tue]",
        "evolution [mon..tue] -> [wed..thu] by team",
        "explore growth k 2 on edges by team key core -> core",
    ):
        print(f"\n> {text}")
        result = run_query(graph, text)
        if hasattr(result, "to_tables"):
            nodes, _ = result.to_tables()
            print(nodes.to_string())
        elif hasattr(result, "node_weights"):
            for key, weights in sorted(result.node_weights.items()):
                print(f"  {key}: {weights}")
        else:
            print(f"  {result}")

    print("\n--- 4. or drive it through a session ---")
    session = GraphTempoSession(graph)
    cross_team = session.aggregate(["team"], window=("mon", "thu"),
                                   distinct=False)
    print(f"message volume by team pair: {dict(cross_team.edge_weights)}")


if __name__ == "__main__":
    main()
