"""Streaming maintenance: a collaboration graph that grows year by year.

Simulates the production setting the materialization story targets: the
DBLP-like graph arrives one year at a time, an
:class:`~repro.materialize.IncrementalStore` keeps per-year aggregates
and running union totals current in O(new year), and each tick the
group explorer re-checks which collaboration groups crossed an alert
threshold.

Run with ``python examples/streaming_updates.py``.
"""

from repro.core import SnapshotUpdate, aggregate, union
from repro.datasets import generate_dblp
from repro.exploration import EventType, ExtendSide, Goal, explore_groups
from repro.materialize import IncrementalStore


def snapshot_from_year(graph, year) -> SnapshotUpdate:
    """Re-package one year of an existing graph as a snapshot update."""
    nodes = {}
    for node in graph.nodes_at(year):
        nodes[node] = {
            "publications": graph.attribute_value(node, "publications", year)
        }
    static = {
        node: {"gender": graph.attribute_value(node, "gender")}
        for node in nodes
    }
    edges = list(graph.edges_at(year))
    return SnapshotUpdate(time=year, nodes=nodes, static=static, edges=edges)


def main() -> None:
    # The "full history" we will replay, year by year.
    history = generate_dblp(scale=0.03)
    years = history.timeline.labels
    warmup, live = years[:5], years[5:15]

    print(f"warm-up on {warmup[0]}..{warmup[-1]}, then stream {len(live)} years")
    base = union(history, warmup)  # the graph as known after the warm-up
    store = IncrementalStore(base, [("gender",)])

    for year in live:
        store.append(snapshot_from_year(history, year))
        totals = store.union_total(["gender"])
        direct = aggregate(
            union(store.graph, store.graph.timeline.labels),
            ["gender"],
            distinct=False,
        )
        consistent = dict(totals.node_weights) == dict(direct.node_weights)
        print(
            f"{year}: graph now {store.graph.n_nodes} nodes / "
            f"{store.graph.n_edges} edges; running totals "
            f"{dict(totals.node_weights)} (consistent: {consistent})"
        )
        break_alert = explore_groups(
            store.graph,
            EventType.GROWTH,
            Goal.MINIMAL,
            ExtendSide.NEW,
            k=25,
            attributes=["gender"],
        )
        hot = break_alert.interesting_groups[:2]
        if hot:
            print(f"   growth alerts (k=25): {list(hot)}")

    print(
        "\nEach tick aggregated only the new year and summed it into the "
        "running totals (T-distributivity, Section 4.3) — no full "
        "recomputation happened."
    )


if __name__ == "__main__":
    main()
