"""Quickstart: the paper's running example, end to end.

Reproduces the artifacts of Sections 2 and 4 on the Figure 1 graph:

* Table 2 — the labeled storage arrays V, S and A;
* Figure 2 — the union graph on (t0, t1);
* Figure 3 — per-time-point aggregates and the DIST/ALL union aggregates;
* Figure 4 — the evolution graph from t0 to t1 and its aggregation.

Run with ``python examples/quickstart.py``.
"""

from repro import aggregate, aggregate_evolution, evolution, union
from repro.datasets import paper_example


def main() -> None:
    graph = paper_example()
    print("The Figure 1 temporal attributed graph:")
    print(" ", graph)

    print("\nTable 2 — array V (node presence):")
    print(graph.node_presence.to_string())
    print("\nTable 2 — array S (static attribute gender):")
    print(graph.static_attrs.to_string())
    print("\nTable 2 — array A (time-varying attribute #publications):")
    print(graph.varying_attrs["publications"].to_string())

    union_graph = union(graph, ["t0"], ["t1"])
    print(
        f"\nFigure 2 — union graph on (t0, t1): "
        f"{union_graph.n_nodes} nodes, {union_graph.n_edges} edges"
    )

    print("\nFigure 3a-c — aggregates on (gender, publications) per time point:")
    for time in graph.timeline.labels:
        agg = aggregate(graph, ["gender", "publications"], times=[time])
        print(f"  {time}: {dict(agg.node_weights)}")

    dist = aggregate(union_graph, ["gender", "publications"], distinct=True)
    non_dist = aggregate(union_graph, ["gender", "publications"], distinct=False)
    print("\nFigure 3d — DIST aggregate of the union graph:")
    print(f"  node weights: {dict(dist.node_weights)}")
    print("Figure 3e — ALL aggregate of the union graph:")
    print(f"  node weights: {dict(non_dist.node_weights)}")
    print(
        f"  e.g. ('f', 1): DIST={dist.node_weight(('f', 1))} (3 distinct nodes), "
        f"ALL={non_dist.node_weight(('f', 1))} (4 appearances)"
    )

    evo = evolution(graph, ["t0"], ["t1"])
    print(
        f"\nFigure 4a — evolution graph t0 -> t1: "
        f"{evo.n_nodes} nodes, {evo.n_edges} edges"
    )
    for node, kinds in sorted(evo.node_kinds().items()):
        print(f"  node {node}: {sorted(kinds)}")

    evo_agg = aggregate_evolution(graph, ["t0"], ["t1"], ["gender", "publications"])
    print("\nFigure 4b — aggregated evolution graph (stability/growth/shrinkage):")
    for key, weights in sorted(evo_agg.node_weights.items(), key=str):
        print(
            f"  node {key}: St={weights.stability} "
            f"Gr={weights.growth} Shr={weights.shrinkage}"
        )


if __name__ == "__main__":
    main()
