"""The versioned, append-only streaming store.

Writes are snapshot appends; every append produces a *new* immutable
:class:`~repro.core.TemporalGraph` under a monotonically increasing
version id.  Readers :meth:`~StreamingStore.pin` a version and keep
querying it while writers advance — graphs are values, so a pinned
version is consistent forever, the TVA reader model.  Registered
:class:`~repro.streaming.StreamingView`\\ s are delta-extended inside the
append, and invalidation hooks (the cache-invalidation seam session
caches subscribe to) fire after each version is published.

Ingestion is either whole snapshots (:meth:`append_snapshot`) or a flat
per-entity event stream (:meth:`update`), batched per time point by
:func:`~repro.streaming.batch_events`.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..core import TemporalGraph
from ..core.updates import SnapshotUpdate, append_snapshot, split_history
from ..errors import MaterializationError
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span
from .events import StreamEvent, batch_events
from .views import StreamingView

__all__ = ["GraphVersion", "StreamingStore"]


@dataclass(frozen=True)
class GraphVersion:
    """One immutable published version of the growing graph."""

    version: int
    graph: TemporalGraph


class StreamingStore:
    """Append-only ingestion over a growing temporal graph.

    Parameters
    ----------
    graph:
        The initial graph; published as version 0.
    views:
        Delta-maintained views to register up front (each is rebuilt
        over the initial graph, then extended per append).

    Appends are serialized under a lock; reads are lock-free (pinning a
    version is one list access, and versions are immutable).  If a
    view's ``extend`` fails partway through an append, no version is
    published and every view is rolled back by rebuilding over the
    still-current graph, so views never drift from the published state.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        views: Sequence[StreamingView] = (),
    ) -> None:
        if not graph.timeline.labels:
            # Timeline itself rejects empty label sets, but graph-like
            # objects from other substrates may not; fail from the GT003
            # taxonomy instead of a bare IndexError downstream.
            raise MaterializationError(
                "cannot build a streaming store over an empty timeline"
            )
        self._lock = threading.Lock()
        self._versions: list[GraphVersion] = [GraphVersion(0, graph)]
        self._views: list[StreamingView] = []
        self._hooks: list[Callable[[GraphVersion], None]] = []
        for view in views:
            self.register_view(view)

    @classmethod
    def from_history(
        cls,
        graph: TemporalGraph,
        views: Sequence[StreamingView] = (),
    ) -> "StreamingStore":
        """A store built by replaying the graph's own history: the first
        time point seeds version 0 and every later point is one append.

        The resulting graph (and every registered view) must be
        observably identical to the input — the replay identity the
        ``streaming-replay-identity`` fuzz law checks bit-exactly.
        """
        initial, updates = split_history(graph)
        store = cls(initial, views=views)
        for update in updates:
            store.append_snapshot(update)
        return store

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def latest(self) -> GraphVersion:
        """The most recently published version."""
        return self._versions[-1]

    @property
    def graph(self) -> TemporalGraph:
        """The latest version's graph (replaced, never mutated)."""
        return self._versions[-1].graph

    @property
    def version(self) -> int:
        """The latest version id (0 for the initial graph)."""
        return self._versions[-1].version

    def pin(self) -> GraphVersion:
        """The latest version, for a reader to hold while writers
        advance; the pinned graph never changes underneath the reader."""
        return self._versions[-1]

    def at_version(self, version: int) -> GraphVersion:
        """A previously published version by id."""
        if not 0 <= version < len(self._versions):
            raise MaterializationError(
                f"unknown version {version}; published: 0..{self.version}"
            )
        return self._versions[version]

    def history(self) -> tuple[GraphVersion, ...]:
        """Every published version, oldest first."""
        return tuple(self._versions)

    # ------------------------------------------------------------------
    # Views and invalidation hooks
    # ------------------------------------------------------------------

    def register_view(self, view: StreamingView) -> StreamingView:
        """Attach a delta-maintained view (rebuilt over the current
        graph, then extended on every subsequent append)."""
        with self._lock:
            view.rebuild(self.graph)
            self._views.append(view)
        return view

    def on_append(self, hook: Callable[[GraphVersion], None]) -> Callable[[], None]:
        """Subscribe to publications; returns an unsubscribe callable.

        Hooks run after the new version is published (outside the append
        lock, in registration order) — the seam caches use to invalidate
        or refresh themselves per append.
        """
        _, unsubscribe = self.subscribe(hook)
        return unsubscribe

    def subscribe(
        self, hook: Callable[[GraphVersion], None]
    ) -> tuple[GraphVersion, Callable[[], None]]:
        """Register an append hook and return ``(current, unsubscribe)``.

        ``current`` is the version published at the moment of
        registration, read under the append lock — so a subscriber that
        binds its state to ``current`` is guaranteed to see every later
        version through the hook, with no window for an append to slip
        between "read latest" and "start listening".  This is the
        race-free variant of :meth:`on_append` that
        :meth:`repro.olap.TemporalGraphCube.bind_store` and
        :class:`repro.serving.QueryServer` build on.
        """
        with self._lock:
            self._hooks.append(hook)
            current = self._versions[-1]

        def unsubscribe() -> None:
            with self._lock:
                if hook in self._hooks:
                    self._hooks.remove(hook)

        return current, unsubscribe

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def append_snapshot(self, update: SnapshotUpdate) -> GraphVersion:
        """Publish one new version extending the timeline by one point.

        The new graph is built first (a failing update publishes
        nothing), views are delta-extended, and only then is the version
        visible to readers; hooks fire last, outside the lock.
        """
        metrics = get_metrics()
        with trace_span("streaming.append", time=update.time):
            with self._lock:
                base = self._versions[-1]
                graph = append_snapshot(base.graph, update)
                try:
                    for view in self._views:
                        view.extend(graph, update)
                        metrics.inc("streaming.view_updates")
                except Exception:
                    for view in self._views:
                        view.rebuild(base.graph)
                    raise
                published = GraphVersion(base.version + 1, graph)
                self._versions.append(published)
                hooks = tuple(self._hooks)
            metrics.inc("streaming.appends")
            for hook in hooks:
                hook(published)
                metrics.inc("streaming.invalidations")
        return published

    def update(self, events: Iterable[StreamEvent]) -> tuple[GraphVersion, ...]:
        """Ingest a flat event stream: batch per time point (first-seen
        order) and append each batch, returning the published versions."""
        stream = tuple(events)
        batched = batch_events(stream)
        get_metrics().inc("streaming.events", len(stream))
        return tuple(self.append_snapshot(batch) for batch in batched)
