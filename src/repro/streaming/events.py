"""Node/edge events and their batching into snapshot updates.

The ingestion surface of :mod:`repro.streaming` is a flat stream of
per-entity events (one author published, one co-authorship formed) in
the style of openDG's ``from_events``: callers do not have to assemble
whole snapshots themselves.  :func:`batch_events` groups a stream by
time point — first-seen order, so out-of-timeline-order streams fail in
``append_snapshot`` rather than being silently reordered — and merges
the events of each point into one :class:`~repro.core.SnapshotUpdate`.

Events are frozen on construction (like the updates they batch into),
so an event built from a shared mutable mapping replays identically.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any, Union

from ..core.graph import EdgeId, NodeId
from ..core.updates import SnapshotUpdate
from ..errors import ValidationError

__all__ = ["NodeEvent", "EdgeEvent", "StreamEvent", "batch_events"]


@dataclass(frozen=True)
class NodeEvent:
    """One node's presence at one time point.

    ``attrs`` carries the node's time-varying attribute values at the
    point; ``static`` its static attribute values (used on first
    appearance, name-validated always).  Events for the same node at the
    same time merge: later events win per attribute name.
    """

    time: Hashable
    node: NodeId
    attrs: Mapping[str, Any] = field(default_factory=dict)
    static: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attrs", dict(self.attrs))
        object.__setattr__(self, "static", dict(self.static))


@dataclass(frozen=True)
class EdgeEvent:
    """One directed edge's presence at one time point.

    Endpoints not covered by a :class:`NodeEvent` at the same time get a
    bare presence entry (no attribute values) in the batched update, so
    an edge-only stream is still a valid snapshot.
    """

    time: Hashable
    edge: EdgeId
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        source, target = self.edge
        object.__setattr__(self, "edge", (source, target))
        object.__setattr__(self, "attrs", dict(self.attrs))


StreamEvent = Union[NodeEvent, EdgeEvent]


def batch_events(events: Iterable[StreamEvent]) -> tuple[SnapshotUpdate, ...]:
    """Group an event stream into one :class:`SnapshotUpdate` per time.

    Time points keep first-seen order (the order appends will run in);
    within a point, node events merge their attribute mappings (later
    events win per name), edges deduplicate keeping first-seen order,
    and edge endpoints without a node event are added as bare presence
    entries.  Anything that is not a :class:`NodeEvent` or
    :class:`EdgeEvent` raises :class:`~repro.errors.ValidationError`.
    """
    order: list[Hashable] = []
    nodes: dict[Hashable, dict[NodeId, dict[str, Any]]] = {}
    static: dict[Hashable, dict[NodeId, dict[str, Any]]] = {}
    edges: dict[Hashable, dict[EdgeId, None]] = {}
    edge_attrs: dict[Hashable, dict[EdgeId, dict[str, Any]]] = {}
    for event in events:
        if not isinstance(event, (NodeEvent, EdgeEvent)):
            raise ValidationError(
                f"unknown stream event type: {type(event).__name__!r}"
            )
        time = event.time
        if time not in nodes:
            order.append(time)
            nodes[time] = {}
            static[time] = {}
            edges[time] = {}
            edge_attrs[time] = {}
        if isinstance(event, NodeEvent):
            nodes[time].setdefault(event.node, {}).update(event.attrs)
            if event.static:
                static[time].setdefault(event.node, {}).update(event.static)
        else:
            edges[time].setdefault(event.edge, None)
            if event.attrs:
                edge_attrs[time].setdefault(event.edge, {}).update(event.attrs)
    updates = []
    for time in order:
        point_nodes = nodes[time]
        for source, target in edges[time]:
            point_nodes.setdefault(source, {})
            point_nodes.setdefault(target, {})
        updates.append(
            SnapshotUpdate(
                time=time,
                nodes=point_nodes,
                static=static[time],
                edges=tuple(edges[time]),
                edge_attrs=edge_attrs[time],
            )
        )
    return tuple(updates)
