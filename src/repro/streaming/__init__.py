"""Streaming ingestion with versioned reads and delta-maintained views.

The append-only layer under ROADMAP item 1: per-entity events batch
into :class:`~repro.core.SnapshotUpdate`\\ s (:func:`batch_events`),
each append publishes an immutable :class:`GraphVersion` readers can
pin while writers advance (:class:`StreamingStore`), and registered
views — the evolution overlay (:class:`EvolutionView`) and incremental
exploration state (:class:`ExplorationView`) — are extended in O(new
point) per append instead of recomputed.  See ``docs/streaming.md``.
"""

from .events import EdgeEvent, NodeEvent, StreamEvent, batch_events
from .store import GraphVersion, StreamingStore
from .views import EvolutionView, ExplorationView, StreamingView

__all__ = [
    "NodeEvent",
    "EdgeEvent",
    "StreamEvent",
    "batch_events",
    "GraphVersion",
    "StreamingStore",
    "StreamingView",
    "EvolutionView",
    "ExplorationView",
]
