"""Delta-maintained views over a streaming store.

A :class:`StreamingView` is state derived from the store's graph that is
kept current *incrementally*: each snapshot append hands the view the
new graph plus the update that produced it, and the view folds in the
new time point in O(new point) instead of recomputing from scratch.
Two maintenance strategies the base :class:`IncrementalStore` does not
cover live here:

* :class:`EvolutionView` — the evolution overlay (Definition 2.7 /
  Fig. 4b) between a pinned old window and the growing tail of appended
  points.  Appearance sets are per-point unions, so each append scans
  only the appended column and the interval algebra extends the new
  window by one point; weights come from the same helper
  :func:`~repro.core.evolution.aggregate_evolution` uses, so the
  maintained aggregate is bit-identical to a from-scratch one.
* :class:`ExplorationView` — incremental exploration state: the
  qualification mask of the growing new side is extended by exactly one
  OR (union semantics) or AND (intersection semantics) per appended
  point, the same single-column step :class:`ChainEvaluator` performs
  along a semi-lattice chain, preserving the U-/I-Explore pruning
  structure (counts stay monotone along the maintained chain).

Both exploit the append-only shape of the store: earlier presence
columns never change, and entities introduced later are absent from
every earlier column, so masks recorded before an entity existed are
extended exactly by padding with ``False``.

``rebuild(graph)`` reconstructs the full view state from a graph alone
(the store uses it at registration and to roll views back if an append
fails partway), and ``extend(graph, update)`` is the per-append delta
step; for every view here, ``rebuild`` equals the fold of ``extend``
over the appended points — the replay identity the fuzz laws check.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import Any

import numpy as np

from ..core import TemporalGraph
from ..core.evolution import (
    EvolutionAggregate,
    _appearance_sets,
    _weights_from_appearances,
)
from ..core.intervals import Interval
from ..core.operators import ordered_times
from ..core.updates import SnapshotUpdate
from ..errors import ExplorationError, ValidationError
from ..exploration.events import (
    ChainStep,
    EntityKind,
    EventType,
    event_mask_from,
    static_match_mask,
)
from ..exploration.lattice import Semantics, Side

__all__ = ["StreamingView", "EvolutionView", "ExplorationView"]


class StreamingView:
    """The contract a delta-maintained view implements.

    ``rebuild`` must reconstruct the complete state from the graph alone
    and ``extend`` must fold in exactly one appended time point, such
    that rebuilding on a grown graph equals extending point by point.
    """

    def rebuild(self, graph: TemporalGraph) -> None:
        """Reconstruct the view's state from scratch over ``graph``."""
        raise NotImplementedError

    def extend(self, graph: TemporalGraph, update: SnapshotUpdate) -> None:
        """Fold one appended point into the state; ``graph`` is the
        post-append graph and ``update`` the snapshot that produced it."""
        raise NotImplementedError


class EvolutionView(StreamingView):
    """Delta-maintained evolution overlay between a pinned old window
    and the growing window of appended points.

    Parameters
    ----------
    attributes:
        Aggregation attributes (Fig. 4b counts appearances of their
        tuples); at least one is required.
    old_times:
        The pinned old window ``T1``.  ``None`` pins the registration
        graph's whole timeline.

    Each append unions the appended point's ``(entity, tuple)``
    appearance sets into the maintained new-window sets — earlier
    columns never change, so a window's appearance set is exactly the
    union of its per-point sets.  :meth:`current` reduces the maintained
    sets with the same weights helper ``aggregate_evolution`` uses.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        old_times: Sequence[Hashable] | None = None,
    ) -> None:
        if not attributes:
            raise ValidationError(
                "evolution view needs at least one attribute"
            )
        self.attributes = tuple(attributes)
        self._requested_old = tuple(old_times) if old_times is not None else None
        self._initial_labels: frozenset[Hashable] | None = None
        self._graph: TemporalGraph | None = None
        self._old_times: tuple[Hashable, ...] = ()
        self._new_labels: list[Hashable] = []
        self._old_nodes: set[tuple[Any, Any]] = set()
        self._old_edges: set[tuple[Any, Any]] = set()
        self._new_nodes: set[tuple[Any, Any]] = set()
        self._new_edges: set[tuple[Any, Any]] = set()

    def rebuild(self, graph: TemporalGraph) -> None:
        if self._initial_labels is None:
            # First rebuild (view registration): pin the old window and
            # remember which labels predate streaming, so later rebuilds
            # can tell appended points apart from registration-time ones.
            self._initial_labels = frozenset(graph.timeline.labels)
        requested = (
            self._requested_old
            if self._requested_old is not None
            else tuple(t for t in graph.timeline.labels if t in self._initial_labels)
        )
        old = ordered_times(graph, requested)
        if not old:
            raise ValidationError("evolution view requires a non-empty old window")
        self._graph = graph
        self._old_times = old
        node_set, edge_set = _appearance_sets(graph, self.attributes, old)
        self._old_nodes, self._old_edges = node_set, edge_set
        self._new_labels = [
            t for t in graph.timeline.labels if t not in self._initial_labels
        ]
        self._new_nodes = set()
        self._new_edges = set()
        for label in self._new_labels:
            point = ordered_times(graph, [label])
            nodes, edges = _appearance_sets(graph, self.attributes, point)
            self._new_nodes |= nodes
            self._new_edges |= edges

    def extend(self, graph: TemporalGraph, update: SnapshotUpdate) -> None:
        self._graph = graph
        point = ordered_times(graph, [update.time])
        nodes, edges = _appearance_sets(graph, self.attributes, point)
        self._new_nodes |= nodes
        self._new_edges |= edges
        self._new_labels.append(update.time)

    @property
    def old_times(self) -> tuple[Hashable, ...]:
        """The pinned old window ``T1`` (timeline order)."""
        return tuple(self._old_times)

    @property
    def new_times(self) -> tuple[Hashable, ...]:
        """The appended points forming the growing new window ``T2``."""
        return tuple(self._new_labels)

    def current(self) -> EvolutionAggregate:
        """The evolution aggregate between the pinned old window and the
        appended points, reduced from the maintained appearance sets.

        Bit-identical to ``aggregate_evolution(graph, old, appended,
        attributes)`` on the current graph — the delta identity the
        ``streaming-evolution-delta`` fuzz law checks.  Raises
        :class:`~repro.errors.ValidationError` before the first append
        (the new window is still empty).
        """
        if self._graph is None:
            raise ValidationError("evolution view was never rebuilt")
        if not self._new_labels:
            raise ValidationError(
                "evolution view has no appended points yet; "
                "the new window is empty"
            )
        return EvolutionAggregate(
            attributes=self.attributes,
            old_times=self._old_times,
            new_times=ordered_times(self._graph, self._new_labels),
            node_weights=_weights_from_appearances(
                self._old_nodes, self._new_nodes
            ),
            edge_weights=_weights_from_appearances(
                self._old_edges, self._new_edges
            ),
        )


def _padded(mask: np.ndarray, n_rows: int) -> np.ndarray:
    """The mask grown to ``n_rows`` with ``False`` for appended rows.

    Exact, not approximate: ``append_snapshot`` adds new entity rows at
    the end, and a row appended at point ``k`` is absent from every
    column before ``k`` — its from-scratch mask value over any earlier
    window is ``False`` under either semantics.
    """
    if mask.shape[0] == n_rows:
        return mask
    padded = np.zeros(n_rows, dtype=bool)
    padded[: mask.shape[0]] = mask
    return padded


class ExplorationView(StreamingView):
    """Incremental exploration state over the appended tail.

    Watches one event kind between a pinned reference point (the old
    side) and the growing window of appended points (the new side) —
    the streaming analogue of one :meth:`ChainEvaluator.chain` walk with
    ``ExtendSide.NEW``.  Per append, the new side's qualification mask
    is extended by a single OR/AND with the appended presence column,
    and the event count is re-reduced from the two masks; nothing is
    recomputed over the window.  Counts along the maintained chain keep
    the semi-lattice monotonicity U-/I-Explore prune by
    (:meth:`first_reaching`).

    Parameters
    ----------
    event, semantics, entity:
        The event kind counted, the new side's window semantics, and
        whether node or edge events are counted.
    attributes, key:
        As for :class:`~repro.exploration.EventCounter`, but restricted
        to *static* attributes — time-varying tuples would need the
        whole window's values per count, which is exactly the
        recomputation this view exists to avoid.
    reference:
        Timeline index of the pinned reference point; ``None`` pins the
        registration graph's last point.
    """

    def __init__(
        self,
        event: EventType,
        semantics: Semantics = Semantics.UNION,
        entity: EntityKind = EntityKind.EDGES,
        attributes: Sequence[str] = (),
        key: Any = None,
        reference: int | None = None,
    ) -> None:
        if key is not None and not attributes:
            raise ExplorationError("a key filter requires aggregation attributes")
        self.event = event
        self.semantics = semantics
        self.entity = entity
        self.attributes = tuple(attributes)
        self.key = key
        self._requested_reference = reference
        self._reference: int | None = None
        self._old_mask: np.ndarray = np.zeros(0, dtype=bool)
        self._new_mask: np.ndarray | None = None
        self._match: np.ndarray | None = None
        self._steps: list[ChainStep] = []

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _presence(self, graph: TemporalGraph) -> np.ndarray:
        if self.entity is EntityKind.NODES:
            return graph.node_presence.values.astype(bool)
        return graph.edge_presence.values.astype(bool)

    def _entity_labels(self, graph: TemporalGraph) -> tuple[Hashable, ...]:
        if self.entity is EntityKind.NODES:
            return graph.node_presence.row_labels
        return graph.edge_presence.row_labels

    def rebuild(self, graph: TemporalGraph) -> None:
        for name in self.attributes:
            if not graph.is_static(name):
                raise ExplorationError(
                    f"exploration view attribute {name!r} is time-varying; "
                    "only static attributes are delta-maintainable"
                )
        n_times = len(graph.timeline.labels)
        if self._reference is None:
            reference = (
                self._requested_reference
                if self._requested_reference is not None
                else n_times - 1
            )
            if not 0 <= reference < n_times:
                raise ExplorationError(
                    f"view reference {reference} out of range 0..{n_times - 1}"
                )
            self._reference = reference
        presence = self._presence(graph)
        self._old_mask = presence[:, self._reference].copy()
        self._match = (
            static_match_mask(graph, self.entity, self.attributes, self.key)
            if self.key is not None
            else None
        )
        self._new_mask = None
        self._steps = []
        for index in range(self._reference + 1, n_times):
            self._absorb(presence[:, index], index)

    def extend(self, graph: TemporalGraph, update: SnapshotUpdate) -> None:
        labels = self._entity_labels(graph)
        n_rows = len(labels)
        previous_rows = self._old_mask.shape[0]
        self._old_mask = _padded(self._old_mask, n_rows)
        if self._new_mask is not None:
            self._new_mask = _padded(self._new_mask, n_rows)
        if self._match is not None and n_rows > previous_rows:
            # Delta path: resolve static tuples only for the rows this
            # append introduced, never over the whole entity set.
            appended = static_match_mask(
                graph,
                self.entity,
                self.attributes,
                self.key,
                entities=labels[previous_rows:],
            )
            self._match = np.concatenate([self._match, appended])
        index = len(graph.timeline.labels) - 1
        column = self._presence(graph)[:, index]
        self._absorb(column, index)

    def _absorb(self, column: np.ndarray, index: int) -> None:
        """One chain step: extend the new-side mask by ``column``."""
        if self._new_mask is None:
            new_mask = column.copy()
        elif self.semantics is Semantics.UNION:
            new_mask = self._new_mask | column
        else:
            new_mask = self._new_mask & column
        self._new_mask = new_mask
        mask = event_mask_from(self.event, self._old_mask, new_mask)
        if self._match is not None:
            count = int((mask & self._match).sum())
        else:
            count = int(mask.sum())
        assert self._reference is not None
        self._steps.append(
            ChainStep(
                Side.point(self._reference),
                Side(Interval(self._reference + 1, index), self.semantics),
                count,
                mask,
            )
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def reference(self) -> int | None:
        """The pinned reference index (``None`` before first rebuild)."""
        return self._reference

    def steps(self) -> tuple[ChainStep, ...]:
        """Every maintained chain step, oldest first — the same
        ``(old, new, count, mask)`` records ``ChainEvaluator.chain``
        yields for this reference on the current graph (early-step masks
        padded with ``False`` for entities that did not exist yet)."""
        return tuple(self._steps)

    def counts(self) -> tuple[int, ...]:
        """The event count after each append, oldest first."""
        return tuple(step.count for step in self._steps)

    def current_count(self) -> int:
        """The event count between the reference and the full appended
        window; raises before the first append."""
        if not self._steps:
            raise ExplorationError(
                "exploration view has no appended points yet"
            )
        return self._steps[-1].count

    def first_reaching(self, threshold: int) -> int | None:
        """Index of the earliest step whose count meets ``threshold``.

        Under union semantics the maintained counts are monotone along
        the chain for growth/stability events, so once a step reaches
        the threshold every later step does too — the U-Explore pruning
        rule, answered here without evaluating anything new.
        """
        for i, step in enumerate(self._steps):
            if step.count >= threshold:
                return i
        return None
