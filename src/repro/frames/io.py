"""Plain-text persistence for frames and tables.

The public GraphTempo repository ships its datasets as whitespace/comma
separated text files (one presence matrix per entity kind, one file per
attribute).  This module reads and writes that layout so generated
datasets can be saved to disk and reloaded without regeneration.
"""

from __future__ import annotations

import csv
from collections.abc import Callable, Hashable
from pathlib import Path
from typing import Any

import numpy as np

from .labeled_frame import LabeledFrame
from .table import Table
from ..errors import ValidationError

__all__ = [
    "write_frame_csv",
    "read_frame_csv",
    "write_table_csv",
    "read_table_csv",
]

_MISSING = ""


def _encode(value: Any) -> str:
    if value is None:
        return _MISSING
    return str(value)


def write_frame_csv(frame: LabeledFrame, path: str | Path) -> None:
    """Write a frame as CSV: header = ``id`` + column labels, one row per
    row label.  ``None`` cells become empty fields."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id"] + [_encode(c) for c in frame.col_labels])
        for label, values in frame.iter_rows():
            writer.writerow([_encode(label)] + [_encode(v) for v in values])


def read_frame_csv(
    path: str | Path,
    row_parser: Callable[[str], Hashable] = str,
    col_parser: Callable[[str], Hashable] = str,
    value_parser: Callable[[str], Any] = str,
) -> LabeledFrame:
    """Read a frame written by :func:`write_frame_csv`.

    Parsers convert the string fields back to their runtime types (e.g.
    pass ``int`` for year columns and integer presence flags).  Empty
    value fields decode to ``None``.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        col_labels = [col_parser(c) for c in header[1:]]
        row_labels: list[Hashable] = []
        rows: list[list[Any]] = []
        for record in reader:
            row_labels.append(row_parser(record[0]))
            rows.append(
                [None if field == _MISSING else value_parser(field) for field in record[1:]]
            )
    if not rows:
        return LabeledFrame.empty(col_labels)
    for row in rows:
        if len(row) != len(col_labels):
            raise ValidationError(
                f"{path}: row has {len(row)} fields, expected {len(col_labels)}"
            )
    # Build positionally (not via a dict) so duplicate row labels raise
    # DuplicateLabelError instead of silently overwriting each other.
    values = np.empty((len(rows), len(col_labels)), dtype=object)
    for i, row in enumerate(rows):
        for j, value in enumerate(row):
            values[i, j] = value
    return LabeledFrame(row_labels, col_labels, values)


def write_table_csv(table: Table, path: str | Path) -> None:
    """Write a relational table as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(table.columns))
        for row in table.rows:
            writer.writerow([_encode(v) for v in row])


def read_table_csv(
    path: str | Path,
    value_parser: Callable[[str], Any] = str,
) -> Table:
    """Read a table written by :func:`write_table_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        columns = next(reader)
        rows = [
            tuple(None if field == _MISSING else value_parser(field) for field in record)
            for record in reader
        ]
    return Table(columns, rows)
