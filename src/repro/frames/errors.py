"""Exceptions raised by the labeled-array substrate.

The paper's algorithms (Section 4) are written against "labeled arrays":
2-D arrays whose rows are labeled with node/edge identifiers and whose
columns are labeled with time points or attribute names.  This package
implements those arrays; all of its error conditions derive from
:class:`FrameError` so callers can catch substrate failures uniformly,
and :class:`FrameError` itself derives from
:class:`~repro.errors.GraphTempoError`, the root of the project-wide
taxonomy (which re-exports every class below).
"""

from __future__ import annotations

from ..errors import GraphTempoError

__all__ = [
    "FrameError",
    "LabelError",
    "DuplicateLabelError",
    "ShapeError",
    "SchemaError",
]


class FrameError(GraphTempoError):
    """Base class for all labeled-array errors."""


class LabelError(FrameError, KeyError):
    """An unknown row or column label was requested.

    Inherits from :class:`KeyError` so idiomatic ``except KeyError``
    call sites keep working, while still being a :class:`FrameError`.
    """

    def __str__(self) -> str:  # KeyError quotes its args; keep the message readable
        return Exception.__str__(self)


class DuplicateLabelError(FrameError, ValueError):
    """A frame was constructed with duplicate row or column labels."""


class ShapeError(FrameError, ValueError):
    """Values supplied to a frame do not match its labels' shape."""


class SchemaError(FrameError, ValueError):
    """A relational :class:`~repro.frames.table.Table` operation referenced
    columns missing from the table, or combined incompatible schemas."""
