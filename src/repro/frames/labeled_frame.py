"""A 2-D array with labeled rows and columns, backed by numpy.

This is the storage primitive of Section 4 of the paper: the node presence
array **V** (rows = node ids, columns = time points), the edge presence
array **E** (rows = edge id pairs), the static attribute array **S**
(columns = attribute names) and one array per time-varying attribute
(columns = time points) are all :class:`LabeledFrame` instances.

The frame is deliberately small and explicit — it supports exactly the
operations the paper's algorithms require (column restriction, row
selection by boolean reductions over column subsets, row insertion by
label) plus generic conveniences (iteration, equality, copies).  It is
*not* a general dataframe; relational operations (unpivot / merge /
deduplicate / group-count, used by Algorithm 2) live in
:mod:`repro.frames.table`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from .errors import DuplicateLabelError, LabelError, ShapeError

__all__ = ["LabeledFrame"]


def _build_index(labels: Sequence[Hashable], axis: str) -> dict[Hashable, int]:
    """Map each label to its position, rejecting duplicates."""
    index = {label: position for position, label in enumerate(labels)}
    if len(index) != len(labels):
        seen: set[Hashable] = set()
        duplicates = [lbl for lbl in labels if lbl in seen or seen.add(lbl)]
        raise DuplicateLabelError(
            f"duplicate {axis} labels are not allowed: {duplicates[:5]!r}"
        )
    return index


class LabeledFrame:
    """An immutable-shape 2-D array with hashable row and column labels.

    Parameters
    ----------
    row_labels:
        Hashable identifiers for the rows, in order.  Must be unique.
    col_labels:
        Hashable identifiers for the columns, in order.  Must be unique.
    values:
        Anything :func:`numpy.asarray` accepts, of shape
        ``(len(row_labels), len(col_labels))``.  The array is copied so the
        frame owns its storage.
    dtype:
        Optional dtype override passed through to numpy.

    Examples
    --------
    >>> frame = LabeledFrame(["u1", "u2"], [2000, 2001], [[1, 0], [1, 1]])
    >>> frame.cell("u2", 2001)
    1
    >>> frame.rows_any([2000])
    ('u1', 'u2')
    """

    __slots__ = ("_row_labels", "_col_labels", "_values", "_row_index", "_col_index")

    def __init__(
        self,
        row_labels: Sequence[Hashable],
        col_labels: Sequence[Hashable],
        values: Any,
        dtype: Any = None,
    ) -> None:
        self._row_labels: tuple[Hashable, ...] = tuple(row_labels)
        self._col_labels: tuple[Hashable, ...] = tuple(col_labels)
        array = np.array(values, dtype=dtype)
        if array.ndim == 1 and array.size == 0:
            array = array.reshape(len(self._row_labels), len(self._col_labels))
        if array.shape != (len(self._row_labels), len(self._col_labels)):
            raise ShapeError(
                f"values shape {array.shape} does not match labels "
                f"({len(self._row_labels)}, {len(self._col_labels)})"
            )
        self._values = array
        self._row_index = _build_index(self._row_labels, "row")
        self._col_index = _build_index(self._col_labels, "column")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(
        cls, col_labels: Sequence[Hashable], dtype: Any = None
    ) -> "LabeledFrame":
        """A frame with the given columns and no rows."""
        width = len(tuple(col_labels))
        values = np.empty((0, width), dtype=dtype if dtype is not None else object)
        return cls((), col_labels, values)

    @classmethod
    def from_rows(
        cls,
        rows: Mapping[Hashable, Sequence[Any]],
        col_labels: Sequence[Hashable],
        dtype: Any = None,
    ) -> "LabeledFrame":
        """Build a frame from a mapping ``row label -> row values``."""
        row_labels = tuple(rows)
        cols = tuple(col_labels)
        if not row_labels:
            return cls.empty(cols, dtype=dtype)
        data = []
        for label in row_labels:
            row = tuple(rows[label])
            if len(row) != len(cols):
                raise ShapeError(
                    f"row {label!r} has {len(row)} values, expected {len(cols)}"
                )
            data.append(row)
        array = np.empty((len(row_labels), len(cols)), dtype=dtype or object)
        for i, row in enumerate(data):
            for j, value in enumerate(row):
                array[i, j] = value
        return cls(row_labels, cols, array)

    @classmethod
    def zeros(
        cls,
        row_labels: Sequence[Hashable],
        col_labels: Sequence[Hashable],
        dtype: Any = np.uint8,
    ) -> "LabeledFrame":
        """An all-zero frame — the shape presence matrices start from."""
        rows = tuple(row_labels)
        cols = tuple(col_labels)
        return cls(rows, cols, np.zeros((len(rows), len(cols)), dtype=dtype))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def row_labels(self) -> tuple[Hashable, ...]:
        """Row labels, in storage order."""
        return self._row_labels

    @property
    def col_labels(self) -> tuple[Hashable, ...]:
        """Column labels, in storage order."""
        return self._col_labels

    @property
    def values(self) -> np.ndarray:
        """The underlying numpy array (a live view — treat as read-only)."""
        return self._values

    @property
    def shape(self) -> tuple[int, int]:
        return self._values.shape  # type: ignore[return-value]

    @property
    def n_rows(self) -> int:
        return len(self._row_labels)

    @property
    def n_cols(self) -> int:
        return len(self._col_labels)

    def has_row(self, label: Hashable) -> bool:
        return label in self._row_index

    def has_col(self, label: Hashable) -> bool:
        return label in self._col_index

    def row_position(self, label: Hashable) -> int:
        """Storage position of a row label."""
        try:
            return self._row_index[label]
        except KeyError:
            raise LabelError(f"unknown row label: {label!r}") from None

    def col_position(self, label: Hashable) -> int:
        """Storage position of a column label."""
        try:
            return self._col_index[label]
        except KeyError:
            raise LabelError(f"unknown column label: {label!r}") from None

    # ------------------------------------------------------------------
    # Element / row access
    # ------------------------------------------------------------------

    def cell(self, row: Hashable, col: Hashable) -> Any:
        """The value stored at ``(row, col)``."""
        return self._values[self.row_position(row), self.col_position(col)]

    def set_cell(self, row: Hashable, col: Hashable, value: Any) -> None:
        """Assign one cell in place (used by dataset builders)."""
        self._values[self.row_position(row), self.col_position(col)] = value

    def row(self, label: Hashable) -> np.ndarray:
        """A copy of one row's values."""
        return self._values[self.row_position(label)].copy()

    def row_dict(self, label: Hashable) -> dict[Hashable, Any]:
        """One row as a ``column label -> value`` mapping."""
        row = self._values[self.row_position(label)]
        return dict(zip(self._col_labels, row))

    def column(self, label: Hashable) -> np.ndarray:
        """A copy of one column's values."""
        return self._values[:, self.col_position(label)].copy()

    def iter_rows(self) -> Iterator[tuple[Hashable, np.ndarray]]:
        """Yield ``(row label, row values view)`` pairs in order."""
        for label, row in zip(self._row_labels, self._values):
            yield label, row

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def restrict_cols(self, cols: Sequence[Hashable]) -> "LabeledFrame":
        """A new frame keeping only the given columns, in the given order.

        This is the paper's *time projection* on the storage level
        ("restricting the arrays to the columns corresponding to a given
        time interval", Section 4.1).
        """
        positions = [self.col_position(c) for c in cols]
        return LabeledFrame(
            self._row_labels, tuple(cols), self._values[:, positions].copy()
        )

    def select_rows(self, rows: Sequence[Hashable]) -> "LabeledFrame":
        """A new frame keeping only the given rows, in the given order."""
        positions = [self.row_position(r) for r in rows]
        return LabeledFrame(
            tuple(rows), self._col_labels, self._values[positions].copy()
        )

    def select_rows_present(self, rows: Iterable[Hashable]) -> "LabeledFrame":
        """Like :meth:`select_rows` but silently skips unknown labels.

        Useful when intersecting an entity list with the rows actually
        stored (e.g. attribute rows for nodes that survived an operator).
        """
        known = [r for r in rows if r in self._row_index]
        return self.select_rows(known)

    def mask_rows(self, mask: np.ndarray) -> "LabeledFrame":
        """A new frame keeping rows where ``mask`` is truthy."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_rows,):
            raise ShapeError(
                f"mask shape {mask.shape} does not match row count {self.n_rows}"
            )
        labels = tuple(
            label for label, keep in zip(self._row_labels, mask) if keep
        )
        return LabeledFrame(labels, self._col_labels, self._values[mask].copy())

    # ------------------------------------------------------------------
    # Boolean reductions (presence-matrix queries)
    # ------------------------------------------------------------------

    def _col_positions(self, cols: Sequence[Hashable] | None) -> list[int]:
        if cols is None:
            return list(range(self.n_cols))
        return [self.col_position(c) for c in cols]

    def any_mask(self, cols: Sequence[Hashable] | None = None) -> np.ndarray:
        """Boolean row mask: row has a nonzero value in *any* given column.

        This is the selection rule of the union operator (Algorithm 1,
        line 4: ``if any V[v, t] = 1``).
        """
        positions = self._col_positions(cols)
        if not positions:
            return np.zeros(self.n_rows, dtype=bool)
        block = self._values[:, positions]
        return (block.astype(bool)).any(axis=1)

    def all_mask(self, cols: Sequence[Hashable] | None = None) -> np.ndarray:
        """Boolean row mask: row is nonzero in *every* given column.

        Used for intersection-semantics spans where an entity must exist
        throughout an interval.  With no columns the mask is all-True
        (vacuous truth), matching ``numpy.all`` over an empty axis.
        """
        positions = self._col_positions(cols)
        if not positions:
            return np.ones(self.n_rows, dtype=bool)
        block = self._values[:, positions]
        return (block.astype(bool)).all(axis=1)

    def none_mask(self, cols: Sequence[Hashable] | None = None) -> np.ndarray:
        """Boolean row mask: row is zero in *all* given columns.

        This is the exclusion rule of the difference operator
        (Section 4.1: "all V[v, t'] with t' in T2 are equal to 0").
        """
        return ~self.any_mask(cols)

    def rows_any(self, cols: Sequence[Hashable] | None = None) -> tuple[Hashable, ...]:
        """Labels of rows with a nonzero value in any given column."""
        mask = self.any_mask(cols)
        return tuple(lbl for lbl, keep in zip(self._row_labels, mask) if keep)

    def rows_all(self, cols: Sequence[Hashable] | None = None) -> tuple[Hashable, ...]:
        """Labels of rows nonzero in every given column."""
        mask = self.all_mask(cols)
        return tuple(lbl for lbl, keep in zip(self._row_labels, mask) if keep)

    def count_nonzero_by_row(
        self, cols: Sequence[Hashable] | None = None
    ) -> dict[Hashable, int]:
        """Per-row count of nonzero cells over the given columns.

        This powers the static-attribute fast path of non-distinct
        aggregation (Section 4.2): the multiplicity of a node/edge over an
        interval is the number of 1-columns in its presence row.
        """
        positions = self._col_positions(cols)
        if not positions:
            return {label: 0 for label in self._row_labels}
        counts = np.count_nonzero(
            self._values[:, positions].astype(bool), axis=1
        )
        return dict(zip(self._row_labels, counts.tolist()))

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------

    def concat_rows(self, other: "LabeledFrame") -> "LabeledFrame":
        """Stack another frame's rows under this one.

        Column labels must match exactly; row label sets must be disjoint.
        """
        if other.col_labels != self._col_labels:
            raise ShapeError(
                "cannot concat frames with different columns: "
                f"{self._col_labels!r} vs {other.col_labels!r}"
            )
        values = np.concatenate([self._values, other.values], axis=0)
        return LabeledFrame(self._row_labels + other.row_labels, self._col_labels, values)

    def copy(self) -> "LabeledFrame":
        return LabeledFrame(self._row_labels, self._col_labels, self._values.copy())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n_rows

    def __contains__(self, label: Hashable) -> bool:
        return label in self._row_index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledFrame):
            return NotImplemented
        return (
            self._row_labels == other._row_labels
            and self._col_labels == other._col_labels
            and np.array_equal(self._values, other._values)
        )

    def __repr__(self) -> str:
        return (
            f"LabeledFrame({self.n_rows} rows x {self.n_cols} cols, "
            f"dtype={self._values.dtype})"
        )

    def to_string(self, max_rows: int = 20) -> str:
        """A small aligned text rendering for reports and examples."""
        header = ["Id"] + [str(c) for c in self._col_labels]
        body: list[list[str]] = []
        for label, row in list(self.iter_rows())[:max_rows]:
            body.append([str(label)] + [str(v) for v in row])
        widths = [
            max(len(line[i]) for line in [header] + body) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(cell.ljust(w) for cell, w in zip(header, widths))]
        for line in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        if self.n_rows > max_rows:
            lines.append(f"... ({self.n_rows - max_rows} more rows)")
        return "\n".join(lines)
