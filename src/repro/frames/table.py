"""A minimal relational table: named columns over tuple rows.

Algorithm 2 of the paper expresses attribute aggregation as a pipeline of
relational operations over unpivoted attribute arrays::

    unpivot -> merge -> deduplicate -> groupby().count()

This module supplies exactly those operations.  Rows are plain Python
tuples, columns are named; grouping uses hash dictionaries, so the
asymptotic behaviour matches what a dataframe library would do (a single
pass plus hashing), which is what makes the benchmark *shapes* of
Section 5 reproducible without pandas.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Any, Callable

import numpy as np

from .errors import SchemaError
from .labeled_frame import LabeledFrame
from ..obs.metrics import get_metrics

__all__ = ["Table", "unpivot"]


def _scanned(rows: int) -> None:
    """Report one relational pass over ``rows`` rows to the metrics
    registry (the ``frames.rows_scanned`` counter)."""
    metrics = get_metrics()
    metrics.inc("frames.table_ops")
    metrics.inc("frames.rows_scanned", rows)


class Table:
    """An ordered bag of tuples with named columns.

    Unlike :class:`~repro.frames.labeled_frame.LabeledFrame`, a table may
    contain duplicate rows — distinct vs. non-distinct aggregation
    (Section 2.2) is precisely the choice of whether to deduplicate before
    counting.
    """

    __slots__ = ("_columns", "_rows", "_positions")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()) -> None:
        self._columns: tuple[str, ...] = tuple(columns)
        self._positions: dict[str, int] = {c: i for i, c in enumerate(self._columns)}
        if len(self._positions) != len(self._columns):
            raise SchemaError(f"duplicate column names: {self._columns!r}")
        self._rows: list[tuple[Any, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(self._columns):
                raise SchemaError(
                    f"row {row!r} has {len(row)} values, expected {len(self._columns)}"
                )
            self._rows.append(row)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> list[tuple[Any, ...]]:
        """The row list (live — treat as read-only)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._columns == other._columns and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Table(columns={self._columns!r}, n_rows={len(self._rows)})"

    def column_position(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; table has {self._columns!r}"
            ) from None

    def column_values(self, name: str) -> list[Any]:
        """All values of one column, in row order (duplicates preserved)."""
        position = self.column_position(name)
        return [row[position] for row in self._rows]

    # ------------------------------------------------------------------
    # Row-level mutation (builders only)
    # ------------------------------------------------------------------

    def append(self, row: Sequence[Any]) -> None:
        """Add one row in place."""
        row = tuple(row)
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row {row!r} has {len(row)} values, expected {len(self._columns)}"
            )
        self._rows.append(row)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.append(row)

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[tuple[Any, ...]], bool]) -> "Table":
        """Rows satisfying a predicate over the raw tuple."""
        _scanned(len(self._rows))
        return Table(self._columns, (row for row in self._rows if predicate(row)))

    def project(self, columns: Sequence[str]) -> "Table":
        """Keep only the given columns (duplicates in output preserved)."""
        _scanned(len(self._rows))
        positions = [self.column_position(c) for c in columns]
        return Table(
            tuple(columns),
            (tuple(row[p] for p in positions) for row in self._rows),
        )

    def rename(self, mapping: dict[str, str]) -> "Table":
        """A copy with some columns renamed."""
        for old in mapping:
            self.column_position(old)  # validate
        columns = tuple(mapping.get(c, c) for c in self._columns)
        return Table(columns, self._rows)

    def concat(self, other: "Table") -> "Table":
        """Rows of both tables (schemas must match)."""
        if other.columns != self._columns:
            raise SchemaError(
                f"cannot concat tables with columns {self._columns!r} and "
                f"{other.columns!r}"
            )
        merged = Table(self._columns, self._rows)
        merged.extend(other.rows)
        return merged

    def deduplicate(self, keys: Sequence[str] | None = None) -> "Table":
        """Drop duplicate rows, keeping the first occurrence.

        ``keys`` selects the columns forming the duplicate key; by default
        the whole row is the key.  This is the ``deduplicate`` step that
        distinguishes DIST from ALL aggregation (Algorithm 2, line 5).
        """
        if keys is None:
            positions = list(range(len(self._columns)))
        else:
            positions = [self.column_position(c) for c in keys]
        _scanned(len(self._rows))
        seen: set[tuple[Any, ...]] = set()
        kept: list[tuple[Any, ...]] = []
        for row in self._rows:
            key = tuple(row[p] for p in positions)
            if key not in seen:
                seen.add(key)
                kept.append(row)
        return Table(self._columns, kept)

    def join(
        self,
        other: "Table",
        on: Sequence[str],
        how: str = "inner",
    ) -> "Table":
        """Hash join on equality of the ``on`` columns.

        ``how`` may be ``"inner"`` (default) or ``"left"``; a left join
        fills the right side with ``None``.  Output columns are this
        table's columns followed by the other table's non-key columns.
        """
        if how not in ("inner", "left"):
            raise SchemaError(f"unsupported join type: {how!r}")
        left_keys = [self.column_position(c) for c in on]
        right_keys = [other.column_position(c) for c in on]
        right_other_positions = [
            i for i, c in enumerate(other.columns) if c not in on
        ]
        right_other_names = [other.columns[i] for i in right_other_positions]
        for name in right_other_names:
            if name in self._positions:
                raise SchemaError(
                    f"join would duplicate column {name!r}; rename it first"
                )
        _scanned(len(self._rows) + len(other.rows))
        index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for row in other.rows:
            key = tuple(row[p] for p in right_keys)
            index.setdefault(key, []).append(
                tuple(row[p] for p in right_other_positions)
            )
        out_columns = self._columns + tuple(right_other_names)
        out_rows: list[tuple[Any, ...]] = []
        missing = (None,) * len(right_other_positions)
        for row in self._rows:
            key = tuple(row[p] for p in left_keys)
            matches = index.get(key)
            if matches:
                for extra in matches:
                    out_rows.append(row + extra)
            elif how == "left":
                out_rows.append(row + missing)
        return Table(out_columns, out_rows)

    def order_by(
        self, columns: Sequence[str], descending: bool = False
    ) -> "Table":
        """Rows sorted by the given columns (stable sort).

        Mixed-type columns sort by their string rendering, so ordering
        never raises on heterogenous attribute values.  Descending order
        inverts the sort *key* (numeric negation; reversed rank of the
        string rendering otherwise) rather than reversing the sorted
        rows, so rows with equal keys keep their original order in both
        directions.
        """
        positions = [self.column_position(c) for c in columns]
        _scanned(len(self._rows))

        def _numeric(value: Any) -> bool:
            return isinstance(value, (int, float)) and not isinstance(value, bool)

        if not descending:

            def sort_key(row: tuple[Any, ...]) -> tuple[Any, ...]:
                return tuple(
                    (0, row[p]) if _numeric(row[p]) else (1, str(row[p]))
                    for p in positions
                )

            return Table(self._columns, sorted(self._rows, key=sort_key))

        # Ascending order is (numbers ascending, then strings ascending);
        # its exact reverse is (strings descending, then numbers
        # descending), hence the flipped type rank below.
        ranks: list[dict[str, int]] = []
        for p in positions:
            rendered = sorted(
                {str(row[p]) for row in self._rows if not _numeric(row[p])}
            )
            ranks.append({s: i for i, s in enumerate(rendered)})

        def sort_key_descending(row: tuple[Any, ...]) -> tuple[Any, ...]:
            return tuple(
                (1, -row[p]) if _numeric(row[p]) else (0, -rank[str(row[p])])
                for rank, p in zip(ranks, positions)
            )

        return Table(self._columns, sorted(self._rows, key=sort_key_descending))

    def limit(self, count: int) -> "Table":
        """The first ``count`` rows (the top-k companion of order_by)."""
        if count < 0:
            raise SchemaError(f"limit must be non-negative, got {count}")
        return Table(self._columns, self._rows[:count])

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct values of one column, in first-appearance order."""
        position = self.column_position(column)
        return list(dict.fromkeys(row[position] for row in self._rows))

    def groupby_count(self, keys: Sequence[str]) -> dict[tuple[Any, ...], int]:
        """Count rows per distinct key tuple (Algorithm 2, line 8/19)."""
        positions = [self.column_position(c) for c in keys]
        _scanned(len(self._rows))
        counts: dict[tuple[Any, ...], int] = {}
        for row in self._rows:
            key = tuple(row[p] for p in positions)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def groupby_sum(
        self, keys: Sequence[str], value: str
    ) -> dict[tuple[Any, ...], Any]:
        """Sum one numeric column per distinct key tuple.

        Used by the static-attribute fast path of non-distinct aggregation
        (Section 4.2: "instead of counting the appearances of each group,
        we sum their weights") and by D-distributive roll-ups (Section 4.3).
        """
        positions = [self.column_position(c) for c in keys]
        value_position = self.column_position(value)
        _scanned(len(self._rows))
        sums: dict[tuple[Any, ...], Any] = {}
        for row in self._rows:
            key = tuple(row[p] for p in positions)
            sums[key] = sums.get(key, 0) + row[value_position]
        return sums

    def groupby_agg(
        self, keys: Sequence[str], value: str, func: Callable[[list[Any]], Any]
    ) -> dict[tuple[Any, ...], Any]:
        """Apply an arbitrary aggregate over one column per key group.

        This supports the extension beyond COUNT that Section 2.2 mentions
        ("other aggregations may be supported"): MIN/MAX/AVG/SUM over
        attribute values.
        """
        positions = [self.column_position(c) for c in keys]
        value_position = self.column_position(value)
        _scanned(len(self._rows))
        groups: dict[tuple[Any, ...], list[Any]] = {}
        for row in self._rows:
            key = tuple(row[p] for p in positions)
            groups.setdefault(key, []).append(row[value_position])
        return {key: func(values) for key, values in groups.items()}

    def to_string(self, max_rows: int = 20) -> str:
        """A small aligned text rendering for reports and examples."""
        header = [str(c) for c in self._columns]
        body = [[str(v) for v in row] for row in self._rows[:max_rows]]
        widths = [
            max([len(header[i])] + [len(line[i]) for line in body])
            for i in range(len(header))
        ]
        lines = ["  ".join(cell.ljust(w) for cell, w in zip(header, widths))]
        for line in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)


def unpivot(
    frame: LabeledFrame,
    row_name: str = "id",
    col_name: str = "t",
    value_name: str = "value",
    drop_missing: bool = True,
) -> Table:
    """Melt a labeled frame to long ``(row, column, value)`` form.

    This is Algorithm 2's ``unpivot`` (line 2): the per-time columns of a
    time-varying attribute array become rows, so a node contributes one
    record per time point at which it has a value.  Missing cells (the
    paper's "-" entries in Table 2, i.e. the node does not exist at that
    time) are dropped when ``drop_missing`` is set: ``None`` on object
    arrays, ``NaN`` on float arrays.  Bool/int arrays have no missing
    representation and keep the all-cells fast path.
    """
    values = frame.values
    if drop_missing and values.dtype == object:
        keep = np.frompyfunc(lambda v: v is not None, 1, 1)(values).astype(bool)
        row_idx, col_idx = np.nonzero(keep)
    elif drop_missing and values.dtype.kind == "f":
        row_idx, col_idx = np.nonzero(~np.isnan(values))
    else:
        row_idx, col_idx = np.nonzero(np.ones(values.shape, dtype=bool))
    get_metrics().inc("frames.unpivot_cells", int(values.size))
    row_labels = frame.row_labels
    col_labels = frame.col_labels
    rows = [
        (row_labels[i], col_labels[j], values[i, j])
        for i, j in zip(row_idx.tolist(), col_idx.tolist())
    ]
    return Table((row_name, col_name, value_name), rows)
