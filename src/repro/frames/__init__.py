"""Labeled-array substrate: the storage layer of Section 4 of the paper.

GraphTempo stores a temporal attributed graph as a family of labeled 2-D
arrays (node/edge presence matrices and attribute arrays) and implements
its operators as row selections and relational pipelines over them.  This
package provides those arrays (:class:`LabeledFrame`), the relational
operations Algorithm 2 needs (:class:`Table`, :func:`unpivot`) and CSV
persistence for both.
"""

from .errors import (
    DuplicateLabelError,
    FrameError,
    LabelError,
    SchemaError,
    ShapeError,
)
from .io import read_frame_csv, read_table_csv, write_frame_csv, write_table_csv
from .labeled_frame import LabeledFrame
from .table import Table, unpivot

__all__ = [
    "LabeledFrame",
    "Table",
    "unpivot",
    "FrameError",
    "LabelError",
    "DuplicateLabelError",
    "ShapeError",
    "SchemaError",
    "read_frame_csv",
    "write_frame_csv",
    "read_table_csv",
    "write_table_csv",
]
