"""Hypothesis strategies for temporal attributed graphs.

Importing this module requires ``hypothesis`` (a test-time dependency);
the rest of :mod:`repro.testing` — including the ``repro fuzz`` CLI —
works without it, driven by the plain factories in
:mod:`repro.testing.generators` instead.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import strategies as st

from ..core import TemporalGraph, Timeline
from ..frames import LabeledFrame

__all__ = ["temporal_graphs"]


@st.composite
def temporal_graphs(
    draw: st.DrawFn,
    min_times: int = 2,
    max_times: int = 4,
    min_nodes: int = 2,
    max_nodes: int = 7,
    max_edges: int = 8,
) -> TemporalGraph:
    """Strategy producing small random temporal attributed graphs.

    Graphs carry one static attribute (``gender`` in {m, f}) and one
    time-varying attribute (``level`` in 1..3), arbitrary presence
    patterns (every node/edge exists somewhere), and directed edges
    active only when both endpoints are.  All model invariants hold by
    construction.
    """
    n_times = draw(st.integers(min_times, max_times))
    n_nodes = draw(st.integers(min_nodes, max_nodes))
    times = tuple(f"t{i}" for i in range(n_times))
    node_ids = tuple(f"u{i}" for i in range(n_nodes))

    presence_bits = draw(
        st.lists(
            st.lists(st.integers(0, 1), min_size=n_times, max_size=n_times),
            min_size=n_nodes,
            max_size=n_nodes,
        )
    )
    presence = np.array(presence_bits, dtype=np.uint8)
    for i in range(n_nodes):
        if presence[i].sum() == 0:
            presence[i, draw(st.integers(0, n_times - 1))] = 1

    node_presence = LabeledFrame(node_ids, times, presence)
    genders = draw(
        st.lists(st.sampled_from(["m", "f"]), min_size=n_nodes, max_size=n_nodes)
    )
    static = LabeledFrame(
        node_ids, ("gender",), np.array([[g] for g in genders], dtype=object)
    )

    level_values = np.full((n_nodes, n_times), None, dtype=object)
    for i in range(n_nodes):
        for t in range(n_times):
            if presence[i, t]:
                level_values[i, t] = draw(st.integers(1, 3))
    varying = {"level": LabeledFrame(node_ids, times, level_values)}

    candidate_edges = [(u, v) for u, v in itertools.permutations(node_ids, 2)]
    chosen = draw(
        st.lists(
            st.sampled_from(candidate_edges),
            unique=True,
            max_size=min(max_edges, len(candidate_edges)),
        )
    )
    edge_ids = []
    edge_rows = []
    node_pos = {n: i for i, n in enumerate(node_ids)}
    for u, v in chosen:
        allowed = presence[node_pos[u]] & presence[node_pos[v]]
        if not allowed.any():
            continue
        mask_bits = draw(
            st.lists(st.integers(0, 1), min_size=n_times, max_size=n_times)
        )
        row = np.array(mask_bits, dtype=np.uint8) & allowed
        if not row.any():
            row = allowed.copy()
        edge_ids.append((u, v))
        edge_rows.append(row)
    edge_presence = LabeledFrame(
        tuple(edge_ids),
        times,
        np.array(edge_rows, dtype=np.uint8).reshape(len(edge_ids), n_times),
    )
    return TemporalGraph(
        Timeline(times), node_presence, edge_presence, static, varying
    )
