"""The metamorphic-law registry.

Each :class:`Law` encodes one identity the paper's algebra promises —
operator laws over time sets (Definitions 2.2-2.5), DIST/ALL aggregation
relations (Definition 2.6), evolution-graph consistency (Definition 2.7,
Fig. 4b), semi-lattice monotonicity (Section 3) and granularity/rollup
equalities (Section 4.3).  A law's ``check`` receives a random graph and
a dedicated RNG (for picking windows, attributes and thresholds) and
returns ``None`` on success or a human-readable violation message.

Laws marked ``hostile_safe=False`` assume a well-formed graph and are
skipped on hostile inputs (dangling edges); the differential laws in
:mod:`repro.testing.oracle` cover hostility by asserting that every
engine rejects it identically.
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core import (
    Interval,
    TemporalGraph,
    TimeHierarchy,
    aggregate,
    aggregate_evolution,
    coarsen,
    difference,
    intersection,
    ordered_times,
    presence_signature,
    project,
    union,
)
from ..core.evolution import EvolutionWeights
from ..core.updates import split_history
from ..errors import ConfigurationError
from ..exploration.events import ChainEvaluator, EntityKind, EventCounter, EventType
from ..exploration.lattice import ExtendSide, Semantics, Side
from ..materialize.streaming import AggregateTotalsView
from ..streaming import EvolutionView, ExplorationView, StreamingStore
from .generators import graph_to_maps, random_time_sets

__all__ = ["Law", "register_law", "law_registry", "get_laws"]

CheckFn = Callable[[TemporalGraph, np.random.Generator], "str | None"]


@dataclass(frozen=True)
class Law:
    """One registered algebraic identity."""

    name: str
    description: str
    check: CheckFn
    hostile_safe: bool = True


_REGISTRY: dict[str, Law] = {}


def register_law(
    name: str, description: str, hostile_safe: bool = True
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a check function as a named law."""

    def wrap(check: CheckFn) -> CheckFn:
        if name in _REGISTRY:
            raise ConfigurationError(f"law {name!r} is already registered")
        _REGISTRY[name] = Law(name, description, check, hostile_safe)
        return check

    return wrap


def law_registry() -> dict[str, Law]:
    """A copy of the full registry (name -> law), registration order."""
    return dict(_REGISTRY)


def get_laws(names: Sequence[str] | None = None) -> tuple[Law, ...]:
    """Resolve law names (``None`` = every registered law)."""
    if names is None:
        return tuple(_REGISTRY.values())
    missing = [n for n in names if n not in _REGISTRY]
    if missing:
        raise ConfigurationError(
            f"unknown laws {missing!r}; known: {sorted(_REGISTRY)}"
        )
    return tuple(_REGISTRY[n] for n in names)


# ----------------------------------------------------------------------
# Shared pickers
# ----------------------------------------------------------------------


def _one_window(rng: np.random.Generator, graph: TemporalGraph) -> tuple:
    return random_time_sets(rng, graph, n=1)[0]


def _some_attributes(
    rng: np.random.Generator, graph: TemporalGraph
) -> list[str]:
    names = list(graph.attribute_names)
    order = rng.permutation(len(names))
    k = int(rng.integers(1, len(names) + 1))
    return [names[i] for i in order[:k]]


def _random_point(rng: np.random.Generator, graph: TemporalGraph):
    labels = graph.timeline.labels
    return labels[int(rng.integers(len(labels)))]


def _entity_sets(graph: TemporalGraph) -> tuple[set, set]:
    return set(graph.nodes), set(graph.edges)


# ----------------------------------------------------------------------
# Operator laws (Definitions 2.2-2.5)
# ----------------------------------------------------------------------


@register_law(
    "union-idempotent",
    "union(T, T) is the same graph as union(T) (Definition 2.3)",
)
def _union_idempotent(graph: TemporalGraph, rng: np.random.Generator) -> str | None:
    window = _one_window(rng, graph)
    a = presence_signature(union(graph, window, window))
    b = presence_signature(union(graph, window))
    if a != b:
        return f"union(T, T) != union(T) over {window!r}"
    return None


@register_law(
    "union-commutes",
    "union(T1, T2) == union(T2, T1) (Definition 2.3)",
)
def _union_commutes(graph: TemporalGraph, rng: np.random.Generator) -> str | None:
    w1, w2 = random_time_sets(rng, graph, n=2)
    if presence_signature(union(graph, w1, w2)) != presence_signature(
        union(graph, w2, w1)
    ):
        return f"union not commutative over {w1!r}, {w2!r}"
    return None


@register_law(
    "intersection-commutes",
    "intersection(T1, T2) == intersection(T2, T1) (Definition 2.4)",
)
def _intersection_commutes(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    w1, w2 = random_time_sets(rng, graph, n=2)
    if presence_signature(intersection(graph, w1, w2)) != presence_signature(
        intersection(graph, w2, w1)
    ):
        return f"intersection not commutative over {w1!r}, {w2!r}"
    return None


@register_law(
    "intersection-within-union",
    "entities of the intersection graph are a subset of the union graph's",
)
def _intersection_within_union(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    w1, w2 = random_time_sets(rng, graph, n=2)
    inter_nodes, inter_edges = _entity_sets(intersection(graph, w1, w2))
    union_nodes, union_edges = _entity_sets(union(graph, w1, w2))
    if not inter_nodes <= union_nodes:
        return f"intersection nodes escape the union: {inter_nodes - union_nodes!r}"
    if not inter_edges <= union_edges:
        return f"intersection edges escape the union: {inter_edges - union_edges!r}"
    return None


@register_law(
    "projection-within-intersection",
    "project(T1 | T2) entities are a subset of intersection(T1, T2)'s",
)
def _projection_within_intersection(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    w1, w2 = random_time_sets(rng, graph, n=2)
    window = ordered_times(graph, w1, w2)
    proj_nodes, proj_edges = _entity_sets(project(graph, window))
    inter_nodes, inter_edges = _entity_sets(intersection(graph, w1, w2))
    if not proj_nodes <= inter_nodes:
        return f"projected nodes escape the intersection: {proj_nodes - inter_nodes!r}"
    if not proj_edges <= inter_edges:
        return f"projected edges escape the intersection: {proj_edges - inter_edges!r}"
    return None


@register_law(
    "difference-disjoint",
    "T1-T2, T2-T1 and the intersection have pairwise disjoint edge sets",
)
def _difference_disjoint(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    w1, w2 = random_time_sets(rng, graph, n=2)
    d12 = set(difference(graph, w1, w2).edges)
    d21 = set(difference(graph, w2, w1).edges)
    both = set(intersection(graph, w1, w2).edges)
    overlaps = (d12 & d21) | (d12 & both) | (d21 & both)
    if overlaps:
        return f"edge sets not pairwise disjoint: {sorted(overlaps)!r}"
    return None


@register_law(
    "union-partition",
    "union edges = intersection edges + (T1-T2) edges + (T2-T1) edges",
)
def _union_partition(graph: TemporalGraph, rng: np.random.Generator) -> str | None:
    w1, w2 = random_time_sets(rng, graph, n=2)
    whole = set(union(graph, w1, w2).edges)
    parts = (
        set(intersection(graph, w1, w2).edges)
        | set(difference(graph, w1, w2).edges)
        | set(difference(graph, w2, w1).edges)
    )
    if whole != parts:
        return (
            f"union edges {sorted(whole ^ parts)!r} not covered exactly by "
            "the three-way partition"
        )
    return None


# ----------------------------------------------------------------------
# Aggregation laws (Definition 2.6, Section 4.3)
# ----------------------------------------------------------------------


@register_law(
    "distinct-le-all",
    "every DIST weight is bounded by its ALL weight (Definition 2.6)",
    hostile_safe=False,
)
def _distinct_le_all(graph: TemporalGraph, rng: np.random.Generator) -> str | None:
    attrs = _some_attributes(rng, graph)
    window = _one_window(rng, graph)
    dist = aggregate(graph, attrs, distinct=True, times=window)
    full = aggregate(graph, attrs, distinct=False, times=window)
    for kind, ours, theirs in (
        ("node", dist.node_weights, full.node_weights),
        ("edge", dist.edge_weights, full.edge_weights),
    ):
        for key, weight in ours.items():
            if weight > theirs.get(key, 0):  # type: ignore[call-overload]
                return (
                    f"{kind} {key!r}: DIST {weight} exceeds "
                    f"ALL {theirs.get(key, 0)}"  # type: ignore[call-overload]
                )
    return None


@register_law(
    "single-point-dist-equals-all",
    "at one time point DIST and ALL aggregation coincide",
    hostile_safe=False,
)
def _single_point_dist_equals_all(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = _some_attributes(rng, graph)
    point = [_random_point(rng, graph)]
    dist = aggregate(graph, attrs, distinct=True, times=point)
    full = aggregate(graph, attrs, distinct=False, times=point)
    if dict(dist.node_weights) != dict(full.node_weights):
        return f"node weights differ at single point {point!r}"
    if dict(dist.edge_weights) != dict(full.edge_weights):
        return f"edge weights differ at single point {point!r}"
    return None


@register_law(
    "all-sums-over-points",
    "ALL aggregation over a window is the pointwise sum of its points "
    "(T-distributivity, Section 4.3)",
    hostile_safe=False,
)
def _all_sums_over_points(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = _some_attributes(rng, graph)
    window = _one_window(rng, graph)
    whole = aggregate(graph, attrs, distinct=False, times=window)
    total = None
    for t in window:
        point = aggregate(graph, attrs, distinct=False, times=[t])
        total = point if total is None else total.combine(point)
    assert total is not None
    problems = whole.diff(total)
    if problems:
        return f"pointwise sums diverge over {window!r}: {problems[0]}"
    return None


@register_law(
    "attribute-permutation",
    "permuting the attribute list permutes keys without changing weights",
    hostile_safe=False,
)
def _attribute_permutation(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    names = list(graph.attribute_names)
    if len(names) < 2:
        return None
    attrs = _some_attributes(rng, graph)
    if len(attrs) < 2:
        attrs = names[:2]
    perm = [attrs[i] for i in rng.permutation(len(attrs))]
    if perm == attrs:
        perm = list(reversed(attrs))
    distinct = bool(rng.integers(2))
    window = _one_window(rng, graph)
    base = aggregate(graph, attrs, distinct=distinct, times=window)
    permuted = aggregate(graph, perm, distinct=distinct, times=window)
    positions = [attrs.index(p) for p in perm]

    def remap(key: tuple) -> tuple:
        return tuple(key[p] for p in positions)

    expected_nodes = {remap(k): w for k, w in base.node_weights.items()}
    if expected_nodes != dict(permuted.node_weights):
        return f"node weights not permutation-covariant for {perm!r}"
    expected_edges = {
        (remap(s), remap(t)): w for (s, t), w in base.edge_weights.items()
    }
    if expected_edges != dict(permuted.edge_weights):
        return f"edge weights not permutation-covariant for {perm!r}"
    return None


@register_law(
    "duplicate-times-invariant",
    "duplicated/unordered time arguments normalize to the same result",
    hostile_safe=False,
)
def _duplicate_times_invariant(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    hostile = random_time_sets(rng, graph, n=1, hostile=True)[0]
    normalized = ordered_times(graph, hostile)
    if presence_signature(union(graph, hostile)) != presence_signature(
        union(graph, normalized)
    ):
        return f"union differs for duplicated times {hostile!r}"
    attrs = _some_attributes(rng, graph)
    distinct = bool(rng.integers(2))
    problems = aggregate(graph, attrs, distinct=distinct, times=hostile).diff(
        aggregate(graph, attrs, distinct=distinct, times=normalized)
    )
    if problems:
        return f"aggregate differs for duplicated times {hostile!r}: {problems[0]}"
    return None


@register_law(
    "aggregate-union-in-place",
    "aggregating the union graph equals aggregating in place over T1 | T2",
    hostile_safe=False,
)
def _aggregate_union_in_place(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    w1, w2 = random_time_sets(rng, graph, n=2)
    window = ordered_times(graph, w1, w2)
    attrs = _some_attributes(rng, graph)
    distinct = bool(rng.integers(2))
    on_union = aggregate(union(graph, w1, w2), attrs, distinct=distinct)
    in_place = aggregate(graph, attrs, distinct=distinct, times=window)
    problems = on_union.diff(in_place)
    if problems:
        return f"union-graph aggregation diverges over {window!r}: {problems[0]}"
    return None


@register_law(
    "aggregate-project-point",
    "aggregating the single-point projection equals aggregating that point",
    hostile_safe=False,
)
def _aggregate_project_point(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    point = _random_point(rng, graph)
    attrs = _some_attributes(rng, graph)
    distinct = bool(rng.integers(2))
    projected = aggregate(project(graph, [point]), attrs, distinct=distinct)
    in_place = aggregate(graph, attrs, distinct=distinct, times=[point])
    problems = projected.diff(in_place)
    if problems:
        return f"projection aggregation diverges at {point!r}: {problems[0]}"
    return None


# ----------------------------------------------------------------------
# Evolution laws (Definition 2.7, Fig. 4b)
# ----------------------------------------------------------------------


@register_law(
    "evolution-partition",
    "stability+shrinkage recovers the old window's DIST aggregate, "
    "stability+growth the new one's",
    hostile_safe=False,
)
def _evolution_partition(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = _some_attributes(rng, graph)
    old, new = random_time_sets(rng, graph, n=2)
    ev = aggregate_evolution(graph, old, new, attrs)
    for window, pick in ((old, "shrinkage"), (new, "growth")):
        dist = aggregate(graph, attrs, distinct=True, times=window)
        keys = set(ev.node_weights) | set(dist.node_weights)
        for key in keys:
            weights = ev.node(key)
            expected = dist.node_weights.get(key, 0)  # type: ignore[call-overload]
            got = weights.stability + getattr(weights, pick)
            if got != expected:
                return (
                    f"node {key!r}: stability+{pick}={got} but DIST over "
                    f"{window!r} is {expected}"
                )
        edge_keys = set(ev.edge_weights) | set(dist.edge_weights)
        for key in edge_keys:
            weights = ev.edge(key[0], key[1])
            expected = dist.edge_weights.get(key, 0)  # type: ignore[call-overload]
            got = weights.stability + getattr(weights, pick)
            if got != expected:
                return (
                    f"edge {key!r}: stability+{pick}={got} but DIST over "
                    f"{window!r} is {expected}"
                )
    return None


@register_law(
    "evolution-symmetry",
    "swapping the intervals swaps growth and shrinkage, stability fixed",
)
def _evolution_symmetry(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = _some_attributes(rng, graph)
    old, new = random_time_sets(rng, graph, n=2)
    forward = aggregate_evolution(graph, old, new, attrs)
    backward = aggregate_evolution(graph, new, old, attrs)
    for kind, ours, theirs in (
        ("node", forward.node_weights, backward.node_weights),
        ("edge", forward.edge_weights, backward.edge_weights),
    ):
        for key in set(ours) | set(theirs):
            a = ours.get(key, EvolutionWeights())  # type: ignore[call-overload]
            b = theirs.get(key, EvolutionWeights())  # type: ignore[call-overload]
            if (a.stability, a.growth, a.shrinkage) != (
                b.stability,
                b.shrinkage,
                b.growth,
            ):
                return f"{kind} {key!r}: {a} is not the mirror of {b}"
    return None


# ----------------------------------------------------------------------
# Exploration laws (Section 3)
# ----------------------------------------------------------------------

#: (event, extend) pairs whose counts are monotone along extension
#: chains: non-decreasing under union semantics, non-increasing under
#: intersection — the Table-1 rows U-/I-Explore pruning relies on.
_MONOTONE_CASES = (
    (EventType.STABILITY, ExtendSide.OLD),
    (EventType.STABILITY, ExtendSide.NEW),
    (EventType.GROWTH, ExtendSide.NEW),
    (EventType.SHRINKAGE, ExtendSide.OLD),
)


@register_law(
    "lattice-monotone",
    "event counts are monotone along semi-lattice extension chains",
)
def _lattice_monotone(graph: TemporalGraph, rng: np.random.Generator) -> str | None:
    n_times = len(graph.timeline)
    if n_times < 2:
        return None
    event, extend = _MONOTONE_CASES[int(rng.integers(len(_MONOTONE_CASES)))]
    entity = (
        EntityKind.NODES if rng.integers(2) else EntityKind.EDGES
    )
    counter = EventCounter(graph, entity=entity)
    evaluator = ChainEvaluator(counter, event, incremental=bool(rng.integers(2)))
    reference = int(rng.integers(n_times - 1))
    for semantics, keep in (
        (Semantics.UNION, lambda prev, cur: cur >= prev),
        (Semantics.INTERSECTION, lambda prev, cur: cur <= prev),
    ):
        counts = [
            step.count for step in evaluator.chain(reference, extend, semantics)
        ]
        for prev, cur in zip(counts, counts[1:]):
            if not keep(prev, cur):
                return (
                    f"{event}/{extend} counts {counts!r} not monotone under "
                    f"{semantics} from reference {reference}"
                )
    return None


@register_law(
    "event-counts-match-operators",
    "event edge counts equal the n_edges of the matching operator graphs",
)
def _event_counts_match_operators(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    n_times = len(graph.timeline)
    if n_times < 2:
        return None

    def random_side() -> Side:
        start = int(rng.integers(n_times))
        stop = int(rng.integers(start, n_times))
        return Side(Interval(start, stop), Semantics.UNION)

    old, new = random_side(), random_side()
    old_labels = old.labels(graph.timeline)
    new_labels = new.labels(graph.timeline)
    counter = EventCounter(graph, entity=EntityKind.EDGES)
    cases = (
        (EventType.STABILITY, intersection(graph, old_labels, new_labels)),
        (EventType.GROWTH, difference(graph, new_labels, old_labels)),
        (EventType.SHRINKAGE, difference(graph, old_labels, new_labels)),
    )
    for event, operator_graph in cases:
        counted = counter.count(event, old, new)
        if counted != operator_graph.n_edges:
            return (
                f"{event} count {counted} != operator n_edges "
                f"{operator_graph.n_edges} for {old}/{new}"
            )
    node_counter = EventCounter(graph, entity=EntityKind.NODES)
    stable_nodes = node_counter.count(EventType.STABILITY, old, new)
    operator_nodes = intersection(graph, old_labels, new_labels).n_nodes
    if stable_nodes != operator_nodes:
        return (
            f"stability node count {stable_nodes} != intersection n_nodes "
            f"{operator_nodes} for {old}/{new}"
        )
    return None


# ----------------------------------------------------------------------
# Granularity laws (Section 4.2)
# ----------------------------------------------------------------------


@register_law(
    "coarsen-union-consistency",
    "a union-coarsened unit aggregates like its member window",
    hostile_safe=False,
)
def _coarsen_union_consistency(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = list(graph.static_attribute_names)
    if not attrs:
        return None
    labels = graph.timeline.labels
    width = int(rng.integers(1, len(labels) + 1))
    hierarchy = TimeHierarchy.regular(labels, width)
    coarse = coarsen(graph, hierarchy, "union")
    units = hierarchy.unit_labels
    unit = units[int(rng.integers(len(units)))]
    on_coarse = aggregate(coarse, attrs, distinct=True, times=[unit])
    on_base = aggregate(
        graph, attrs, distinct=True, times=hierarchy.members(unit)
    )
    if dict(on_coarse.node_weights) != dict(on_base.node_weights):
        return f"unit {unit!r}: coarse node weights diverge from member window"
    if dict(on_coarse.edge_weights) != dict(on_base.edge_weights):
        return f"unit {unit!r}: coarse edge weights diverge from member window"
    return None


# ----------------------------------------------------------------------
# Analyzer self-law: linting is deterministic and read-only
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=1)
def _lint_determinism_verdict() -> str | None:
    """Lint ``src/repro`` twice; compare violations and file stats.

    Cached so the (comparatively expensive) double pass runs once per
    process no matter how many fuzz cases invoke the law.
    """
    import repro
    from ..lint import lint_paths, load_config

    package_dir = Path(repro.__file__).parent
    pyproject = package_dir.parent.parent / "pyproject.toml"
    config = load_config(pyproject if pyproject.is_file() else None)
    root = package_dir.parent.parent

    def stats() -> dict[str, tuple[int, int]]:
        return {
            str(path): (path.stat().st_mtime_ns, path.stat().st_size)
            for path in sorted(package_dir.rglob("*.py"))
        }

    before = stats()
    first = lint_paths([package_dir], config, root=root)
    second = lint_paths([package_dir], config, root=root)
    after = stats()
    if first != second:
        return (
            f"lint is nondeterministic: {len(first)} violations on the "
            f"first pass, {len(second)} on the second"
        )
    if before != after:
        changed = sorted(
            path for path in before
            if before[path] != after.get(path)
        )
        return f"lint mutated source files: {changed[:3]}"
    return None


@register_law(
    "lint-deterministic-readonly",
    "a lint pass over src/repro is deterministic and mutates no files",
)
def _lint_deterministic_readonly(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    del graph, rng  # the analyzer's input is the source tree itself
    return _lint_determinism_verdict()


# ----------------------------------------------------------------------
# Streaming replay identity (ROADMAP item 1)
# ----------------------------------------------------------------------


@register_law(
    "streaming-replay-identity",
    "replaying split_history through a StreamingStore rebuilds the graph "
    "bit-exactly, publishes one monotonic version per append, and keeps "
    "delta-maintained totals equal to the direct aggregate",
    hostile_safe=False,
)
def _streaming_replay_identity(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = tuple(_some_attributes(rng, graph))
    initial, updates = split_history(graph)
    totals = AggregateTotalsView([attrs])
    store = StreamingStore(initial, views=[totals])
    fired: list[int] = []
    store.on_append(lambda version: fired.append(version.version))
    for update in updates:
        store.append_snapshot(update)
    if graph_to_maps(store.graph) != graph_to_maps(graph):
        return "replayed graph diverges from the original"
    if store.version != len(updates) or fired != list(range(1, len(updates) + 1)):
        return (
            f"append versions not monotonic: latest {store.version}, "
            f"hooks saw {fired!r}"
        )
    direct = aggregate(graph, list(attrs), distinct=False)
    problems = totals.union_total(attrs).diff(direct)
    if problems:
        return f"delta-maintained union total diverges: {problems[0]}"
    # The same frozen updates must replay a second time verbatim — the
    # regression the SnapshotUpdate freeze exists for.
    second = StreamingStore(initial)
    for update in updates:
        second.append_snapshot(update)
    if graph_to_maps(second.graph) != graph_to_maps(store.graph):
        return "second replay of the same updates diverges (updates not frozen?)"
    return None


@register_law(
    "streaming-evolution-delta",
    "an EvolutionView extended one appended point at a time equals the "
    "from-scratch evolution aggregate over the same windows",
    hostile_safe=False,
)
def _streaming_evolution_delta(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    labels = graph.timeline.labels
    if len(labels) < 2:
        return None
    attrs = _some_attributes(rng, graph)
    split = int(rng.integers(1, len(labels)))
    initial, updates = split_history(graph)
    store = StreamingStore(initial)
    for update in updates[: split - 1]:
        store.append_snapshot(update)
    view = EvolutionView(attrs)
    store.register_view(view)
    for update in updates[split - 1 :]:
        store.append_snapshot(update)
    direct = aggregate_evolution(graph, labels[:split], labels[split:], attrs)
    problems = view.current().diff(direct)
    if problems:
        return (
            f"delta-maintained evolution diverges at split {split}: "
            f"{problems[0]}"
        )
    return None


@register_law(
    "streaming-exploration-delta",
    "an ExplorationView grown one OR/AND per appended point matches "
    "ChainEvaluator's chain over the final graph, early masks padded for "
    "entities that did not exist yet",
    hostile_safe=False,
)
def _streaming_exploration_delta(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    labels = graph.timeline.labels
    if len(labels) < 2:
        return None
    event = tuple(EventType)[int(rng.integers(3))]
    semantics = Semantics.UNION if rng.integers(2) else Semantics.INTERSECTION
    entity = EntityKind.EDGES if rng.integers(2) else EntityKind.NODES
    static_names = [a for a in graph.attribute_names if graph.is_static(a)]
    attrs: list[str] = []
    key = None
    if static_names and rng.integers(2):
        attrs = [static_names[int(rng.integers(len(static_names)))]]
        if rng.integers(2):
            column = graph.static_attrs.column(attrs[0])
            value = column[int(rng.integers(len(column)))]
            key = (
                ((value,), (value,))
                if entity is EntityKind.EDGES
                else (value,)
            )
    reference = int(rng.integers(0, len(labels) - 1))
    initial, updates = split_history(graph)
    store = StreamingStore(initial)
    for update in updates[:reference]:
        store.append_snapshot(update)
    view = ExplorationView(
        event, semantics, entity, attributes=attrs, key=key
    )
    store.register_view(view)
    for update in updates[reference:]:
        store.append_snapshot(update)
    counter = EventCounter(store.graph, entity, attrs, key)
    chain = list(
        ChainEvaluator(counter, event).chain(
            reference, ExtendSide.NEW, semantics
        )
    )
    steps = view.steps()
    if len(chain) != len(steps):
        return f"step counts diverge: {len(chain)} != {len(steps)}"
    for i, (expected, got) in enumerate(zip(chain, steps)):
        if (expected.old, expected.new) != (got.old, got.new):
            return f"step {i} sides diverge: {(got.old, got.new)!r}"
        if expected.count != got.count:
            return (
                f"step {i} counts diverge: expected {expected.count}, "
                f"view kept {got.count}"
            )
        padded = np.zeros(expected.mask.shape[0], dtype=bool)
        padded[: got.mask.shape[0]] = got.mask
        if not np.array_equal(expected.mask, padded):
            return f"step {i} masks diverge"
    return None
