"""The fuzz driver: random graphs x registered laws, with shrinking.

One run is fully determined by ``(seed, cases, laws)``: graph shapes are
drawn from ``default_rng([seed, case])`` and each law check from
``default_rng([seed, case, law_index])`` — the numpy sequence-seeding
idiom, so no case or law perturbs another's randomness and any failure
is replayable from the report alone.  Every fourth case is hostile
(dangling edges); laws that require well-formed graphs are skipped
there.

Failures are shrunk to a minimal graph (:func:`repro.testing.shrink_graph`)
and, when ``out_dir`` is given, written to disk as standalone reproducer
scripts.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core import TemporalGraph
from ..errors import ConfigurationError
from .generators import GraphSpec, random_temporal_graph
from .laws import Law, get_laws
from .shrink import shrink_graph, write_reproducer

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz", "HOSTILE_EVERY"]

#: Every n-th case uses a hostile graph (dangling edges).
HOSTILE_EVERY = 4


@dataclass(frozen=True)
class FuzzFailure:
    """One law violation, shrunk and ready to replay."""

    law: str
    case: int
    seed: int
    message: str
    n_nodes: int
    n_edges: int
    n_times: int
    reproducer: Path | None

    def __str__(self) -> str:
        where = f" -> {self.reproducer}" if self.reproducer else ""
        return (
            f"[{self.law}] case {self.case} (seed {self.seed}): "
            f"{self.message} (shrunk to {self.n_nodes} nodes / "
            f"{self.n_edges} edges / {self.n_times} times){where}"
        )


@dataclass(frozen=True)
class FuzzReport:
    """The outcome of one :func:`run_fuzz` invocation."""

    seed: int
    cases: int
    laws: tuple[str, ...]
    checks: int
    skipped: int
    failures: tuple[FuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"fuzz seed={self.seed} cases={self.cases} "
            f"laws={len(self.laws)} checks={self.checks} "
            f"skipped={self.skipped}: {status}"
        )


def _case_spec(case: int, rng: np.random.Generator) -> GraphSpec:
    """A randomized graph shape; hostile every :data:`HOSTILE_EVERY`-th."""
    hostile = case % HOSTILE_EVERY == HOSTILE_EVERY - 1
    return GraphSpec(
        n_times=int(rng.integers(2, 6)),
        n_nodes=int(rng.integers(2, 9)),
        edge_density=float(rng.uniform(0.1, 0.7)),
        presence_density=float(rng.uniform(0.3, 0.9)),
        dangling_edges=int(rng.integers(1, 3)) if hostile else 0,
    )


def _check_once(
    law: Law, graph: TemporalGraph, seed: int, case: int, law_index: int
) -> str | None:
    """One deterministic evaluation of a law (fresh RNG per call)."""
    try:
        return law.check(graph, np.random.default_rng([seed, case, law_index]))
    except Exception as exc:  # a crashing law is a failing law
        return f"unhandled {type(exc).__name__}: {exc}"


def run_fuzz(
    seed: int = 0,
    cases: int = 100,
    laws: Sequence[str] | None = None,
    out_dir: str | Path | None = None,
    shrink: bool = True,
) -> FuzzReport:
    """Run ``cases`` random graphs through the selected laws.

    Returns a :class:`FuzzReport`; writes one reproducer script per
    failure into ``out_dir`` when given.  Raises
    :class:`~repro.errors.ConfigurationError` for bad parameters or
    unknown law names.
    """
    if cases < 1:
        raise ConfigurationError(f"cases must be positive, got {cases}")
    if out_dir is not None:
        # Pin a cwd-relative --out to the directory named at launch:
        # reproducers must not scatter if something chdirs mid-run.
        out_dir = Path(out_dir).expanduser().resolve()
    selected = get_laws(laws)
    if not selected:
        raise ConfigurationError("no laws selected")
    law_indices = {law.name: i for i, law in enumerate(get_laws(None))}

    checks = 0
    skipped = 0
    failures: list[FuzzFailure] = []
    for case in range(cases):
        case_rng = np.random.default_rng([seed, case])
        spec = _case_spec(case, case_rng)
        graph = random_temporal_graph(spec, rng=case_rng)
        hostile = spec.dangling_edges > 0
        for law in selected:
            if hostile and not law.hostile_safe:
                skipped += 1
                continue
            law_index = law_indices[law.name]
            message = _check_once(law, graph, seed, case, law_index)
            checks += 1
            if message is None:
                continue
            culprit = graph
            if shrink:

                def reproduces(
                    g: TemporalGraph, law: Law = law, idx: int = law_index
                ) -> bool:
                    return _check_once(law, g, seed, case, idx) is not None

                culprit = shrink_graph(graph, reproduces)
                message = (
                    _check_once(law, culprit, seed, case, law_index) or message
                )
            reproducer = None
            if out_dir is not None:
                reproducer = write_reproducer(
                    out_dir, culprit, law.name, seed, case, law_index, message
                )
            failures.append(
                FuzzFailure(
                    law=law.name,
                    case=case,
                    seed=seed,
                    message=message,
                    n_nodes=culprit.n_nodes,
                    n_edges=culprit.n_edges,
                    n_times=len(culprit.timeline),
                    reproducer=reproducer,
                )
            )
    return FuzzReport(
        seed=seed,
        cases=cases,
        laws=tuple(law.name for law in selected),
        checks=checks,
        skipped=skipped,
        failures=tuple(failures),
    )
