"""Seedable random temporal-graph factories.

The fuzz harness needs graphs nobody hand-picked: arbitrary presence
patterns, several time points, static and time-varying attributes, and —
when asked — *hostile* inputs (dangling edges, duplicated/unordered time
arguments) that well-formed fixtures never exercise.  Everything here is
driven by a :class:`numpy.random.Generator`, so a ``(seed, case)`` pair
fully determines a graph and any failure is replayable.

:func:`graph_from_maps` is the inverse direction: it builds a graph from
plain literal mappings, which is what shrunk-counterexample reproducer
snippets embed.  Its validation raises from the :mod:`repro.errors`
taxonomy so inconsistent presence/attribute inputs fail loudly and
typed.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core import TemporalGraph, Timeline
from ..errors import UnknownLabelError, ValidationError
from ..frames import LabeledFrame

__all__ = [
    "GraphSpec",
    "random_temporal_graph",
    "random_time_sets",
    "graph_from_maps",
    "graph_to_maps",
]


@dataclass(frozen=True)
class GraphSpec:
    """Shape parameters for :func:`random_temporal_graph`.

    ``dangling_edges > 0`` switches on hostile mode: that many edges
    reference nodes absent from the node set (the graph is built without
    validation, as a buggy ingestion pipeline would).  Laws that require
    well-formed graphs declare themselves ``hostile_safe=False`` and are
    skipped on such inputs; the remaining laws assert that every engine
    rejects or tolerates the hostility *identically*.
    """

    n_times: int = 4
    n_nodes: int = 6
    edge_density: float = 0.4
    presence_density: float = 0.6
    static_attrs: Mapping[str, Sequence[Any]] = field(
        default_factory=lambda: {"gender": ("m", "f")}
    )
    varying_attrs: Mapping[str, Sequence[Any]] = field(
        default_factory=lambda: {"level": (1, 2, 3)}
    )
    dangling_edges: int = 0

    def __post_init__(self) -> None:
        if self.n_times < 1:
            raise ValidationError(f"n_times must be >= 1, got {self.n_times}")
        if self.n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        for name, value in (
            ("edge_density", self.edge_density),
            ("presence_density", self.presence_density),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {value}")
        if self.dangling_edges < 0:
            raise ValidationError(
                f"dangling_edges must be >= 0, got {self.dangling_edges}"
            )


def _resolve_rng(
    seed: int | None, rng: np.random.Generator | None
) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def random_temporal_graph(
    spec: GraphSpec = GraphSpec(),
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> TemporalGraph:
    """A random temporal attributed graph matching ``spec``.

    Invariants guaranteed unless ``spec.dangling_edges > 0``: every node
    and edge is present somewhere, edges are active only when both
    endpoints are, attribute values exist exactly where the entity does.
    """
    generator = _resolve_rng(seed, rng)
    n_times, n_nodes = spec.n_times, spec.n_nodes
    times = tuple(f"t{i}" for i in range(n_times))
    node_ids = tuple(f"u{i}" for i in range(n_nodes))

    presence = (
        generator.random((n_nodes, n_times)) < spec.presence_density
    ).astype(np.uint8)
    for row in range(n_nodes):
        if not presence[row].any():
            presence[row, int(generator.integers(n_times))] = 1
    node_presence = LabeledFrame(node_ids, times, presence)

    static_names = tuple(spec.static_attrs)
    static_values = np.empty((n_nodes, len(static_names)), dtype=object)
    for col, name in enumerate(static_names):
        pool = tuple(spec.static_attrs[name])
        for row in range(n_nodes):
            static_values[row, col] = pool[int(generator.integers(len(pool)))]
    static = LabeledFrame(node_ids, static_names, static_values)

    varying: dict[str, LabeledFrame] = {}
    for name, values_pool in spec.varying_attrs.items():
        pool = tuple(values_pool)
        values = np.full((n_nodes, n_times), None, dtype=object)
        for row in range(n_nodes):
            for col in range(n_times):
                if presence[row, col]:
                    values[row, col] = pool[int(generator.integers(len(pool)))]
        varying[name] = LabeledFrame(node_ids, times, values)

    edge_ids: list[tuple[str, str]] = []
    edge_rows: list[np.ndarray] = []
    for i in range(n_nodes):
        for j in range(n_nodes):
            if i == j or generator.random() >= spec.edge_density:
                continue
            allowed = presence[i] & presence[j]
            if not allowed.any():
                continue
            row = (
                generator.random(n_times) < max(spec.presence_density, 0.3)
            ).astype(np.uint8) & allowed
            if not row.any():
                row = allowed.copy()
            edge_ids.append((node_ids[i], node_ids[j]))
            edge_rows.append(row)

    for ghost in range(spec.dangling_edges):
        anchor = node_ids[int(generator.integers(n_nodes))]
        phantom = f"ghost{ghost}"
        pair = (anchor, phantom) if generator.random() < 0.5 else (phantom, anchor)
        row = np.zeros(n_times, dtype=np.uint8)
        row[int(generator.integers(n_times))] = 1
        edge_ids.append(pair)
        edge_rows.append(row)

    edge_presence = LabeledFrame(
        tuple(edge_ids),
        times,
        np.array(edge_rows, dtype=np.uint8).reshape(len(edge_ids), n_times),
    )
    return TemporalGraph(
        Timeline(times),
        node_presence,
        edge_presence,
        static,
        varying,
        validate=spec.dangling_edges == 0,
    )


def random_time_sets(
    rng: np.random.Generator,
    graph: TemporalGraph,
    n: int = 2,
    hostile: bool = False,
) -> tuple[tuple[Hashable, ...], ...]:
    """``n`` non-empty time-label selections from the graph's timeline.

    Benign mode returns subsets in timeline order; hostile mode shuffles
    and duplicates labels — arguments the operators and aggregation
    engines promise to normalize identically.
    """
    labels = graph.timeline.labels
    picks: list[tuple[Hashable, ...]] = []
    for _ in range(n):
        mask = rng.random(len(labels)) < 0.6
        if not mask.any():
            mask[int(rng.integers(len(labels)))] = True
        chosen = [t for t, keep in zip(labels, mask) if keep]
        if hostile:
            chosen = chosen + [
                chosen[int(rng.integers(len(chosen)))]
                for _ in range(int(rng.integers(1, 3)))
            ]
            rng.shuffle(chosen)  # type: ignore[arg-type]
        picks.append(tuple(chosen))
    return tuple(picks)


def graph_from_maps(
    times: Sequence[Hashable],
    node_times: Mapping[Hashable, Sequence[Hashable]],
    edge_times: Mapping[tuple[Hashable, Hashable], Sequence[Hashable]] | None = None,
    static: Mapping[Hashable, Mapping[str, Any]] | None = None,
    varying: Mapping[Hashable, Mapping[str, Mapping[Hashable, Any]]] | None = None,
    allow_dangling: bool = False,
    storage: str | None = None,
) -> TemporalGraph:
    """Build a graph from literal presence/attribute mappings.

    The constructor reproducer snippets call: every argument is a plain
    ``repr``-able mapping.  Inconsistent inputs raise from the
    :mod:`repro.errors` taxonomy:

    * a presence or attribute time absent from ``times`` —
      :class:`~repro.errors.UnknownLabelError`;
    * an attribute entry for an unknown node —
      :class:`~repro.errors.UnknownLabelError`;
    * a varying value at a time the node is absent, or an edge endpoint
      missing from ``node_times`` without ``allow_dangling`` —
      :class:`~repro.errors.ValidationError`.

    ``storage`` optionally pins the rebuilt graph to a named storage
    backend (:mod:`repro.storage`), so a reproducer replays the failure
    on the same physical layout it was found on.
    """
    timeline = tuple(times)
    if not timeline:
        raise ValidationError("graph_from_maps needs at least one time point")
    time_pos = {t: i for i, t in enumerate(timeline)}
    edge_times = edge_times or {}
    static = static or {}
    varying = varying or {}

    node_ids = tuple(node_times)
    node_pos = {n: i for i, n in enumerate(node_ids)}
    for mapping_name, keys in (("static", static), ("varying", varying)):
        unknown_nodes = set(keys) - set(node_pos)
        if unknown_nodes:
            raise UnknownLabelError(
                f"{mapping_name} values given for unknown nodes: "
                f"{sorted(map(repr, unknown_nodes))}"
            )

    presence = np.zeros((len(node_ids), len(timeline)), dtype=np.uint8)
    for node, active in node_times.items():
        for t in active:
            if t not in time_pos:
                raise UnknownLabelError(
                    f"node {node!r} presence at unknown time {t!r}"
                )
            presence[node_pos[node], time_pos[t]] = 1
    node_presence = LabeledFrame(node_ids, timeline, presence)

    static_names = tuple(
        sorted({name for values in static.values() for name in values})
    )
    static_values = np.empty((len(node_ids), len(static_names)), dtype=object)
    for row, node in enumerate(node_ids):
        provided = static.get(node, {})
        for col, name in enumerate(static_names):
            static_values[row, col] = provided.get(name)
    static_frame = LabeledFrame(node_ids, static_names, static_values)

    varying_names = tuple(
        sorted({name for values in varying.values() for name in values})
    )
    varying_frames: dict[str, LabeledFrame] = {}
    for name in varying_names:
        values = np.full((len(node_ids), len(timeline)), None, dtype=object)
        for node, node_attrs in varying.items():
            for t, value in node_attrs.get(name, {}).items():
                if t not in time_pos:
                    raise UnknownLabelError(
                        f"varying {name!r} for {node!r} at unknown time {t!r}"
                    )
                if not presence[node_pos[node], time_pos[t]]:
                    raise ValidationError(
                        f"varying {name!r} for {node!r} at {t!r}, but the "
                        "node is absent there: presence and attribute "
                        "frames are inconsistent"
                    )
                values[node_pos[node], time_pos[t]] = value
        varying_frames[name] = LabeledFrame(node_ids, timeline, values)

    edge_ids = tuple(edge_times)
    edge_values = np.zeros((len(edge_ids), len(timeline)), dtype=np.uint8)
    for row, (edge, active) in enumerate(edge_times.items()):
        u, v = edge
        if (u not in node_pos or v not in node_pos) and not allow_dangling:
            missing = u if u not in node_pos else v
            raise ValidationError(
                f"edge {edge!r} references node {missing!r} absent from "
                "node_times (pass allow_dangling=True to build a "
                "deliberately broken graph)"
            )
        for t in active:
            if t not in time_pos:
                raise UnknownLabelError(
                    f"edge {edge!r} presence at unknown time {t!r}"
                )
            edge_values[row, time_pos[t]] = 1
    edge_presence = LabeledFrame(edge_ids, timeline, edge_values)

    return TemporalGraph(
        Timeline(timeline),
        node_presence,
        edge_presence,
        static_frame,
        varying_frames,
        validate=False,
        storage=storage,
    )


def graph_to_maps(graph: TemporalGraph) -> dict[str, Any]:
    """The literal-mapping representation :func:`graph_from_maps` accepts.

    ``repr`` of the result is valid Python for the label types the
    generators produce (strings, ints) — the substrate of reproducer
    snippets.  Every read goes through the graph's storage backend
    (:mod:`repro.storage`), so reproducers extract identically from any
    registered physical layout — dense, columnar or memmapped.
    """
    backend = graph.storage
    times = backend.times

    def presence_map(entity: str) -> dict[Hashable, list[Hashable]]:
        matrix = backend.presence_matrix(entity)
        return {
            label: [t for t, flag in zip(times, matrix[row]) if flag]
            for row, label in enumerate(backend.entity_labels(entity))
        }

    static: dict[Hashable, dict[str, Any]] = {
        node: {} for node in backend.node_labels
    }
    for name in graph.static_attribute_names:
        column = backend.attribute_column(name)
        for node, value in zip(backend.node_labels, column):
            static[node][str(name)] = value
    varying: dict[Hashable, dict[str, dict[Hashable, Any]]] = {}
    for name in graph.varying_attribute_names:
        for t in times:
            column = backend.attribute_column(name, t)
            for node, value in zip(backend.node_labels, column):
                if value is not None:
                    varying.setdefault(node, {}).setdefault(name, {})[t] = value
    return {
        "times": list(times),
        "node_times": presence_map("nodes"),
        "edge_times": presence_map("edges"),
        "static": static,
        "varying": varying,
    }

