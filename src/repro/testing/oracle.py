"""Differential laws: every engine/store/strategy variant must agree.

The repo deliberately keeps several independently-optimized code paths
per operation — the literal Algorithm 2 transcription vs the vectorized
engine, fresh aggregation vs materialized derivation, naive vs
incremental exploration.  These laws run one random workload through
*all* variants and diff the results bit-exactly (via the ``diff`` hooks
on :class:`~repro.core.AggregateGraph` and
:class:`~repro.exploration.explore.ExplorationResult`).  On hostile
graphs the engines must also *fail* identically: same taxonomy error
type from every variant.

Importing this module registers the laws; :mod:`repro.testing`'s
``__init__`` does so eagerly.
"""

from __future__ import annotations

import numpy as np

from ..core import TemporalGraph, aggregate, presence_signature
from ..core.fast import aggregation_engines
from ..errors import GraphTempoError
from ..exploration.events import EntityKind, EventType
from ..exploration.explore import ExtendSide, Goal, exhaustive_explore, explore
from ..materialize.incremental import IncrementalStore
from ..materialize.store import MaterializedStore
from .generators import random_time_sets
from .laws import register_law

__all__ = ["DIFFERENTIAL_LAW_NAMES"]

#: Names of the laws this module registers, in registration order.
DIFFERENTIAL_LAW_NAMES = (
    "engines-agree",
    "union-store-agrees",
    "incremental-replay-agrees",
    "exploration-variants-agree",
    "serving-cache-transparency",
    "backend-storage",
)


def _pick_attributes(
    rng: np.random.Generator, graph: TemporalGraph, static_only: bool = False
) -> list[str]:
    names = [
        a
        for a in graph.attribute_names
        if not static_only or graph.is_static(a)
    ]
    if not names:
        return []
    order = rng.permutation(len(names))
    k = int(rng.integers(1, len(names) + 1))
    return [names[i] for i in order[:k]]


@register_law(
    "engines-agree",
    "all aggregation engines return identical aggregates — or raise the "
    "same taxonomy error",
)
def _engines_agree(graph: TemporalGraph, rng: np.random.Generator) -> str | None:
    attrs = _pick_attributes(rng, graph)
    distinct = bool(rng.integers(2))
    times = (
        None
        if rng.integers(2)
        else random_time_sets(rng, graph, n=1, hostile=bool(rng.integers(2)))[0]
    )
    results = {}
    errors = {}
    for name, engine in aggregation_engines().items():
        try:
            results[name] = engine(graph, attrs, distinct=distinct, times=times)
        except GraphTempoError as exc:
            errors[name] = type(exc).__name__
    if errors and results:
        return (
            f"engines split on {attrs!r}/{times!r}: {sorted(errors)} raised "
            f"{sorted(set(errors.values()))}, {sorted(results)} returned"
        )
    if errors:
        if len(set(errors.values())) != 1:
            return f"engines raised different error types: {errors!r}"
        return None
    names = sorted(results)
    baseline = results[names[0]]
    for other in names[1:]:
        problems = baseline.diff(results[other])
        if problems:
            return (
                f"{names[0]} vs {other} on {attrs!r}/{times!r}: {problems[0]}"
            )
    return None


@register_law(
    "union-store-agrees",
    "materialized union derivation equals fresh ALL aggregation",
    hostile_safe=False,
)
def _union_store_agrees(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = _pick_attributes(rng, graph)
    window = random_time_sets(rng, graph, n=1)[0]
    store = MaterializedStore(graph)
    derived = store.union_aggregate(attrs, window)
    fresh = aggregate(graph, attrs, distinct=False, times=window)
    problems = derived.diff(fresh)
    if problems:
        return f"store derivation diverges over {window!r}: {problems[0]}"
    return None


@register_law(
    "incremental-replay-agrees",
    "replaying the graph's history through IncrementalStore reproduces "
    "the whole-graph store and the direct aggregate",
    hostile_safe=False,
)
def _incremental_replay_agrees(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    attrs = tuple(_pick_attributes(rng, graph))
    replayed = IncrementalStore.from_history(graph, [attrs])
    if replayed.graph.timeline.labels != graph.timeline.labels:
        return (
            f"replayed timeline {replayed.graph.timeline.labels!r} != "
            f"{graph.timeline.labels!r}"
        )
    if presence_signature(replayed.graph) != presence_signature(graph):
        return "replayed graph's presence diverges from the original"
    fresh = IncrementalStore(graph, [attrs])
    problems = replayed.union_total(attrs).diff(fresh.union_total(attrs))
    if problems:
        return f"replayed union total diverges: {problems[0]}"
    direct = aggregate(graph, list(attrs), distinct=False)
    problems = fresh.union_total(attrs).diff(direct)
    if problems:
        return f"store union total diverges from direct aggregate: {problems[0]}"
    return None


@register_law(
    "exploration-variants-agree",
    "incremental, naive and exhaustive exploration report the same pairs",
    hostile_safe=False,
)
def _exploration_variants_agree(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    if len(graph.timeline) < 2:
        return None
    event = tuple(EventType)[int(rng.integers(3))]
    goal = tuple(Goal)[int(rng.integers(2))]
    extend = tuple(ExtendSide)[int(rng.integers(2))]
    entity = EntityKind.EDGES if rng.integers(2) else EntityKind.NODES
    # Monotonicity (which the pruned strategies rely on) holds for
    # mask-sum counts: static attributes only, with or without a key.
    attrs = (
        _pick_attributes(rng, graph, static_only=True)
        if rng.integers(2)
        else []
    )
    key = None
    if attrs and rng.integers(2):
        column = graph.static_attrs.column(attrs[0])
        value = column[int(rng.integers(len(column)))]
        node_key = tuple(
            value if i == 0 else graph.static_attrs.column(a)[0]
            for i, a in enumerate(attrs)
        )
        key = node_key if entity is EntityKind.NODES else (node_key, node_key)
    k = int(rng.integers(1, 4))
    baseline = explore(
        graph, event, goal, extend, k, entity, attrs, key, incremental=True
    )
    variants = {
        "explore-naive": explore(
            graph, event, goal, extend, k, entity, attrs, key, incremental=False
        ),
        "exhaustive-incremental": exhaustive_explore(
            graph, event, goal, extend, k, entity, attrs, key, incremental=True
        ),
        "exhaustive-naive": exhaustive_explore(
            graph, event, goal, extend, k, entity, attrs, key, incremental=False
        ),
    }
    for name, result in variants.items():
        problems = baseline.diff(result)
        if problems:
            return (
                f"explore-incremental vs {name} on {event}/{goal}/{extend} "
                f"k={k} attrs={attrs!r} key={key!r}: {problems[0]}"
            )
    return None


@register_law(
    "backend-storage",
    "every registered storage backend round-trips the graph bit-exactly "
    "and serves identical presence masks, aggregates and taxonomy errors",
)
def _backend_storage(graph: TemporalGraph, rng: np.random.Generator) -> str | None:
    from ..storage import backend_names, get_backend

    variants: dict[str, TemporalGraph] = {}
    for name in backend_names():
        variant = get_backend(name).from_graph(graph).to_graph()
        if presence_signature(variant) != presence_signature(graph):
            return f"backend {name!r} does not round-trip presence bit-exactly"
        variants[name] = variant

    window = random_time_sets(rng, graph, n=1, hostile=bool(rng.integers(2)))[0]
    for entity in ("nodes", "edges"):
        for mode in ("any", "all", "none"):
            masks = {}
            mask_errors = {}
            for name, variant in variants.items():
                try:
                    masks[name] = variant.presence_mask(entity, window, mode)
                except GraphTempoError as exc:
                    mask_errors[name] = type(exc).__name__
            if mask_errors and masks:
                return (
                    f"backends split on {entity}/{mode} mask over {window!r}: "
                    f"{sorted(mask_errors)} raised, {sorted(masks)} returned"
                )
            if mask_errors:
                if len(set(mask_errors.values())) != 1:
                    return (
                        f"backends raised different {entity}/{mode} mask "
                        f"errors: {mask_errors!r}"
                    )
                continue
            names = sorted(masks)
            reference = masks[names[0]]
            for other in names[1:]:
                if not np.array_equal(reference, masks[other]):
                    return (
                        f"{names[0]} vs {other}: {entity}/{mode} mask differs "
                        f"over {window!r}"
                    )

    attrs = _pick_attributes(rng, graph)
    distinct = bool(rng.integers(2))
    times = None if rng.integers(2) else window
    results = {}
    errors = {}
    for name, variant in variants.items():
        try:
            results[name] = aggregate(
                variant, attrs, distinct=distinct, times=times
            )
        except GraphTempoError as exc:
            errors[name] = type(exc).__name__
    if errors and results:
        return (
            f"backends split on aggregate {attrs!r}/{times!r}: "
            f"{sorted(errors)} raised {sorted(set(errors.values()))}, "
            f"{sorted(results)} returned"
        )
    if errors:
        if len(set(errors.values())) != 1:
            return f"backends raised different aggregate errors: {errors!r}"
        return None
    result_names = sorted(results)
    baseline = results[result_names[0]]
    for other in result_names[1:]:
        problems = baseline.diff(results[other])
        if problems:
            return (
                f"{result_names[0]} vs {other} on {attrs!r}/{times!r}: "
                f"{problems[0]}"
            )
    return None


def _served_matches(served: object, naive: object) -> str | None:
    """Bit-exact comparison across the result types queries produce."""
    if isinstance(served, TemporalGraph) and isinstance(naive, TemporalGraph):
        if presence_signature(served) != presence_signature(naive):
            return "served temporal graph's presence diverges"
        return None
    problems = served.diff(naive)  # type: ignore[attr-defined]
    return problems[0] if problems else None


@register_law(
    "serving-cache-transparency",
    "served results (normalizer + planner + result cache + permutation) "
    "are bit-identical to from-scratch evaluation — or raise the same "
    "taxonomy error",
    hostile_safe=False,
)
def _serving_cache_transparency(
    graph: TemporalGraph, rng: np.random.Generator
) -> str | None:
    from ..query.ast import (
        AggregateExpr,
        EvolutionExpr,
        OperatorExpr,
        QueryExpr,
        WindowExpr,
    )
    from ..query.evaluator import evaluate
    from ..serving import QueryServer

    labels = graph.timeline.labels

    def window() -> WindowExpr:
        i = int(rng.integers(len(labels)))
        j = int(rng.integers(len(labels)))
        if rng.integers(2):
            return WindowExpr(labels[i])
        lo, hi = sorted((i, j))
        return WindowExpr(labels[lo], labels[hi])

    def operator() -> OperatorExpr:
        name = ("union", "project", "intersection", "difference")[
            int(rng.integers(4))
        ]
        n = 2 if name in ("intersection", "difference") else int(rng.integers(1, 3))
        return OperatorExpr(name, tuple(window() for _ in range(n)))

    exprs: list[QueryExpr] = []
    for _ in range(3):
        attrs = tuple(_pick_attributes(rng, graph))
        choice = int(rng.integers(3))
        if choice == 0 or not attrs:
            exprs.append(operator())
        elif choice == 1:
            exprs.append(AggregateExpr(attrs, bool(rng.integers(2)), operator()))
        else:
            exprs.append(EvolutionExpr(window(), window(), attrs))
        last = exprs[-1]
        if len(attrs) > 1 and not isinstance(last, OperatorExpr):
            # The same query with the attribute list written in reverse:
            # it shares the canonical cache entry and must still match
            # its own from-scratch evaluation after permutation.
            swapped = tuple(reversed(attrs))
            if isinstance(last, AggregateExpr):
                exprs.append(AggregateExpr(swapped, last.distinct, last.source))
            else:
                exprs.append(EvolutionExpr(last.old, last.new, swapped))

    server = QueryServer(graph)
    for expr in exprs:
        # Twice: first populates the result cache, second must serve the
        # cached entry — both observably identical to naive evaluation.
        for attempt in ("cold", "cached"):
            served_error = naive_error = None
            served = naive = None
            try:
                served = server.serve_expr(expr).result
            except GraphTempoError as exc:
                served_error = type(exc).__name__
            try:
                naive = evaluate(graph, expr)
            except GraphTempoError as exc:
                naive_error = type(exc).__name__
            if served_error or naive_error:
                if served_error != naive_error:
                    return (
                        f"{attempt} serve of {str(expr)!r} raised "
                        f"{served_error!r} but naive evaluation raised "
                        f"{naive_error!r}"
                    )
                continue
            problem = _served_matches(served, naive)
            if problem:
                return f"{attempt} serve of {str(expr)!r} diverges: {problem}"
    return None
