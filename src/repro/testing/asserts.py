"""Assertion helpers shared by the repo's suite and downstream users."""

from __future__ import annotations

from ..core import AggregateGraph, TemporalGraph
from ..core.operators import presence_signature

__all__ = ["assert_same_aggregate", "assert_same_graph"]


def assert_same_aggregate(a: AggregateGraph, b: AggregateGraph) -> None:
    """Assert two aggregate graphs are identical in every observable way."""
    assert a.attributes == b.attributes, (a.attributes, b.attributes)
    assert a.distinct == b.distinct
    assert dict(a.node_weights) == dict(b.node_weights)
    assert dict(a.edge_weights) == dict(b.edge_weights)


def assert_same_graph(a: TemporalGraph, b: TemporalGraph) -> None:
    """Assert two temporal graphs are observably equal.

    Compares timelines, presence signatures (row order does not matter)
    and every attribute value at every active cell — the equivalence the
    incremental-replay laws rely on.
    """
    assert a.timeline.labels == b.timeline.labels, (
        a.timeline.labels,
        b.timeline.labels,
    )
    assert presence_signature(a) == presence_signature(b)
    assert a.static_attribute_names == b.static_attribute_names
    assert a.varying_attribute_names == b.varying_attribute_names
    for node in a.nodes:
        for name in a.static_attribute_names:
            assert a.attribute_value(node, name) == b.attribute_value(node, name), (
                node,
                name,
            )
        for name in a.varying_attribute_names:
            for t in a.node_times(node):
                assert a.attribute_value(node, name, t) == b.attribute_value(
                    node, name, t
                ), (node, name, t)
