"""Public test utilities: generators, metamorphic laws, fuzzing.

Downstream code building on GraphTempo needs the same things this
repository's own suite needs — seedable random temporal graphs, the
paper's algebraic identities as executable laws, and a differential
oracle over every engine/store variant.  See ``docs/testing.md`` for the
full tour and ``repro fuzz --help`` for the CLI.

Only :mod:`repro.testing.strategies` requires ``hypothesis``; everything
else (including ``repro fuzz``) runs on numpy alone.
"""

from .asserts import assert_same_aggregate, assert_same_graph
from .generators import (
    GraphSpec,
    graph_from_maps,
    graph_to_maps,
    random_temporal_graph,
    random_time_sets,
)
from .laws import Law, get_laws, law_registry, register_law
from . import oracle as _oracle  # noqa: F401  (registers differential laws)
from .shrink import reproducer_snippet, shrink_graph, write_reproducer
from .fuzz import HOSTILE_EVERY, FuzzFailure, FuzzReport, run_fuzz

try:
    from .strategies import temporal_graphs
except ImportError:  # pragma: no cover - hypothesis not installed
    def temporal_graphs(*args: object, **kwargs: object) -> object:
        raise ImportError(
            "repro.testing.temporal_graphs requires the 'hypothesis' "
            "package (a test-time dependency)"
        )

__all__ = [
    "assert_same_aggregate",
    "assert_same_graph",
    "GraphSpec",
    "graph_from_maps",
    "graph_to_maps",
    "random_temporal_graph",
    "random_time_sets",
    "Law",
    "get_laws",
    "law_registry",
    "register_law",
    "reproducer_snippet",
    "shrink_graph",
    "write_reproducer",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
    "HOSTILE_EVERY",
    "temporal_graphs",
]
