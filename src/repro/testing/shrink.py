"""Greedy counterexample shrinking and reproducer generation.

When a law fails on a random graph, the raw counterexample is noise: a
handful of nodes and time points usually suffice to trigger the bug.
:func:`shrink_graph` is delta-debugging lite — repeatedly drop one edge,
one node (with its incident edges) or one time column, keep the removal
whenever the failure still reproduces, and stop at a fixed point.  The
result is written to disk as a runnable Python snippet built on
:func:`repro.testing.graph_from_maps`, so a failure found by CI can be
replayed locally with no fuzzing infrastructure at all.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from pathlib import Path

from ..core import TemporalGraph
from .generators import graph_to_maps

__all__ = ["shrink_graph", "reproducer_snippet", "write_reproducer"]

Predicate = Callable[[TemporalGraph], bool]


def _still_fails(predicate: Predicate, graph: TemporalGraph) -> bool:
    """A candidate reduction counts only if the predicate still holds.

    A reduction that *changes* the failure into a crash (or into a
    well-formedness error) is rejected: the shrunk graph must fail the
    same way the original did as far as the predicate can tell.
    """
    try:
        return bool(predicate(graph))
    except Exception:
        return False


def _restrict(
    graph: TemporalGraph,
    nodes: list[Hashable],
    edges: list[Hashable],
    times: list[Hashable],
) -> TemporalGraph | None:
    try:
        return graph.restricted(nodes, edges, times, validate=False)
    except Exception:
        return None


def shrink_graph(
    graph: TemporalGraph,
    predicate: Predicate,
    max_rounds: int = 32,
) -> TemporalGraph:
    """The smallest graph (greedy fixed point) still failing ``predicate``.

    ``predicate`` must be deterministic: it is re-evaluated on every
    candidate reduction, so callers seeding randomness must re-seed per
    call.  The input graph is assumed to fail; the return value always
    does.
    """
    current = graph
    for _ in range(max_rounds):
        nodes = list(current.nodes)
        edges = list(current.edges)
        times = list(current.timeline.labels)
        improved = False

        for edge in list(edges):
            candidate_edges = [e for e in edges if e != edge]
            candidate = _restrict(current, nodes, candidate_edges, times)
            if candidate is not None and _still_fails(predicate, candidate):
                current, edges, improved = candidate, candidate_edges, True

        for node in list(nodes):
            candidate_nodes = [n for n in nodes if n != node]
            candidate_edges = [e for e in edges if node not in e]  # type: ignore[operator]
            candidate = _restrict(current, candidate_nodes, candidate_edges, times)
            if candidate is not None and _still_fails(predicate, candidate):
                current = candidate
                nodes, edges, improved = candidate_nodes, candidate_edges, True

        if len(times) > 1:
            for t in list(times):
                candidate_times = [x for x in times if x != t]
                if not candidate_times:
                    continue
                candidate = _restrict(current, nodes, edges, candidate_times)
                if candidate is not None and _still_fails(predicate, candidate):
                    current, times, improved = candidate, candidate_times, True

        if not improved:
            break
    return current


def reproducer_snippet(
    graph: TemporalGraph,
    law_name: str,
    seed: int,
    case: int,
    law_index: int,
    message: str,
) -> str:
    """A standalone Python script re-checking ``law_name`` on ``graph``."""
    maps = graph_to_maps(graph)
    lines = [
        '"""Auto-generated fuzz reproducer.',
        "",
        f"Law      : {law_name}",
        f"Violation: {message}",
        f"Origin   : repro fuzz --seed {seed} (case {case})",
        "",
        'Run with: PYTHONPATH=src python <this file>',
        '"""',
        "",
        "import numpy as np",
        "",
        "from repro.testing import graph_from_maps, law_registry",
        "",
        "graph = graph_from_maps(",
        f"    times={maps['times']!r},",
        f"    node_times={maps['node_times']!r},",
        f"    edge_times={maps['edge_times']!r},",
        f"    static={maps['static']!r},",
        f"    varying={maps['varying']!r},",
        "    allow_dangling=True,",
        ")",
        f"law = law_registry()[{law_name!r}]",
        f"rng = np.random.default_rng([{seed}, {case}, {law_index}])",
        "failure = law.check(graph, rng)",
        "if failure is None:",
        "    raise SystemExit('law passed: the bug may already be fixed')",
        "raise SystemExit(f'law violated: {failure}')",
        "",
    ]
    return "\n".join(lines)


def write_reproducer(
    out_dir: str | Path,
    graph: TemporalGraph,
    law_name: str,
    seed: int,
    case: int,
    law_index: int,
    message: str,
) -> Path:
    """Write the reproducer snippet to ``out_dir`` and return its path.

    The directory resolves to an absolute path up front: fuzz runs (and
    the bench replays built on them) may chdir or hand the path to
    subprocesses, and a cwd-relative ``--out`` must keep pointing at the
    directory the caller named, not wherever the process happens to be.
    """
    directory = Path(out_dir).expanduser().resolve()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"repro_{law_name.replace('-', '_')}_s{seed}_c{case}.py"
    path.write_text(
        reproducer_snippet(graph, law_name, seed, case, law_index, message),
        encoding="utf-8",
    )
    return path
