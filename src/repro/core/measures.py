"""Aggregate measures beyond COUNT.

Section 2.2 of the paper fixes COUNT as the aggregation function but
notes "other aggregations may be supported".  This module supplies them:
given grouping attributes and a numeric *measure* attribute, it computes
SUM / AVG / MIN / MAX over the measure's values per aggregate node, and
per aggregate edge (over the endpoint values of each edge appearance).

Semantics mirror the COUNT variants: with ``distinct=True`` each
``(entity, grouping tuple, measure value)`` appearance contributes once;
with ``distinct=False`` every (entity, time) appearance contributes.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any, Callable

from .aggregation import AttributeTuple, EdgeKey, _node_tuple_table
from .graph import TemporalGraph
from .intervals import TimeSet
from ..errors import AggregationError, UnknownLabelError

__all__ = ["MeasureGraph", "aggregate_measure", "aggregate_edge_measure", "MEASURES"]


def _average(values: list[float]) -> float:
    return sum(values) / len(values)


#: Supported measure names and their reducers.
MEASURES: dict[str, Callable[[list[float]], float]] = {
    "sum": sum,
    "avg": _average,
    "min": min,
    "max": max,
}


@dataclass(frozen=True)
class MeasureGraph:
    """An aggregate graph whose weights are a measure over an attribute.

    ``node_values`` maps each grouping tuple to the reduced measure of
    its member appearances; ``edge_values`` maps grouped edges to the
    reduction over both endpoints' measure values across the edge's
    appearances.
    """

    attributes: tuple[str, ...]
    measure_attribute: str
    measure: str
    node_values: dict[AttributeTuple, float]
    edge_values: dict[EdgeKey, float]

    def node(self, key: Sequence[Any]) -> float | None:
        """Measure value of one aggregate node (None when absent)."""
        return self.node_values.get(tuple(key))

    def edge(self, source: Sequence[Any], target: Sequence[Any]) -> float | None:
        """Measure value of one aggregate edge (None when absent)."""
        return self.edge_values.get((tuple(source), tuple(target)))

    def __repr__(self) -> str:
        return (
            f"MeasureGraph({self.measure}({self.measure_attribute}) by "
            f"{self.attributes!r}: {len(self.node_values)} nodes, "
            f"{len(self.edge_values)} edges)"
        )


def aggregate_measure(
    graph: TemporalGraph,
    attributes: Sequence[str],
    measure_attribute: str,
    measure: str = "avg",
    distinct: bool = True,
    times: Iterable[Hashable] | None = None,
) -> MeasureGraph:
    """Aggregate a numeric attribute per attribute group.

    Parameters
    ----------
    graph:
        The temporal graph (typically an operator output).
    attributes:
        Grouping attributes, as in :func:`repro.core.aggregate`.
    measure_attribute:
        The numeric attribute to reduce.  Must not be one of the
        grouping attributes.
    measure:
        One of ``"sum"``, ``"avg"``, ``"min"``, ``"max"``.
    distinct:
        Whether repeated identical appearances of the same entity
        contribute once (DIST) or per time point (ALL).
    times:
        Aggregation window; defaults to the graph's whole timeline.

    Examples
    --------
    Average publications per gender on the paper's example graph::

        >>> from repro.datasets import paper_example
        >>> g = paper_example()
        >>> mg = aggregate_measure(g, ["gender"], "publications",
        ...                        measure="avg", times=["t0"])
        >>> mg.node(("m",))
        3.0
    """
    if measure not in MEASURES:
        raise AggregationError(
            f"unknown measure {measure!r}; choose from {sorted(MEASURES)}"
        )
    if measure_attribute in attributes:
        raise AggregationError(
            f"measure attribute {measure_attribute!r} cannot also be a "
            "grouping attribute"
        )
    if times is None:
        window: TimeSet = graph.timeline.labels
    else:
        window = tuple(times)
        for t in window:
            graph.timeline.index_of(t)
    reducer = MEASURES[measure]

    # One long table carrying both the grouping tuple and the measure
    # value per (node, time) appearance.
    combined = _node_tuple_table(
        graph, list(attributes) + [measure_attribute], window
    )
    node_rows = [
        (node, t, values[:-1], values[-1])
        for node, t, values in combined.rows
        if values[-1] is not None
    ]
    if distinct:
        seen = set()
        deduped = []
        for node, t, group, value in node_rows:
            key = (node, group, value)
            if key not in seen:
                seen.add(key)
                deduped.append((node, t, group, value))
        node_rows = deduped
    node_groups: dict[AttributeTuple, list[float]] = {}
    for _, _, group, value in node_rows:
        node_groups.setdefault(group, []).append(value)
    node_values = {
        group: reducer(values) for group, values in node_groups.items()
    }

    lookup = {
        (node, t): (values[:-1], values[-1])
        for node, t, values in combined.rows
    }
    edge_rows = []
    presence = graph.edge_presence.values
    time_positions = [graph.timeline.index_of(t) for t in window]
    for row_idx, edge in enumerate(graph.edge_presence.row_labels):
        u, v = edge  # type: ignore[misc]
        for t, t_pos in zip(window, time_positions):
            if not presence[row_idx, t_pos]:
                continue
            source = lookup.get((u, t))
            target = lookup.get((v, t))
            if source is None or target is None:
                continue
            if source[1] is None or target[1] is None:
                continue
            edge_rows.append((edge, (source[0], target[0]), source[1], target[1]))
    if distinct:
        seen = set()
        deduped = []
        for edge, pair, sv, tv in edge_rows:
            key = (edge, pair, sv, tv)
            if key not in seen:
                seen.add(key)
                deduped.append((edge, pair, sv, tv))
        edge_rows = deduped
    edge_groups: dict[EdgeKey, list[float]] = {}
    for _, pair, sv, tv in edge_rows:
        edge_groups.setdefault(pair, []).extend((sv, tv))
    edge_values = {
        pair: reducer(values) for pair, values in edge_groups.items()
    }
    return MeasureGraph(
        attributes=tuple(attributes),
        measure_attribute=measure_attribute,
        measure=measure,
        node_values=node_values,
        edge_values=edge_values,
    )


def aggregate_edge_measure(
    graph: TemporalGraph,
    attributes: Sequence[str],
    edge_attribute: str,
    measure: str = "sum",
    distinct: bool = True,
    times: Iterable[Hashable] | None = None,
) -> MeasureGraph:
    """Aggregate a numeric *edge* attribute per grouped edge.

    This is the aggregation the paper's Section 2.2 gestures at with
    "other aggregations may be supported, if edges are attributed as
    well": edges grouped by their endpoints' attribute tuples, weighted
    by a static edge attribute (e.g. the SUM of co-authored papers
    between gender groups, instead of the COUNT of collaborating pairs).

    ``distinct=True`` counts each edge's attribute value once per
    grouped pair; ``distinct=False`` counts it once per appearance (per
    time point the edge is active).
    """
    if graph.edge_attrs is None:
        raise AggregationError("this graph has no edge attributes")
    if measure not in MEASURES:
        raise AggregationError(
            f"unknown measure {measure!r}; choose from {sorted(MEASURES)}"
        )
    if edge_attribute not in {str(c) for c in graph.edge_attrs.col_labels}:
        raise UnknownLabelError(
            f"unknown edge attribute {edge_attribute!r}; graph has "
            f"{graph.edge_attribute_names!r}"
        )
    if times is None:
        window: TimeSet = graph.timeline.labels
    else:
        window = tuple(times)
        for t in window:
            graph.timeline.index_of(t)
    reducer = MEASURES[measure]

    node_table = _node_tuple_table(graph, attributes, window)
    lookup = {
        (node, t): values for node, t, values in node_table.rows
    }
    presence = graph.edge_presence.values
    time_positions = [graph.timeline.index_of(t) for t in window]
    attr_position = graph.edge_attrs.col_position(edge_attribute)
    edge_attr_values = graph.edge_attrs.values

    rows: list[tuple[Any, EdgeKey, Any]] = []
    for row_idx, edge in enumerate(graph.edge_presence.row_labels):
        value = edge_attr_values[row_idx, attr_position]
        if value is None:
            continue
        u, v = edge  # type: ignore[misc]
        for t, t_pos in zip(window, time_positions):
            if not presence[row_idx, t_pos]:
                continue
            source = lookup.get((u, t))
            target = lookup.get((v, t))
            if source is None or target is None:
                continue
            rows.append((edge, (source, target), value))
    if distinct:
        seen: set[tuple[Any, EdgeKey, Any]] = set()
        deduped = []
        for item in rows:
            if item not in seen:
                seen.add(item)
                deduped.append(item)
        rows = deduped
    groups: dict[EdgeKey, list[Any]] = {}
    for _, pair, value in rows:
        groups.setdefault(pair, []).append(value)
    edge_values = {pair: reducer(values) for pair, values in groups.items()}
    return MeasureGraph(
        attributes=tuple(attributes),
        measure_attribute=edge_attribute,
        measure=measure,
        node_values={},
        edge_values=edge_values,
    )
