"""The temporal attributed graph model (Definition 2.1) and its storage.

A graph ``G(V, E, tau_u, tau_e, A)`` is stored exactly as Section 4 of the
paper prescribes:

* **V** — a labeled presence matrix with one row per node and one column
  per time point; ``V[u, t] = 1`` iff ``t`` is in ``tau_u(u)``.
* **E** — the same for edges, rows labeled with ``(u, v)`` pairs.
* **S** — one row per node, one column per *static* attribute.
* **A_i** — one labeled matrix per *time-varying* attribute, rows = nodes,
  columns = time points, ``None`` where the node does not exist (the "-"
  cells of Table 2).

Edges are directed, matching both evaluation datasets (author order in
DBLP, rating precedence in MovieLens).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from ..storage import GraphStorageBackend

from ..frames import LabeledFrame
from .intervals import Timeline
from ..errors import UnknownLabelError, ValidationError

__all__ = ["TemporalGraph", "TemporalGraphBuilder", "GraphIntegrityError"]

NodeId = Hashable
EdgeId = tuple[Hashable, Hashable]


class GraphIntegrityError(ValidationError):
    """The arrays handed to :class:`TemporalGraph` are mutually inconsistent."""


class TemporalGraph:
    """An interval-labeled temporal attributed graph.

    Instances are value-like: operators never mutate their inputs, they
    build new graphs.  Construction validates the cross-array invariants
    (matching node sets, matching time columns, edge endpoints present in
    the node array); set ``validate=False`` to skip the endpoint activity
    check when building very large graphs from a trusted generator.
    """

    __slots__ = (
        "timeline",
        "node_presence",
        "edge_presence",
        "static_attrs",
        "varying_attrs",
        "edge_attrs",
        "_storage_name",
        "_storage",
    )

    def __init__(
        self,
        timeline: Timeline,
        node_presence: LabeledFrame,
        edge_presence: LabeledFrame,
        static_attrs: LabeledFrame,
        varying_attrs: Mapping[str, LabeledFrame],
        validate: bool = True,
        edge_attrs: LabeledFrame | None = None,
        storage: "GraphStorageBackend | str | None" = None,
    ) -> None:
        self.timeline = timeline
        self.node_presence = node_presence
        self.edge_presence = edge_presence
        self.static_attrs = static_attrs
        self.varying_attrs = dict(varying_attrs)
        self.edge_attrs = edge_attrs
        # ``storage`` selects the physical backend (repro.storage): a
        # name, a prebuilt backend instance, or None = the
        # REPRO_STORAGE_BACKEND env default.  The backend itself is
        # built lazily on first ``.storage`` access, so graphs that
        # never leave the dense path pay nothing.
        if storage is None or isinstance(storage, str):
            self._storage_name: str | None = storage
            self._storage: "GraphStorageBackend | None" = None
        else:
            self._storage_name = storage.name
            self._storage = storage
        self._check_schema()
        if validate:
            self._check_integrity()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _check_schema(self) -> None:
        times = self.timeline.labels
        if self.node_presence.col_labels != times:
            raise GraphIntegrityError(
                "node presence columns must equal the timeline labels"
            )
        if self.edge_presence.col_labels != times:
            raise GraphIntegrityError(
                "edge presence columns must equal the timeline labels"
            )
        nodes = self.node_presence.row_labels
        if self.static_attrs.row_labels != nodes:
            raise GraphIntegrityError(
                "static attribute rows must match node presence rows"
            )
        overlap = set(self.static_attrs.col_labels) & set(self.varying_attrs)
        if overlap:
            raise GraphIntegrityError(
                f"attributes declared both static and time-varying: {sorted(map(str, overlap))}"
            )
        for name, frame in self.varying_attrs.items():
            if frame.row_labels != nodes:
                raise GraphIntegrityError(
                    f"time-varying attribute {name!r} rows must match node rows"
                )
            if frame.col_labels != times:
                raise GraphIntegrityError(
                    f"time-varying attribute {name!r} columns must equal the timeline"
                )
        if self.edge_attrs is not None:
            if self.edge_attrs.row_labels != self.edge_presence.row_labels:
                raise GraphIntegrityError(
                    "edge attribute rows must match edge presence rows"
                )

    def _check_integrity(self) -> None:
        node_set = set(self.node_presence.row_labels)
        node_values = self.node_presence.values.astype(bool)
        node_pos = {n: i for i, n in enumerate(self.node_presence.row_labels)}
        for edge, presence in self.edge_presence.iter_rows():
            if not (isinstance(edge, tuple) and len(edge) == 2):
                raise GraphIntegrityError(
                    f"edge labels must be (u, v) tuples, got {edge!r}"
                )
            u, v = edge
            if u not in node_set or v not in node_set:
                raise GraphIntegrityError(
                    f"edge {edge!r} references a node missing from V"
                )
            active = np.asarray(presence, dtype=bool)
            if (active & ~node_values[node_pos[u]]).any() or (
                active & ~node_values[node_pos[v]]
            ).any():
                raise GraphIntegrityError(
                    f"edge {edge!r} is active at a time its endpoints are not"
                )

    # ------------------------------------------------------------------
    # Storage substrate (repro.storage)
    # ------------------------------------------------------------------

    @property
    def storage_name(self) -> str | None:
        """The backend name this graph was pinned to (``None`` = env
        default, resolved lazily)."""
        return self._storage_name

    @property
    def storage(self) -> "GraphStorageBackend":
        """The physical storage backend, built on first access.

        Resolution order: an instance or name passed at construction,
        else the ``REPRO_STORAGE_BACKEND`` environment variable, else
        ``"dense"``.  The instance is cached on the graph; graphs are
        value-like, so the cached backend never goes stale.
        """
        if self._storage is None:
            from ..storage import get_backend, resolve_backend_name

            name = resolve_backend_name(self._storage_name)
            self._storage = get_backend(name).from_graph(self)
            self._storage_name = name
        return self._storage

    def with_storage(
        self, storage: "GraphStorageBackend | str"
    ) -> "TemporalGraph":
        """A new graph over the same frames pinned to ``storage``."""
        return TemporalGraph(
            timeline=self.timeline,
            node_presence=self.node_presence,
            edge_presence=self.edge_presence,
            static_attrs=self.static_attrs,
            varying_attrs=self.varying_attrs,
            validate=False,
            edge_attrs=self.edge_attrs,
            storage=storage,
        )

    def presence_mask(
        self,
        entity: str,
        times: Sequence[Hashable] | None = None,
        mode: str = "any",
    ) -> np.ndarray:
        """Boolean per-entity presence reduction over a window.

        Delegates to the storage backend; ``entity`` is ``"nodes"`` or
        ``"edges"``, ``mode`` is ``"any"``/``"all"``/``"none"`` (the
        union / intersection / difference selection rules).
        """
        return self.storage.presence_mask(entity, times, mode)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All node identifiers, in storage order."""
        return self.node_presence.row_labels

    @property
    def edges(self) -> tuple[EdgeId, ...]:
        """All edge identifiers ``(u, v)``, in storage order."""
        return self.edge_presence.row_labels  # type: ignore[return-value]

    @property
    def n_nodes(self) -> int:
        return self.node_presence.n_rows

    @property
    def n_edges(self) -> int:
        return self.edge_presence.n_rows

    @property
    def static_attribute_names(self) -> tuple[str, ...]:
        return tuple(str(c) for c in self.static_attrs.col_labels)

    @property
    def varying_attribute_names(self) -> tuple[str, ...]:
        return tuple(self.varying_attrs)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Static attributes first, then time-varying ones."""
        return self.static_attribute_names + self.varying_attribute_names

    @property
    def edge_attribute_names(self) -> tuple[str, ...]:
        """Names of the (static) edge attributes; empty when none exist."""
        if self.edge_attrs is None:
            return ()
        return tuple(str(c) for c in self.edge_attrs.col_labels)

    def edge_attribute_value(self, edge: EdgeId, attribute: str) -> Any:
        """The value of one static edge attribute on one edge."""
        if self.edge_attrs is None:
            raise UnknownLabelError("this graph has no edge attributes")
        return self.edge_attrs.cell(edge, attribute)

    def is_static(self, attribute: str) -> bool:
        """Whether ``attribute`` is static (raises if unknown)."""
        if attribute in set(self.static_attribute_names):
            return True
        if attribute in self.varying_attrs:
            return False
        raise UnknownLabelError(
            f"unknown attribute {attribute!r}; graph has {self.attribute_names!r}"
        )

    def node_times(self, node: NodeId) -> tuple[Hashable, ...]:
        """``tau_u(u)``: the time points at which a node exists."""
        row = self.node_presence.row(node)
        return tuple(
            t for t, flag in zip(self.timeline.labels, row) if flag
        )

    def edge_times(self, edge: EdgeId) -> tuple[Hashable, ...]:
        """``tau_e(e)``: the time points at which an edge exists."""
        row = self.edge_presence.row(edge)
        return tuple(
            t for t, flag in zip(self.timeline.labels, row) if flag
        )

    def attribute_value(self, node: NodeId, attribute: str, time: Hashable | None = None) -> Any:
        """``A_i(u, t)`` — ``time`` is required for time-varying attributes."""
        if self.is_static(attribute):
            return self.static_attrs.cell(node, attribute)
        if time is None:
            raise ValidationError(
                f"attribute {attribute!r} is time-varying; a time point is required"
            )
        return self.varying_attrs[attribute].cell(node, time)

    # ------------------------------------------------------------------
    # Per-time statistics (Tables 3 / 4)
    # ------------------------------------------------------------------

    def nodes_at(self, time: Hashable) -> tuple[NodeId, ...]:
        """Nodes existing at one time point."""
        return self.node_presence.rows_any([time])

    def edges_at(self, time: Hashable) -> tuple[EdgeId, ...]:
        """Edges existing at one time point."""
        return self.edge_presence.rows_any([time])  # type: ignore[return-value]

    def n_nodes_at(self, time: Hashable) -> int:
        return int(self.node_presence.any_mask([time]).sum())

    def n_edges_at(self, time: Hashable) -> int:
        return int(self.edge_presence.any_mask([time]).sum())

    def size_table(self) -> list[tuple[Hashable, int, int]]:
        """``(time point, #nodes, #edges)`` rows — the layout of the
        paper's Tables 3 and 4."""
        return [
            (t, self.n_nodes_at(t), self.n_edges_at(t))
            for t in self.timeline.labels
        ]

    # ------------------------------------------------------------------
    # Restriction (shared by the temporal operators)
    # ------------------------------------------------------------------

    def restricted(
        self,
        nodes: Sequence[NodeId],
        edges: Sequence[EdgeId],
        times: Sequence[Hashable],
        validate: bool = False,
    ) -> "TemporalGraph":
        """A new graph keeping the given nodes, edges and time columns.

        The temporal operators of Section 2.1 all reduce to choosing a
        node mask, an edge mask and a time window; this method applies the
        choice consistently across every stored array (presence matrices,
        static and time-varying attribute arrays).
        """
        timeline = Timeline(times)
        return TemporalGraph(
            timeline=timeline,
            node_presence=self.node_presence.select_rows(nodes).restrict_cols(times),
            edge_presence=self.edge_presence.select_rows(edges).restrict_cols(times),
            static_attrs=self.static_attrs.select_rows(nodes),
            varying_attrs={
                name: frame.select_rows(nodes).restrict_cols(times)
                for name, frame in self.varying_attrs.items()
            },
            validate=validate,
            edge_attrs=(
                self.edge_attrs.select_rows(edges)
                if self.edge_attrs is not None
                else None
            ),
            # Propagate the backend *selection*, never the instance: the
            # restricted graph's arrays differ, so it builds its own.
            storage=self._storage_name,
        )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalGraph):
            return NotImplemented
        return (
            self.timeline == other.timeline
            and self.node_presence == other.node_presence
            and self.edge_presence == other.edge_presence
            and self.static_attrs == other.static_attrs
            and set(self.varying_attrs) == set(other.varying_attrs)
            and all(
                self.varying_attrs[name] == other.varying_attrs[name]
                for name in self.varying_attrs
            )
            and self.edge_attrs == other.edge_attrs
        )

    def __repr__(self) -> str:
        return (
            f"TemporalGraph({self.n_nodes} nodes, {self.n_edges} edges, "
            f"{len(self.timeline)} time points, "
            f"attrs={list(self.attribute_names)!r})"
        )


class TemporalGraphBuilder:
    """Incremental construction of a :class:`TemporalGraph`.

    Dataset generators and loaders accumulate nodes/edges event by event;
    the builder assembles the presence matrices and attribute arrays in
    one pass at :meth:`build` time.

    Examples
    --------
    >>> builder = TemporalGraphBuilder([2000, 2001], static=["gender"],
    ...                                varying=["pubs"])
    >>> builder.add_node("u1", {"gender": "m"})
    >>> builder.set_node_presence("u1", 2000, pubs=3)
    >>> graph = builder.build()
    >>> graph.attribute_value("u1", "pubs", 2000)
    3
    """

    def __init__(
        self,
        times: Sequence[Hashable],
        static: Sequence[str] = (),
        varying: Sequence[str] = (),
        edge_static: Sequence[str] = (),
        allow_self_loops: bool = False,
    ) -> None:
        self.timeline = Timeline(times)
        self._static_names = tuple(static)
        self._varying_names = tuple(varying)
        self._edge_static_names = tuple(edge_static)
        self._allow_self_loops = allow_self_loops
        self._nodes: dict[NodeId, dict[str, Any]] = {}
        self._node_presence: dict[NodeId, set[Hashable]] = {}
        self._varying_values: dict[str, dict[tuple[NodeId, Hashable], Any]] = {
            name: {} for name in self._varying_names
        }
        self._edges: dict[EdgeId, set[Hashable]] = {}
        self._edge_values: dict[EdgeId, dict[str, Any]] = {}

    def add_node(self, node: NodeId, static: Mapping[str, Any] | None = None) -> None:
        """Register a node and its static attribute values.

        Re-adding an existing node merges the static values (later wins).
        """
        static = dict(static or {})
        unknown = set(static) - set(self._static_names)
        if unknown:
            raise UnknownLabelError(f"unknown static attributes: {sorted(unknown)}")
        record = self._nodes.setdefault(node, {})
        record.update(static)
        self._node_presence.setdefault(node, set())

    def set_node_presence(
        self, node: NodeId, time: Hashable, **varying: Any
    ) -> None:
        """Mark a node present at ``time`` and record its time-varying
        attribute values there."""
        if node not in self._nodes:
            raise UnknownLabelError(f"add_node({node!r}) before setting presence")
        self.timeline.index_of(time)  # validate
        self._node_presence[node].add(time)
        unknown = set(varying) - set(self._varying_names)
        if unknown:
            raise UnknownLabelError(f"unknown time-varying attributes: {sorted(unknown)}")
        for name, value in varying.items():
            self._varying_values[name][(node, time)] = value

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        times: Iterable[Hashable] = (),
        static: Mapping[str, Any] | None = None,
    ) -> None:
        """Register a directed edge and (optionally) presence times.

        Endpoints must already exist as nodes; each presence time must be
        a presence time of both endpoints (kept as a hard invariant so the
        evolution semantics stay well-defined).  ``static`` carries edge
        attribute values for the declared ``edge_static`` attributes.
        """
        if u == v and not self._allow_self_loops:
            raise ValidationError(f"self loops are not allowed: {(u, v)!r}")
        for endpoint in (u, v):
            if endpoint not in self._nodes:
                raise UnknownLabelError(f"edge endpoint {endpoint!r} is not a node")
        static = dict(static or {})
        unknown = set(static) - set(self._edge_static_names)
        if unknown:
            raise UnknownLabelError(f"unknown edge attributes: {sorted(unknown)}")
        record = self._edge_values.setdefault((u, v), {})
        record.update(static)
        presence = self._edges.setdefault((u, v), set())
        for time in times:
            self.timeline.index_of(time)
            if time not in self._node_presence[u] or time not in self._node_presence[v]:
                raise ValidationError(
                    f"edge {(u, v)!r} cannot be active at {time!r}: "
                    "an endpoint is absent"
                )
            presence.add(time)

    def set_edge_presence(self, u: NodeId, v: NodeId, time: Hashable) -> None:
        """Mark an existing edge present at one more time point."""
        if (u, v) not in self._edges:
            raise UnknownLabelError(f"add_edge({u!r}, {v!r}) before setting presence")
        self.add_edge(u, v, [time])

    def build(self, validate: bool = True) -> TemporalGraph:
        """Assemble the temporal graph from everything recorded so far."""
        times = self.timeline.labels
        node_ids = tuple(self._nodes)
        node_values = np.zeros((len(node_ids), len(times)), dtype=np.uint8)
        time_pos = {t: i for i, t in enumerate(times)}
        for row, node in enumerate(node_ids):
            for t in self._node_presence[node]:
                node_values[row, time_pos[t]] = 1
        node_presence = LabeledFrame(node_ids, times, node_values)

        static_values = np.empty(
            (len(node_ids), len(self._static_names)), dtype=object
        )
        for row, node in enumerate(node_ids):
            for col, name in enumerate(self._static_names):
                static_values[row, col] = self._nodes[node].get(name)
        static_attrs = LabeledFrame(node_ids, self._static_names, static_values)

        node_pos = {n: i for i, n in enumerate(node_ids)}
        varying_attrs: dict[str, LabeledFrame] = {}
        for name in self._varying_names:
            values = np.full((len(node_ids), len(times)), None, dtype=object)
            for (node, t), value in self._varying_values[name].items():
                values[node_pos[node], time_pos[t]] = value
            varying_attrs[name] = LabeledFrame(node_ids, times, values)

        edge_ids = tuple(self._edges)
        edge_values = np.zeros((len(edge_ids), len(times)), dtype=np.uint8)
        for row, edge in enumerate(edge_ids):
            for t in self._edges[edge]:
                edge_values[row, time_pos[t]] = 1
        edge_presence = LabeledFrame(edge_ids, times, edge_values)

        edge_attrs: LabeledFrame | None = None
        if self._edge_static_names:
            attr_values = np.empty(
                (len(edge_ids), len(self._edge_static_names)), dtype=object
            )
            for row, edge in enumerate(edge_ids):
                record = self._edge_values.get(edge, {})
                for col, name in enumerate(self._edge_static_names):
                    attr_values[row, col] = record.get(name)
            edge_attrs = LabeledFrame(
                edge_ids, self._edge_static_names, attr_values
            )

        return TemporalGraph(
            timeline=self.timeline,
            node_presence=node_presence,
            edge_presence=edge_presence,
            static_attrs=static_attrs,
            varying_attrs=varying_attrs,
            validate=validate,
            edge_attrs=edge_attrs,
        )
