"""Attribute aggregation of temporal graphs (Definition 2.6, Algorithm 2).

Aggregation groups nodes by the values of one or more attributes and
builds weighted aggregate nodes/edges with COUNT weights.  Two variants
exist (Section 2.2):

* **distinct** (``DIST``) — every appearance of an attribute tuple *on the
  same node* counts once; duplicates are removed before counting
  (Algorithm 2's ``deduplicate`` steps);
* **non-distinct** (``ALL``) — every appearance at every time point
  counts.

When every aggregation attribute is static the expensive unpivot /
deduplicate pipeline is unnecessary, and the implementation switches to
the fast path of Section 4.2 (direct grouping; for ALL, presence-column
counts are summed instead of counting long-format rows).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..frames import Table
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span
from ..parallel import Executor, InlineExecutor, get_executor, plan_chunks
from .graph import TemporalGraph
from .intervals import TimeSet
from .operators import ordered_times
from ..errors import AggregationError, UnknownLabelError

__all__ = [
    "AggregateGraph",
    "aggregate",
    "aggregate_general",
    "check_no_dangling_edges",
    "validated_window",
    "AttributeTuple",
    "EdgeKey",
]


def check_no_dangling_edges(graph: TemporalGraph) -> None:
    """Raise :class:`AggregationError` if any edge lacks a node row.

    All three aggregation engines share this contract: a dangling edge is
    a structural defect of the graph and fails loudly, independently of
    whether the edge happens to be present inside the aggregation window.
    (The differential fuzz oracle relies on the engines agreeing on
    errors as much as on weights.)

    The scan goes through the storage backend's ``adjacency_scan``, so
    it works on any registered layout and names the backend it ran on.
    """
    backend = graph.storage
    for edge, u_row, v_row in backend.adjacency_scan():
        if u_row < 0 or v_row < 0:
            u, v = edge  # type: ignore[misc]
            missing = u if u_row < 0 else v
            raise AggregationError(
                f"edge {edge!r} references node {missing!r} absent from "
                "node presence; the graph has dangling edges "
                f"(storage backend {backend.name!r})"
            )

#: One aggregate node: the tuple of attribute values that defines it.
AttributeTuple = tuple[Any, ...]
#: One aggregate edge: source tuple -> target tuple.
EdgeKey = tuple[AttributeTuple, AttributeTuple]


@dataclass(frozen=True)
class AggregateGraph:
    """A weighted aggregate graph ``G'(V', E', W_V', W_E', A')``.

    ``node_weights`` maps each distinct attribute tuple to its COUNT
    weight; ``edge_weights`` maps ``(source tuple, target tuple)`` pairs.
    ``distinct`` records which variant produced the weights, because only
    non-distinct aggregates may be summed across time (T-distributivity,
    Section 4.3).
    """

    attributes: tuple[str, ...]
    node_weights: Mapping[AttributeTuple, int]
    edge_weights: Mapping[EdgeKey, int]
    distinct: bool = True

    # ------------------------------------------------------------------
    # Reading weights
    # ------------------------------------------------------------------

    @property
    def n_aggregate_nodes(self) -> int:
        return len(self.node_weights)

    @property
    def n_aggregate_edges(self) -> int:
        return len(self.edge_weights)

    def node_weight(self, key: Sequence[Any]) -> int:
        """Weight of one aggregate node (0 when the tuple never occurs)."""
        return self.node_weights.get(tuple(key), 0)

    def edge_weight(self, source: Sequence[Any], target: Sequence[Any]) -> int:
        """Weight of one aggregate edge (0 when the pair never occurs)."""
        return self.edge_weights.get((tuple(source), tuple(target)), 0)

    def total_node_weight(self) -> int:
        return sum(self.node_weights.values())

    def total_edge_weight(self) -> int:
        return sum(self.edge_weights.values())

    # ------------------------------------------------------------------
    # Derivation without the base graph (Section 4.3)
    # ------------------------------------------------------------------

    def rollup(self, attributes: Sequence[str]) -> "AggregateGraph":
        """Aggregate on a subset of this graph's attributes.

        COUNT is D-distributive w.r.t. top-down aggregation: grouping this
        graph's entities by the projected tuples and summing weights gives
        the aggregate on the attribute subset without touching the
        original temporal graph.  ``attributes`` must be a subset of this
        aggregate's attributes (any order; output tuples follow the
        requested order).
        """
        positions = []
        for name in attributes:
            try:
                positions.append(self.attributes.index(name))
            except ValueError:
                raise UnknownLabelError(
                    f"attribute {name!r} is not part of this aggregate "
                    f"({self.attributes!r})"
                ) from None
        node_weights: dict[AttributeTuple, int] = {}
        for key, weight in self.node_weights.items():
            projected = tuple(key[p] for p in positions)
            node_weights[projected] = node_weights.get(projected, 0) + weight
        edge_weights: dict[EdgeKey, int] = {}
        for (source, target), weight in self.edge_weights.items():
            projected = (
                tuple(source[p] for p in positions),
                tuple(target[p] for p in positions),
            )
            edge_weights[projected] = edge_weights.get(projected, 0) + weight
        return AggregateGraph(
            tuple(attributes), node_weights, edge_weights, distinct=self.distinct
        )

    def combine(self, other: "AggregateGraph") -> "AggregateGraph":
        """Pointwise weight sum — the T-distributive roll-up of Section 4.3.

        Valid only for non-distinct aggregates over the same attributes:
        summing per-time-point ALL aggregates yields the ALL aggregate of
        the union of the time points.  Distinct aggregates are rejected
        because distinct nodes cannot be identified across summands.
        """
        if self.attributes != other.attributes:
            raise AggregationError(
                f"cannot combine aggregates on {self.attributes!r} and "
                f"{other.attributes!r}"
            )
        if self.distinct or other.distinct:
            raise AggregationError(
                "distinct aggregates are not T-distributive; "
                "recompute from the temporal graph instead"
            )
        node_weights = dict(self.node_weights)
        for key, weight in other.node_weights.items():
            node_weights[key] = node_weights.get(key, 0) + weight
        edge_weights = dict(self.edge_weights)
        for key, weight in other.edge_weights.items():
            edge_weights[key] = edge_weights.get(key, 0) + weight
        return AggregateGraph(self.attributes, node_weights, edge_weights, distinct=False)

    def __add__(self, other: "AggregateGraph") -> "AggregateGraph":
        return self.combine(other)

    # ------------------------------------------------------------------
    # Comparison (the differential oracle's unit of observation)
    # ------------------------------------------------------------------

    def diff(self, other: "AggregateGraph") -> tuple[str, ...]:
        """Human-readable differences from another aggregate.

        Empty when the two are identical in every observable way
        (attributes, variant, and every node/edge weight).  Weight maps
        are compared key by key, so a mismatch names the first divergent
        aggregate entity instead of just "not equal" — this is what the
        differential fuzz oracle reports when two engines disagree.
        """
        problems: list[str] = []
        if self.attributes != other.attributes:
            problems.append(
                f"attributes differ: {self.attributes!r} != {other.attributes!r}"
            )
        if self.distinct != other.distinct:
            problems.append(
                f"variant differs: distinct={self.distinct} != {other.distinct}"
            )
        for kind, ours, theirs in (
            ("node", self.node_weights, other.node_weights),
            ("edge", self.edge_weights, other.edge_weights),
        ):
            for key in sorted(set(ours) | set(theirs), key=repr):
                a, b = ours.get(key, 0), theirs.get(key, 0)
                if a != b:
                    problems.append(f"{kind} weight {key!r}: {a} != {b}")
        return tuple(problems)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def to_tables(self) -> tuple[Table, Table]:
        """``(nodes, edges)`` tables sorted by descending weight."""
        nodes = Table(tuple(self.attributes) + ("weight",))
        for key, weight in sorted(
            self.node_weights.items(), key=lambda item: (-item[1], str(item[0]))
        ):
            nodes.append(key + (weight,))
        edges = Table(("source", "target", "weight"))
        for (source, target), weight in sorted(
            self.edge_weights.items(), key=lambda item: (-item[1], str(item[0]))
        ):
            edges.append((source, target, weight))
        return nodes, edges

    def __repr__(self) -> str:
        mode = "DIST" if self.distinct else "ALL"
        return (
            f"AggregateGraph({mode} on {self.attributes!r}: "
            f"{self.n_aggregate_nodes} nodes, {self.n_aggregate_edges} edges)"
        )


def _split_attributes(
    graph: TemporalGraph, attributes: Sequence[str]
) -> tuple[list[str], list[str]]:
    """Partition into (static, varying), validating names."""
    static, varying = [], []
    for name in attributes:
        if graph.is_static(name):
            static.append(name)
        else:
            varying.append(name)
    return static, varying


def _node_tuple_table(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    rows: Iterable[int] | None = None,
) -> Table:
    """The long table of ``(node, t, attribute tuple)`` appearances.

    One row per (node, time point) where the node is present, carrying the
    node's attribute tuple at that time — the merged, unpivoted ``A'`` of
    Algorithm 2 (before any deduplication).  ``rows`` restricts the scan
    to a subset of node row indices (the parallel partials' unit of
    work); ``None`` scans every node.
    """
    static_names, varying_names = _split_attributes(graph, attributes)
    time_positions = [graph.timeline.index_of(t) for t in times]
    static_positions = {
        name: graph.static_attrs.col_position(name) for name in static_names
    }
    rows_out: list[tuple[Any, ...]] = []
    presence = graph.node_presence.values
    varying_values = {
        name: graph.varying_attrs[name].values for name in varying_names
    }
    static_values = graph.static_attrs.values
    node_labels = graph.node_presence.row_labels
    row_indices = range(len(node_labels)) if rows is None else rows
    for row_idx in row_indices:
        node = node_labels[row_idx]
        static_part = {
            name: static_values[row_idx, pos]
            for name, pos in static_positions.items()
        }
        for t, t_pos in zip(times, time_positions):
            if not presence[row_idx, t_pos]:
                continue
            values = tuple(
                static_part[name]
                if name in static_part
                else varying_values[name][row_idx, t_pos]
                for name in attributes
            )
            rows_out.append((node, t, values))
    return Table(("id", "t", "tuple"), rows_out)


def _aggregate_general(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    distinct: bool,
) -> AggregateGraph:
    """Algorithm 2: the general path used when a time-varying attribute
    participates (also correct, just slower, for static-only input)."""
    metrics = get_metrics()
    with trace_span("aggregate.unpivot"):
        node_table = _node_tuple_table(graph, attributes, times)
    metrics.inc("algo2.unpivot_rows", len(node_table))
    lookup: dict[tuple[Any, Any], AttributeTuple] = {
        (node, t): values for node, t, values in node_table.rows
    }
    if distinct:
        with trace_span("aggregate.dedup"):
            node_table = node_table.deduplicate(["id", "tuple"])
        metrics.inc("algo2.dedup_rows", len(node_table))
    with trace_span("aggregate.group_count"):
        node_weights = {
            key[0]: count
            for key, count in node_table.groupby_count(["tuple"]).items()
        }
    metrics.inc("algo2.group_count_groups", len(node_weights))

    with trace_span("aggregate.merge"):
        edge_rows: list[tuple[Any, ...]] = []
        edge_presence = graph.edge_presence.values
        time_positions = [graph.timeline.index_of(t) for t in times]
        check_no_dangling_edges(graph)
        for row_idx, edge in enumerate(graph.edge_presence.row_labels):
            u, v = edge  # type: ignore[misc]
            for t, t_pos in zip(times, time_positions):
                if not edge_presence[row_idx, t_pos]:
                    continue
                source = lookup.get((u, t))
                target = lookup.get((v, t))
                if source is None or target is None:
                    continue  # endpoint absent at t; cannot happen on valid graphs
                edge_rows.append((edge, source, target))
        edge_table = Table(("edge", "source", "target"), edge_rows)
    metrics.inc("algo2.merge_rows", len(edge_table))
    if distinct:
        with trace_span("aggregate.dedup"):
            edge_table = edge_table.deduplicate(["edge", "source", "target"])
        metrics.inc("algo2.dedup_rows", len(edge_table))
    with trace_span("aggregate.group_count"):
        edge_weights = {
            (key[0], key[1]): count
            for key, count in edge_table.groupby_count(["source", "target"]).items()
        }
    metrics.inc("algo2.group_count_groups", len(edge_weights))
    return AggregateGraph(tuple(attributes), node_weights, edge_weights, distinct=distinct)


def _aggregate_static_fast(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    distinct: bool,
) -> AggregateGraph:
    """Section 4.2's optimization for static-only attribute lists.

    No unpivoting and no deduplication: a node has one tuple regardless of
    time.  DIST counts qualifying nodes/edges once; ALL weights each by
    its number of presence columns inside ``times`` and sums.
    """
    check_no_dangling_edges(graph)
    positions = [graph.static_attrs.col_position(name) for name in attributes]
    static_values = graph.static_attrs.values
    node_tuples: dict[Hashable, AttributeTuple] = {
        node: tuple(static_values[i, p] for p in positions)
        for i, node in enumerate(graph.node_presence.row_labels)
    }
    node_counts = graph.node_presence.count_nonzero_by_row(times)
    node_weights: dict[AttributeTuple, int] = {}
    for node, appearances in node_counts.items():
        if appearances == 0:
            continue
        contribution = 1 if distinct else appearances
        key = node_tuples[node]
        node_weights[key] = node_weights.get(key, 0) + contribution

    edge_counts = graph.edge_presence.count_nonzero_by_row(times)
    edge_weights: dict[EdgeKey, int] = {}
    for edge, appearances in edge_counts.items():
        if appearances == 0:
            continue
        u, v = edge  # type: ignore[misc]
        contribution = 1 if distinct else appearances
        key = (node_tuples[u], node_tuples[v])
        edge_weights[key] = edge_weights.get(key, 0) + contribution
    return AggregateGraph(tuple(attributes), node_weights, edge_weights, distinct=distinct)


# ----------------------------------------------------------------------
# Parallel partials
#
# Both engines decompose over *entity rows*: a node's (or edge's)
# contribution to the weight maps depends only on its own presence row
# and attribute values, and DIST deduplication is always intra-entity
# (``["id", "tuple"]`` / ``["edge", "source", "target"]`` both carry the
# entity label).  Partitioning the row range therefore never splits a
# dedup group across chunks, and partial weight dicts merge by plain
# summation for DIST and ALL alike — which is what makes the parallel
# result bit-identical to the serial one.
# ----------------------------------------------------------------------

#: ``(graph, attributes, window, distinct, engine)`` — the read-only
#: payload shared with every partial worker.
_PartialPayload = tuple[TemporalGraph, tuple[str, ...], TimeSet, bool, str]
#: ``(kind, start, stop)`` — one slice of node or edge row indices.
_PartialTask = tuple[str, int, int]


def _general_node_partial(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    distinct: bool,
    start: int,
    stop: int,
) -> dict[AttributeTuple, int]:
    """Algorithm 2's node pipeline restricted to rows ``[start, stop)``."""
    metrics = get_metrics()
    table = _node_tuple_table(graph, attributes, times, rows=range(start, stop))
    metrics.inc("algo2.unpivot_rows", len(table))
    if distinct:
        table = table.deduplicate(["id", "tuple"])
        metrics.inc("algo2.dedup_rows", len(table))
    return {
        key[0]: count for key, count in table.groupby_count(["tuple"]).items()
    }


def _general_edge_partial(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    distinct: bool,
    start: int,
    stop: int,
) -> dict[EdgeKey, int]:
    """Algorithm 2's merge/count pipeline restricted to edge rows.

    The ``(node, t) -> tuple`` lookup is rebuilt from just the chunk's
    endpoint node rows, so a chunk's cost scales with its own edges
    rather than with the whole graph.
    """
    metrics = get_metrics()
    edge_labels = graph.edge_presence.row_labels
    endpoint_rows: set[int] = set()
    for row_idx in range(start, stop):
        u, v = edge_labels[row_idx]  # type: ignore[misc]
        endpoint_rows.add(graph.node_presence.row_position(u))
        endpoint_rows.add(graph.node_presence.row_position(v))
    node_table = _node_tuple_table(
        graph, attributes, times, rows=sorted(endpoint_rows)
    )
    lookup: dict[tuple[Any, Any], AttributeTuple] = {
        (node, t): values for node, t, values in node_table.rows
    }
    edge_presence = graph.edge_presence.values
    time_positions = [graph.timeline.index_of(t) for t in times]
    edge_rows: list[tuple[Any, ...]] = []
    for row_idx in range(start, stop):
        edge = edge_labels[row_idx]
        u, v = edge  # type: ignore[misc]
        for t, t_pos in zip(times, time_positions):
            if not edge_presence[row_idx, t_pos]:
                continue
            source = lookup.get((u, t))
            target = lookup.get((v, t))
            if source is None or target is None:
                continue  # endpoint absent at t; cannot happen on valid graphs
            edge_rows.append((edge, source, target))
    table = Table(("edge", "source", "target"), edge_rows)
    metrics.inc("algo2.merge_rows", len(table))
    if distinct:
        table = table.deduplicate(["edge", "source", "target"])
        metrics.inc("algo2.dedup_rows", len(table))
    return {
        (key[0], key[1]): count
        for key, count in table.groupby_count(["source", "target"]).items()
    }


def _static_node_partial(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    distinct: bool,
    start: int,
    stop: int,
) -> dict[AttributeTuple, int]:
    """The Section 4.2 node fast path restricted to rows ``[start, stop)``."""
    positions = [graph.static_attrs.col_position(name) for name in attributes]
    static_values = graph.static_attrs.values
    time_positions = [graph.node_presence.col_position(t) for t in times]
    block = graph.node_presence.values[start:stop][:, time_positions]
    counts = np.count_nonzero(block.astype(bool), axis=1)
    weights: dict[AttributeTuple, int] = {}
    for offset in range(stop - start):
        appearances = int(counts[offset])
        if appearances == 0:
            continue
        row_idx = start + offset
        key = tuple(static_values[row_idx, p] for p in positions)
        weights[key] = weights.get(key, 0) + (1 if distinct else appearances)
    return weights


def _static_edge_partial(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    distinct: bool,
    start: int,
    stop: int,
) -> dict[EdgeKey, int]:
    """The Section 4.2 edge fast path restricted to rows ``[start, stop)``."""
    positions = [graph.static_attrs.col_position(name) for name in attributes]
    static_values = graph.static_attrs.values
    node_frame = graph.node_presence
    edge_labels = graph.edge_presence.row_labels
    time_positions = [graph.edge_presence.col_position(t) for t in times]
    block = graph.edge_presence.values[start:stop][:, time_positions]
    counts = np.count_nonzero(block.astype(bool), axis=1)
    tuple_cache: dict[Hashable, AttributeTuple] = {}

    def node_tuple(node: Hashable) -> AttributeTuple:
        cached = tuple_cache.get(node)
        if cached is None:
            row = node_frame.row_position(node)
            cached = tuple_cache[node] = tuple(
                static_values[row, p] for p in positions
            )
        return cached

    weights: dict[EdgeKey, int] = {}
    for offset in range(stop - start):
        appearances = int(counts[offset])
        if appearances == 0:
            continue
        u, v = edge_labels[start + offset]  # type: ignore[misc]
        key = (node_tuple(u), node_tuple(v))
        weights[key] = weights.get(key, 0) + (1 if distinct else appearances)
    return weights


def _partial_weights(
    payload: _PartialPayload, task: _PartialTask
) -> dict[Any, int]:
    """Chunk worker: the weights contributed by one slice of entity rows.

    Module-level (and closed over nothing) so the process pool can pickle
    it; :class:`~repro.parallel.InlineExecutor` runs the very same
    function, which is what the parity suite leans on.
    """
    graph, attributes, times, distinct, engine = payload
    kind, start, stop = task
    if engine == "general":
        if kind == "node":
            return _general_node_partial(
                graph, attributes, times, distinct, start, stop
            )
        return _general_edge_partial(
            graph, attributes, times, distinct, start, stop
        )
    if kind == "node":
        return _static_node_partial(graph, attributes, times, distinct, start, stop)
    return _static_edge_partial(graph, attributes, times, distinct, start, stop)


def _aggregate_parallel(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
    distinct: bool,
    engine: str,
    executor: Executor,
) -> AggregateGraph:
    """Fan the partial worker out over entity-row slices and merge.

    Structural validation happens parent-side before dispatch so a
    dangling edge raises the same :class:`AggregationError` whether or
    not a pool is in play.
    """
    check_no_dangling_edges(graph)
    n_nodes = len(graph.node_presence.row_labels)
    n_edges = len(graph.edge_presence.row_labels)
    tasks: list[_PartialTask] = [
        ("node", chunk.start, chunk.stop)
        for chunk in plan_chunks(n_nodes, executor.workers)
    ]
    tasks += [
        ("edge", chunk.start, chunk.stop)
        for chunk in plan_chunks(n_edges, executor.workers)
    ]
    payload: _PartialPayload = (graph, tuple(attributes), times, distinct, engine)
    partials = executor.map(_partial_weights, tasks, payload)
    node_weights: dict[AttributeTuple, int] = {}
    edge_weights: dict[EdgeKey, int] = {}
    for (kind, _, _), partial in zip(tasks, partials):
        target: dict[Any, int] = node_weights if kind == "node" else edge_weights
        for key, weight in partial.items():
            target[key] = target.get(key, 0) + weight
    if engine == "general":
        get_metrics().inc(
            "algo2.group_count_groups", len(node_weights) + len(edge_weights)
        )
    return AggregateGraph(
        tuple(attributes), node_weights, edge_weights, distinct=distinct
    )


def aggregate(
    graph: TemporalGraph,
    attributes: Sequence[str],
    distinct: bool = True,
    times: Iterable[Hashable] | None = None,
    *,
    parallelism: int | str | None = None,
) -> AggregateGraph:
    """Aggregate a temporal graph on the given attributes (Definition 2.6).

    Parameters
    ----------
    graph:
        The temporal graph (typically the output of a temporal operator).
    attributes:
        Attribute names to group by, static and/or time-varying, in the
        order the output tuples should carry them.
    distinct:
        ``True`` for DIST semantics, ``False`` for ALL (Section 2.2).
    times:
        Time points to aggregate over; defaults to the graph's whole
        timeline (which, for operator outputs, is the operator's interval).
    parallelism:
        ``None`` (ambient default — see :mod:`repro.parallel`), a worker
        count, or ``"auto"``.  Implicit defaults only engage the pool
        when the graph is large enough to amortize startup; the result
        is bit-identical either way.

    Returns
    -------
    AggregateGraph
        COUNT-weighted aggregate nodes and edges.
    """
    window = validated_window(graph, attributes, times)
    _, varying = _split_attributes(graph, attributes)
    metrics = get_metrics()
    metrics.inc("aggregate.calls")
    engine = "general" if varying else "static_fast"
    n_entities = len(graph.node_presence.row_labels) + len(
        graph.edge_presence.row_labels
    )
    executor = get_executor(
        parallelism, task_hint=n_entities * max(1, len(window))
    )
    with trace_span(
        "aggregate",
        engine=engine,
        distinct=distinct,
        attributes=tuple(attributes),
        n_times=len(window),
        workers=executor.workers,
    ):
        if not isinstance(executor, InlineExecutor):
            return _aggregate_parallel(
                graph, attributes, window, distinct, engine, executor
            )
        if varying:
            return _aggregate_general(graph, attributes, window, distinct)
        return _aggregate_static_fast(graph, attributes, window, distinct)


def validated_window(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: Iterable[Hashable] | None,
) -> TimeSet:
    """Shared argument validation for every aggregation engine.

    Checks the attribute list is non-empty and duplicate-free, and
    normalizes ``times`` to timeline order without duplicates: repeated
    or unordered time points must not change weights (ALL mode would
    otherwise double-count every repeated point).
    """
    if not attributes:
        raise AggregationError("aggregation needs at least one attribute")
    if len(set(attributes)) != len(attributes):
        raise AggregationError(f"duplicate aggregation attributes: {attributes!r}")
    if times is None:
        return graph.timeline.labels
    return ordered_times(graph, times)


def aggregate_general(
    graph: TemporalGraph,
    attributes: Sequence[str],
    distinct: bool = True,
    times: Iterable[Hashable] | None = None,
) -> AggregateGraph:
    """Algorithm 2's general path, forced even for static-only attributes.

    :func:`aggregate` switches to the Section 4.2 fast path when every
    aggregation attribute is static; this entry point always runs the
    unpivot / merge / deduplicate / group-count pipeline instead.  Both
    must produce identical aggregates — the differential fuzz oracle
    (:mod:`repro.testing`) runs workloads through this engine, the
    dispatching one, and :func:`repro.core.aggregate_fast` and diffs the
    results bit-exactly.
    """
    window = validated_window(graph, attributes, times)
    _split_attributes(graph, attributes)  # validates names
    get_metrics().inc("aggregate.calls")
    with trace_span(
        "aggregate",
        engine="general_forced",
        distinct=distinct,
        attributes=tuple(attributes),
        n_times=len(window),
    ):
        return _aggregate_general(graph, attributes, window, distinct)
