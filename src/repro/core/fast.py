"""A vectorized aggregation engine.

:func:`repro.core.aggregate` transcribes the paper's Algorithm 2
literally (unpivot / merge / deduplicate / group-count over relational
tables) — that fidelity is the point of the default engine, and it is
what the Figure 5-9 benchmarks time.  This module provides the engine a
production deployment would actually run: attribute values are
factorized to integer codes once, appearances become flat numpy index
arrays, and DIST/ALL counting reduces to ``numpy.unique`` and
``numpy.bincount``.

The two engines are exchangeable: ``aggregate_fast`` returns the same
:class:`~repro.core.AggregateGraph` (asserted across the test suite and
hypothesis properties), and the ``bench_ablations`` suite measures the
gap (roughly an order of magnitude on the evaluation graphs).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import Any, Protocol

import numpy as np

from .aggregation import (
    AggregateGraph,
    AttributeTuple,
    EdgeKey,
    _split_attributes,
    aggregate,
    aggregate_general,
    validated_window,
)
from .graph import TemporalGraph
from .intervals import TimeSet
from ..errors import AggregationError
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span

__all__ = ["aggregate_fast", "AggregationEngine", "aggregation_engines"]


class AggregationEngine(Protocol):
    """The call signature every interchangeable aggregation engine has."""

    def __call__(
        self,
        graph: TemporalGraph,
        attributes: Sequence[str],
        distinct: bool = True,
        times: Iterable[Hashable] | None = None,
    ) -> AggregateGraph: ...

#: Code reserved for "no value" cells so absent appearances never collide
#: with a real attribute value.
_MISSING = 0


def _factorize_static(
    graph: TemporalGraph, name: str, n_times: int
) -> tuple[np.ndarray, list[Any]]:
    """Integer codes (n_nodes x n_times) for a static attribute."""
    column = graph.static_attrs.column(name)
    mapping: dict[Any, int] = {}
    codes = np.empty(len(column), dtype=np.int64)
    values: list[Any] = []
    for i, value in enumerate(column):
        code = mapping.get(value)
        if code is None:
            code = len(values) + 1  # 0 is the missing sentinel
            mapping[value] = code
            values.append(value)
        codes[i] = code
    return np.repeat(codes[:, None], n_times, axis=1), values


def _factorize_varying(
    graph: TemporalGraph, name: str, time_positions: Sequence[int]
) -> tuple[np.ndarray, list[Any]]:
    """Integer codes (n_nodes x window) for a time-varying attribute."""
    raw = graph.varying_attrs[name].values[:, time_positions]
    mapping: dict[Any, int] = {}
    values: list[Any] = []
    codes = np.empty(raw.shape, dtype=np.int64)
    flat_raw = raw.ravel()
    flat_codes = codes.ravel()
    for i, value in enumerate(flat_raw):
        if value is None:
            flat_codes[i] = _MISSING
            continue
        code = mapping.get(value)
        if code is None:
            code = len(values) + 1
            mapping[value] = code
            values.append(value)
        flat_codes[i] = code
    return codes, values


def aggregate_fast(
    graph: TemporalGraph,
    attributes: Sequence[str],
    distinct: bool = True,
    times: Iterable[Hashable] | None = None,
) -> AggregateGraph:
    """Drop-in vectorized equivalent of :func:`repro.core.aggregate`."""
    # Same validation/normalization as the literal engine: timeline
    # order, no duplicates, so ALL mode cannot double-count repeated
    # points.
    window: TimeSet = validated_window(graph, attributes, times)
    _split_attributes(graph, attributes)  # validates names
    get_metrics().inc("aggregate_fast.calls")
    with trace_span(
        "aggregate_fast",
        distinct=distinct,
        attributes=tuple(attributes),
        n_times=len(window),
    ):
        return _aggregate_fast_impl(graph, attributes, distinct, window)


def _position(
    node_pos: dict[Hashable, int], edge: Hashable, node: Hashable
) -> int:
    """Node's row position; dangling edges raise instead of KeyError."""
    pos = node_pos.get(node)
    if pos is None:
        raise AggregationError(
            f"edge {edge!r} references node {node!r} absent from "
            "node presence; the graph has dangling edges"
        )
    return pos


def _aggregate_fast_impl(
    graph: TemporalGraph,
    attributes: Sequence[str],
    distinct: bool,
    window: TimeSet,
) -> AggregateGraph:
    time_positions = [graph.timeline.index_of(t) for t in window]
    n_times = len(time_positions)

    # Factorize every attribute to codes over the window; combine into a
    # single mixed-radix tuple code per (node, time) cell.
    code_layers: list[np.ndarray] = []
    value_tables: list[list[Any]] = []
    radices: list[int] = []
    for name in attributes:
        if graph.is_static(name):
            codes, values = _factorize_static(graph, name, n_times)
        else:
            codes, values = _factorize_varying(graph, name, time_positions)
        code_layers.append(codes)
        value_tables.append(values)
        radices.append(len(values) + 1)

    combined = np.zeros(
        (graph.n_nodes, n_times), dtype=np.int64
    )
    for codes, radix in zip(code_layers, radices):
        combined = combined * radix + codes

    def decode(code: int) -> AttributeTuple:
        parts: list[Any] = []
        remaining = int(code)
        for radix, values in zip(reversed(radices), reversed(value_tables)):
            remaining, digit = divmod(remaining, radix)
            parts.append(values[digit - 1])
        return tuple(reversed(parts))

    presence = graph.node_presence.values[:, time_positions].astype(bool)
    # A present node may still miss a varying value; require all layers.
    for codes in code_layers:
        presence &= codes != _MISSING

    code_ceiling = int(combined.max()) + 1 if combined.size else 1
    node_rows, node_cols = np.nonzero(presence)
    appearance_codes = combined[node_rows, node_cols]
    if distinct:
        pair = node_rows.astype(np.int64) * code_ceiling + appearance_codes
        _, keep = np.unique(pair, return_index=True)
        unique_codes = appearance_codes[keep]
        codes_for_count = unique_codes
    else:
        codes_for_count = appearance_codes
    unique, counts = np.unique(codes_for_count, return_counts=True)
    node_weights = {
        decode(code): int(count) for code, count in zip(unique, counts)
    }

    edge_presence = graph.edge_presence.values[:, time_positions].astype(bool)
    node_pos = {n: i for i, n in enumerate(graph.node_presence.row_labels)}
    if graph.n_edges:
        sources = np.fromiter(
            (
                _position(node_pos, edge, edge[0])  # type: ignore[index]
                for edge in graph.edge_presence.row_labels
            ),
            dtype=np.int64,
            count=graph.n_edges,
        )
        targets = np.fromiter(
            (
                _position(node_pos, edge, edge[1])  # type: ignore[index]
                for edge in graph.edge_presence.row_labels
            ),
            dtype=np.int64,
            count=graph.n_edges,
        )
    else:
        sources = np.empty(0, dtype=np.int64)
        targets = np.empty(0, dtype=np.int64)

    edge_rows, edge_cols = np.nonzero(edge_presence)
    source_idx = sources[edge_rows]
    target_idx = targets[edge_rows]
    valid = presence[source_idx, edge_cols] & presence[target_idx, edge_cols]
    edge_rows, edge_cols = edge_rows[valid], edge_cols[valid]
    source_idx, target_idx = source_idx[valid], target_idx[valid]
    source_codes = combined[source_idx, edge_cols]
    target_codes = combined[target_idx, edge_cols]
    pair_radix = code_ceiling
    pair_codes = source_codes * pair_radix + target_codes
    if distinct:
        dedup_key = edge_rows.astype(np.int64) * (
            pair_radix * pair_radix
        ) + pair_codes
        _, keep = np.unique(dedup_key, return_index=True)
        pair_for_count = pair_codes[keep]
    else:
        pair_for_count = pair_codes
    unique_pairs, pair_counts = np.unique(pair_for_count, return_counts=True)
    edge_weights: dict[EdgeKey, int] = {}
    for code, count in zip(unique_pairs, pair_counts):
        source_code, target_code = divmod(int(code), pair_radix)
        edge_weights[(decode(source_code), decode(target_code))] = int(count)

    return AggregateGraph(
        tuple(attributes), node_weights, edge_weights, distinct=distinct
    )


#: The interchangeable aggregation engines, keyed by name.  ``algo2`` is
#: the dispatching literal transcription (static fast path when it
#: applies), ``general`` forces Algorithm 2's unpivot pipeline, and
#: ``fast`` is this module's vectorized implementation.  All three must
#: produce identical aggregates — and raise the same taxonomy errors —
#: on every input; the differential fuzz oracle (``repro.testing``)
#: enforces this continuously on random graphs.
_ENGINES: dict[str, AggregationEngine] = {
    "algo2": aggregate,
    "general": aggregate_general,
    "fast": aggregate_fast,
}


def aggregation_engines() -> dict[str, AggregationEngine]:
    """A copy of the engine registry (name -> drop-in callable)."""
    return dict(_ENGINES)
