"""Time points, intervals and timelines.

The paper assumes an interval-labeled temporal graph over a finite ordered
set of base time points (years for DBLP, months for MovieLens).  A
:class:`Timeline` names those points; an :class:`Interval` is a contiguous,
inclusive span of them.  The temporal operators of Section 2.1 accept
arbitrary *sets* of time points (``T1``, ``T2``); intervals are the special
case the exploration strategies of Section 3 build via the union /
intersection semi-lattices.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from ..errors import TemporalError, TimeIndexError, UnknownLabelError

__all__ = ["Interval", "Timeline", "TimeSet"]

#: A set of time-point labels, as the temporal operators consume them.
TimeSet = tuple[Hashable, ...]


@dataclass(frozen=True, order=True)
class Interval:
    """A contiguous inclusive span ``[start, stop]`` of timeline indices.

    ``Interval(3, 3)`` is a single time point.  Intervals order
    lexicographically by ``(start, stop)``, which sorts chains built by the
    exploration lattice naturally.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise TemporalError(f"interval start must be >= 0, got {self.start}")
        if self.stop < self.start:
            raise TemporalError(
                f"interval stop {self.stop} precedes start {self.start}"
            )

    @classmethod
    def point(cls, index: int) -> "Interval":
        """The length-1 interval at ``index``."""
        return cls(index, index)

    @property
    def length(self) -> int:
        """Number of base time points covered."""
        return self.stop - self.start + 1

    @property
    def is_point(self) -> bool:
        return self.start == self.stop

    def indices(self) -> range:
        """The covered timeline indices, in order."""
        return range(self.start, self.stop + 1)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices())

    def __contains__(self, index: object) -> bool:
        return isinstance(index, int) and self.start <= index <= self.stop

    def contains(self, other: "Interval") -> bool:
        """Whether this interval covers ``other`` entirely."""
        return self.start <= other.start and other.stop <= self.stop

    def overlaps(self, other: "Interval") -> bool:
        return self.start <= other.stop and other.start <= self.stop

    def precedes(self, other: "Interval") -> bool:
        """Strictly before: every point of self is before every point of other."""
        return self.stop < other.start

    def extend_right(self, by: int = 1) -> "Interval":
        """The interval grown ``by`` points to the right (the semi-lattice
        "right child" step of U-Explore / I-Explore)."""
        return Interval(self.start, self.stop + by)

    def extend_left(self, by: int = 1) -> "Interval":
        """The interval grown ``by`` points to the left."""
        return Interval(self.start - by, self.stop)

    def __str__(self) -> str:
        if self.is_point:
            return f"[{self.start}]"
        return f"[{self.start}..{self.stop}]"


class Timeline:
    """An ordered sequence of named time points.

    Maps between positional indices (what :class:`Interval` speaks) and
    time-point labels (what the graph's presence-matrix columns are
    labeled with, e.g. ``2000 .. 2020`` or ``"May" .. "Oct"``).
    """

    __slots__ = ("_labels", "_index")

    def __init__(self, labels: Sequence[Hashable]) -> None:
        self._labels: tuple[Hashable, ...] = tuple(labels)
        self._index = {label: i for i, label in enumerate(self._labels)}
        if len(self._index) != len(self._labels):
            raise TemporalError("timeline labels must be unique")
        if not self._labels:
            raise TemporalError("a timeline needs at least one time point")

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return self._labels == other._labels

    def __repr__(self) -> str:
        return f"Timeline({list(self._labels)!r})"

    def index_of(self, label: Hashable) -> int:
        """Positional index of a time-point label."""
        try:
            return self._index[label]
        except KeyError:
            raise UnknownLabelError(f"unknown time point: {label!r}") from None

    def label_at(self, index: int) -> Hashable:
        if not 0 <= index < len(self._labels):
            raise TimeIndexError(
                f"time index {index} out of range 0..{len(self._labels) - 1}"
            )
        return self._labels[index]

    def labels_for(self, interval: Interval) -> TimeSet:
        """Time-point labels covered by an interval."""
        if interval.stop >= len(self._labels):
            raise TimeIndexError(
                f"interval {interval} exceeds timeline of {len(self._labels)} points"
            )
        return tuple(self._labels[i] for i in interval.indices())

    def interval_of(self, labels: Iterable[Hashable]) -> Interval:
        """The smallest interval covering the given labels.

        Raises ``ValueError`` if the labels are not contiguous — callers
        that need arbitrary time sets should pass label tuples directly to
        the operators instead.
        """
        indices = sorted(self.index_of(label) for label in labels)
        if not indices:
            raise TemporalError("cannot build an interval from no labels")
        interval = Interval(indices[0], indices[-1])
        if len(indices) != interval.length:
            raise TemporalError(f"labels {list(labels)!r} are not contiguous")
        return interval

    def span(self, first: Hashable, last: Hashable) -> TimeSet:
        """All labels from ``first`` to ``last`` inclusive."""
        interval = Interval(self.index_of(first), self.index_of(last))
        return self.labels_for(interval)

    def full_interval(self) -> Interval:
        """The interval covering the whole timeline."""
        return Interval(0, len(self._labels) - 1)

    def consecutive_pairs(self) -> list[tuple[Interval, Interval]]:
        """All ``(T_i, T_{i+1})`` point pairs — the seeds of exploration
        (step 1 of U-Explore / I-Explore)."""
        return [
            (Interval.point(i), Interval.point(i + 1))
            for i in range(len(self._labels) - 1)
        ]
