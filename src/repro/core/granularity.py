"""Time hierarchies: viewing a temporal graph at coarser granularity.

The paper positions GraphTempo against systems that "support different
time granularities" (Section 1) and defines exactly the two semantics a
zoom-out needs (Section 3.1): a coarse unit covering several base time
points contains an entity under **union** semantics if the entity exists
at *any* covered point, and under **intersection** semantics if it
exists at *every* covered point.

:class:`TimeHierarchy` names a partition of the base timeline into
coarser units (years into decades, months into quarters);
:func:`coarsen` materializes the coarser temporal graph, after which
every operator, aggregation and exploration strategy in the library
works at the new resolution unchanged.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import numpy as np

from ..frames import LabeledFrame
from .graph import TemporalGraph
from .intervals import Timeline
from ..errors import TemporalError, UnknownLabelError

__all__ = ["TimeHierarchy", "coarsen"]


class TimeHierarchy:
    """An ordered partition of base time points into coarser units.

    Parameters
    ----------
    units:
        Mapping ``unit label -> sequence of base labels``, in coarse
        timeline order.  Units must be non-empty, disjoint, and each
        unit's base labels must be contiguous in the base timeline —
        GraphTempo intervals are contiguous, and a gap inside a unit
        would silently merge non-adjacent graphs.

    Examples
    --------
    >>> hierarchy = TimeHierarchy({"2000s": range(2000, 2010),
    ...                            "2010s": range(2010, 2020)})
    >>> hierarchy.unit_of(2013)
    '2010s'
    """

    def __init__(self, units: Mapping[Hashable, Sequence[Hashable]]) -> None:
        self._units: dict[Hashable, tuple[Hashable, ...]] = {
            label: tuple(members) for label, members in units.items()
        }
        if not self._units:
            raise TemporalError("a hierarchy needs at least one unit")
        self._unit_of: dict[Hashable, Hashable] = {}
        for label, members in self._units.items():
            if not members:
                raise TemporalError(f"unit {label!r} has no base time points")
            for member in members:
                if member in self._unit_of:
                    raise TemporalError(
                        f"base time point {member!r} belongs to two units"
                    )
                self._unit_of[member] = label

    @classmethod
    def regular(
        cls,
        base_labels: Sequence[Hashable],
        width: int,
        name: str = "{first}..{last}",
    ) -> "TimeHierarchy":
        """Fixed-width windows over a base timeline.

        ``name`` formats each unit label from its ``first``/``last``
        base labels (and ``index``).  The final window may be shorter.
        """
        if width < 1:
            raise TemporalError("window width must be at least 1")
        units: dict[Hashable, tuple[Hashable, ...]] = {}
        base = tuple(base_labels)
        for index, start in enumerate(range(0, len(base), width)):
            members = base[start : start + width]
            label = name.format(first=members[0], last=members[-1], index=index)
            units[label] = members
        return cls(units)

    @property
    def unit_labels(self) -> tuple[Hashable, ...]:
        return tuple(self._units)

    def members(self, unit: Hashable) -> tuple[Hashable, ...]:
        """Base labels covered by one unit."""
        try:
            return self._units[unit]
        except KeyError:
            raise UnknownLabelError(f"unknown unit: {unit!r}") from None

    def unit_of(self, base_label: Hashable) -> Hashable:
        """The unit containing a base time point."""
        try:
            return self._unit_of[base_label]
        except KeyError:
            raise UnknownLabelError(f"time point {base_label!r} is in no unit") from None

    def covers(self, timeline: Timeline) -> bool:
        """Whether every point of ``timeline`` belongs to some unit."""
        return all(label in self._unit_of for label in timeline.labels)

    def _validate_against(self, timeline: Timeline) -> None:
        missing = [t for t in timeline.labels if t not in self._unit_of]
        if missing:
            raise TemporalError(
                f"hierarchy does not cover base time points {missing[:5]!r}"
            )
        order = []
        for unit, members in self._units.items():
            indices = [timeline.index_of(m) for m in members if m in timeline]
            if not indices:
                continue
            if indices != list(range(indices[0], indices[0] + len(indices))):
                raise TemporalError(
                    f"unit {unit!r} covers non-contiguous base time points"
                )
            order.append(indices[0])
        if order != sorted(order):
            raise TemporalError("units are not in base timeline order")

    def __len__(self) -> int:
        return len(self._units)

    def __repr__(self) -> str:
        return f"TimeHierarchy({list(self._units)!r})"


def coarsen(
    graph: TemporalGraph,
    hierarchy: TimeHierarchy,
    semantics: str = "union",
) -> TemporalGraph:
    """View a temporal graph at the hierarchy's granularity.

    ``semantics`` is ``"union"`` (entity present in a unit if present at
    any covered point — the relaxed zoom-out) or ``"intersection"``
    (present throughout the unit — the strict one).  Time-varying
    attribute values at a unit take the *latest* covered value, a
    deliberate, documented choice (aggregating attribute values is a
    measure computation — use :func:`repro.core.aggregate_measure`).

    Entities with no presence at the coarse level (possible under
    intersection semantics) are dropped.
    """
    if semantics not in ("union", "intersection"):
        raise TemporalError(
            f"semantics must be 'union' or 'intersection', got {semantics!r}"
        )
    hierarchy._validate_against(graph.timeline)
    units = [
        unit
        for unit in hierarchy.unit_labels
        if any(m in graph.timeline for m in hierarchy.members(unit))
    ]
    member_positions = {
        unit: [
            graph.timeline.index_of(m)
            for m in hierarchy.members(unit)
            if m in graph.timeline
        ]
        for unit in units
    }

    def reduce_presence(frame: LabeledFrame) -> np.ndarray:
        values = frame.values.astype(bool)
        columns = []
        for unit in units:
            block = values[:, member_positions[unit]]
            if semantics == "union":
                columns.append(block.any(axis=1))
            else:
                columns.append(block.all(axis=1))
        return np.stack(columns, axis=1).astype(np.uint8)

    node_values = reduce_presence(graph.node_presence)
    edge_values = reduce_presence(graph.edge_presence)
    # Intersection-coarsened edges may be "present" in a unit where a
    # node is not (edge present at all points implies nodes present at
    # all points, so in fact node presence dominates) — but with union
    # semantics an edge unit-presence always implies node unit-presence
    # too.  Both cases are consistent by construction.
    node_keep = node_values.any(axis=1)
    kept_nodes = tuple(
        n for n, keep in zip(graph.node_presence.row_labels, node_keep) if keep
    )
    node_pos = {n: i for i, n in enumerate(graph.node_presence.row_labels)}
    edge_keep = edge_values.any(axis=1)
    kept_edges = tuple(
        e
        for e, keep in zip(graph.edge_presence.row_labels, edge_keep)
        if keep and node_keep[node_pos[e[0]]] and node_keep[node_pos[e[1]]]  # type: ignore[index]
    )
    kept_node_rows = [node_pos[n] for n in kept_nodes]
    edge_pos = {e: i for i, e in enumerate(graph.edge_presence.row_labels)}
    kept_edge_rows = [edge_pos[e] for e in kept_edges]

    varying: dict[str, LabeledFrame] = {}
    for name, frame in graph.varying_attrs.items():
        coarse = np.full((len(kept_nodes), len(units)), None, dtype=object)
        base_values = frame.values
        for out_row, node_row in enumerate(kept_node_rows):
            for out_col, unit in enumerate(units):
                if not node_values[node_row, out_col]:
                    continue
                # Latest covered value where the node exists.
                for position in reversed(member_positions[unit]):
                    value = base_values[node_row, position]
                    if value is not None:
                        coarse[out_row, out_col] = value
                        break
        varying[name] = LabeledFrame(kept_nodes, tuple(units), coarse)

    return TemporalGraph(
        timeline=Timeline(tuple(units)),
        node_presence=LabeledFrame(
            kept_nodes, tuple(units), node_values[kept_node_rows]
        ),
        edge_presence=LabeledFrame(
            kept_edges, tuple(units), edge_values[kept_edge_rows]
        ),
        static_attrs=graph.static_attrs.select_rows(kept_nodes),
        varying_attrs=varying,
        validate=False,
        edge_attrs=(
            graph.edge_attrs.select_rows(kept_edges)
            if graph.edge_attrs is not None
            else None
        ),
    )
