"""Derived time-varying attributes computed from graph structure.

Graph-OLAP systems distinguish *informational* dimensions (stored
attributes) from *topological* ones (structure-derived, e.g. degree) —
the paper's related work (Graph OLAP, GraphCube) aggregates over both.
GraphTempo's aggregation is attribute-based, so topological dimensions
are obtained by *materializing structure as a time-varying attribute*:
:func:`with_degree_attribute` attaches each node's per-time degree (or a
bucketed class of it), after which every operator, aggregation and
exploration facility applies unchanged.

:func:`with_derived_attribute` is the general hook: any callable from
(graph, node, time) to a value becomes an attribute.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from typing import Any

import numpy as np

from ..frames import LabeledFrame
from .graph import TemporalGraph
from ..errors import AggregationError

__all__ = ["with_derived_attribute", "with_degree_attribute", "degree_class"]


def with_derived_attribute(
    graph: TemporalGraph,
    name: str,
    compute: Callable[[TemporalGraph, Hashable, Hashable], Any],
) -> TemporalGraph:
    """A new graph carrying one extra time-varying attribute.

    ``compute(graph, node, time)`` is evaluated at every (node, time)
    where the node is present; absent cells stay ``None``.  The name
    must not collide with an existing attribute.
    """
    if name in set(graph.attribute_names):
        raise AggregationError(f"attribute {name!r} already exists")
    values = np.full((graph.n_nodes, len(graph.timeline)), None, dtype=object)
    presence = graph.node_presence.values
    for row, node in enumerate(graph.node_presence.row_labels):
        for col, time in enumerate(graph.timeline.labels):
            if presence[row, col]:
                values[row, col] = compute(graph, node, time)
    varying = dict(graph.varying_attrs)
    varying[name] = LabeledFrame(
        graph.node_presence.row_labels, graph.timeline.labels, values
    )
    return TemporalGraph(
        timeline=graph.timeline,
        node_presence=graph.node_presence,
        edge_presence=graph.edge_presence,
        static_attrs=graph.static_attrs,
        varying_attrs=varying,
        validate=False,
        edge_attrs=graph.edge_attrs,
    )


def degree_class(degree: int, boundaries: Sequence[int] = (1, 3, 10)) -> str:
    """Bucket a degree into a label: "0", "1-2", "3-9", "10+" by default.

    ``boundaries`` are the (sorted, positive) lower edges of each bucket
    after the zero bucket.
    """
    if degree < 0:
        raise AggregationError(f"degree cannot be negative: {degree}")
    if degree == 0:
        return "0"
    previous = None
    for boundary in boundaries:
        if degree < boundary:
            assert previous is not None
            return f"{previous}-{boundary - 1}"
        previous = boundary
    return f"{boundaries[-1]}+"


def with_degree_attribute(
    graph: TemporalGraph,
    name: str = "degree",
    direction: str = "total",
    classes: Sequence[int] | None = None,
) -> TemporalGraph:
    """Attach per-time node degree (or degree class) as an attribute.

    ``direction`` is ``"out"``, ``"in"`` or ``"total"``.  With
    ``classes`` given, the value is the :func:`degree_class` bucket
    label instead of the raw integer — the practical choice for
    aggregation, keeping the attribute domain small.
    """
    if direction not in ("out", "in", "total"):
        raise AggregationError(
            f"direction must be 'out', 'in' or 'total', got {direction!r}"
        )
    n_times = len(graph.timeline)
    node_pos = {n: i for i, n in enumerate(graph.node_presence.row_labels)}
    out_deg = np.zeros((graph.n_nodes, n_times), dtype=np.int64)
    in_deg = np.zeros((graph.n_nodes, n_times), dtype=np.int64)
    edge_presence = graph.edge_presence.values.astype(bool)
    for row, (u, v) in enumerate(graph.edge_presence.row_labels):  # type: ignore[misc]
        out_deg[node_pos[u]] += edge_presence[row]
        in_deg[node_pos[v]] += edge_presence[row]
    if direction == "out":
        degrees = out_deg
    elif direction == "in":
        degrees = in_deg
    else:
        degrees = out_deg + in_deg

    if classes is None:
        def compute(g: TemporalGraph, node: Hashable, time: Hashable) -> Any:
            return int(
                degrees[node_pos[node], g.timeline.index_of(time)]
            )
    else:
        bucket_edges = tuple(classes)

        def compute(g: TemporalGraph, node: Hashable, time: Hashable) -> Any:
            raw = int(degrees[node_pos[node], g.timeline.index_of(time)])
            return degree_class(raw, bucket_edges)

    return with_derived_attribute(graph, name, compute)
