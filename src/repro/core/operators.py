"""Temporal operators: project, union, intersection, difference.

These implement Definitions 2.2-2.5 of the paper over the labeled-array
storage of :class:`~repro.core.graph.TemporalGraph`, following the
selection rules of Section 4.1:

* **union** keeps a row if any presence cell over ``T1 | T2`` is 1;
* **intersection** keeps a row if it is present at some point of ``T1``
  *and* some point of ``T2``;
* **difference** ``T1 - T2`` keeps an edge if present somewhere in ``T1``
  and nowhere in ``T2``; a node qualifies if present in ``T1`` and either
  absent throughout ``T2`` or incident to a kept edge (Definition 2.5).

All operators return new :class:`TemporalGraph` instances whose timeline
is the ordered union of the input time sets (for the difference: ``T1``),
with every attribute array restricted consistently.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from .graph import TemporalGraph
from .intervals import TimeSet
from ..errors import TemporalError
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span

__all__ = [
    "project",
    "union",
    "intersection",
    "difference",
    "ordered_times",
    "presence_signature",
]


def ordered_times(
    graph: TemporalGraph, *time_sets: Iterable[Hashable]
) -> TimeSet:
    """The union of the given time sets, ordered by the graph's timeline.

    Validates every label against the timeline, so a typo'd time point
    fails loudly instead of silently selecting nothing.
    """
    wanted = set()
    for time_set in time_sets:
        for label in time_set:
            graph.timeline.index_of(label)
            wanted.add(label)
    return tuple(t for t in graph.timeline.labels if t in wanted)


def presence_signature(
    graph: TemporalGraph,
) -> tuple[
    dict[Hashable, tuple[Hashable, ...]],
    dict[Hashable, tuple[Hashable, ...]],
]:
    """Canonical ``(node -> active times, edge -> active times)`` maps.

    Two operator results are observably equal iff their signatures are —
    regardless of row storage order.  The metamorphic laws of
    :mod:`repro.testing` compare operator algebra (commutativity,
    idempotence, the union partition of Definition 2.7) through this
    helper instead of positional array equality.
    """
    times = graph.timeline.labels
    node_map: dict[Hashable, tuple[Hashable, ...]] = {}
    node_values = graph.node_presence.values
    for row, node in enumerate(graph.node_presence.row_labels):
        node_map[node] = tuple(
            t for t, flag in zip(times, node_values[row]) if flag
        )
    edge_map: dict[Hashable, tuple[Hashable, ...]] = {}
    edge_values = graph.edge_presence.values
    for row, edge in enumerate(graph.edge_presence.row_labels):
        edge_map[edge] = tuple(
            t for t, flag in zip(times, edge_values[row]) if flag
        )
    return node_map, edge_map


def _restrict_by_masks(
    graph: TemporalGraph,
    node_mask: np.ndarray,
    edge_mask: np.ndarray,
    times: TimeSet,
) -> TemporalGraph:
    nodes = [
        n for n, keep in zip(graph.node_presence.row_labels, node_mask) if keep
    ]
    edges = [
        e for e, keep in zip(graph.edge_presence.row_labels, edge_mask) if keep
    ]
    return graph.restricted(nodes, edges, times)


def project(graph: TemporalGraph, times: Iterable[Hashable]) -> TemporalGraph:
    """Time projection (Definition 2.2).

    Keeps the nodes and edges that exist throughout ``times``
    (``T1 ⊆ tau(u)``) and restricts every array to those columns.
    """
    window = ordered_times(graph, times)
    if not window:
        raise TemporalError("cannot project onto an empty time set")
    get_metrics().inc("operators.project")
    with trace_span("operator.project", n_times=len(window)):
        node_mask = graph.presence_mask("nodes", window, "all")
        edge_mask = graph.presence_mask("edges", window, "all")
        return _restrict_by_masks(graph, node_mask, edge_mask, window)


def union(
    graph: TemporalGraph,
    t1: Iterable[Hashable],
    t2: Iterable[Hashable] = (),
) -> TemporalGraph:
    """Union graph (Definition 2.3): entities existing at any instant of
    ``T1`` or ``T2``.

    ``t2`` may be empty, in which case this is the *window* over ``t1``
    alone — the building block the union semi-lattice of Section 3.1 uses
    to extend one side of an interval pair.
    """
    window = ordered_times(graph, t1, t2)
    if not window:
        raise TemporalError("cannot take the union over an empty time set")
    get_metrics().inc("operators.union")
    with trace_span("operator.union", n_times=len(window)):
        node_mask = graph.presence_mask("nodes", window, "any")
        edge_mask = graph.presence_mask("edges", window, "any")
        return _restrict_by_masks(graph, node_mask, edge_mask, window)


def intersection(
    graph: TemporalGraph,
    t1: Iterable[Hashable],
    t2: Iterable[Hashable],
) -> TemporalGraph:
    """Intersection graph (Definition 2.4): entities existing at some
    instant of ``T1`` *and* some instant of ``T2``.

    The result's timeline is ``T1 | T2`` and presence rows keep
    ``tau(e) ∩ (T1 | T2)``, exactly as the definition prescribes.
    """
    first = ordered_times(graph, t1)
    second = ordered_times(graph, t2)
    if not first or not second:
        raise TemporalError("intersection requires two non-empty time sets")
    get_metrics().inc("operators.intersection")
    with trace_span("operator.intersection", n_times=len(first) + len(second)):
        window = ordered_times(graph, first, second)
        node_mask = graph.presence_mask("nodes", first) & graph.presence_mask(
            "nodes", second
        )
        edge_mask = graph.presence_mask("edges", first) & graph.presence_mask(
            "edges", second
        )
        return _restrict_by_masks(graph, node_mask, edge_mask, window)


def difference(
    graph: TemporalGraph,
    t1: Iterable[Hashable],
    t2: Iterable[Hashable],
) -> TemporalGraph:
    """Difference graph ``T1 - T2`` (Definition 2.5).

    Edges: present somewhere in ``T1`` and nowhere in ``T2`` (deleted, if
    ``T1`` precedes ``T2``; new, in the ``T2 - T1`` orientation).  Nodes:
    present somewhere in ``T1`` and either absent throughout ``T2`` or an
    endpoint of a kept edge — the second disjunct keeps the result a
    well-formed graph whose edges have both endpoints.

    The result is defined on ``T1``: presence and attribute arrays keep
    ``tau ∩ T1`` only (``tau_u-(u) = tau_u(u) ∩ T1``).
    """
    first = ordered_times(graph, t1)
    second = ordered_times(graph, t2)
    if not first:
        raise TemporalError("difference requires a non-empty left time set")
    get_metrics().inc("operators.difference")
    with trace_span("operator.difference", n_times=len(first) + len(second)):
        edge_mask = graph.presence_mask("edges", first) & graph.presence_mask(
            "edges", second, "none"
        )
        kept_endpoints: set[Hashable] = set()
        for edge, keep in zip(graph.edge_presence.row_labels, edge_mask):
            if keep:
                u, v = edge  # type: ignore[misc]
                kept_endpoints.add(u)
                kept_endpoints.add(v)
        endpoint_mask = np.fromiter(
            (n in kept_endpoints for n in graph.node_presence.row_labels),
            dtype=bool,
            count=graph.n_nodes,
        )
        node_mask = graph.presence_mask("nodes", first) & (
            graph.presence_mask("nodes", second, "none") | endpoint_mask
        )
        return _restrict_by_masks(graph, node_mask, edge_mask, first)
