"""The evolution graph (Definition 2.7) and its aggregation (Fig. 4b).

Between two time sets ``T1`` (old) and ``T2`` (new) the evolution graph
overlays three operator results:

* the intersection graph — **stability**,
* the difference ``T1 - T2`` — **shrinkage** (deleted entities),
* the difference ``T2 - T1`` — **growth** (new entities).

Aggregating an evolution graph labels each aggregate entity with three
weights.  As the paper's Figure 4b example shows, the unit of counting is
an *appearance*: the pair (node, attribute tuple).  A node that exists in
both intervals but whose time-varying attributes changed contributes a
shrinkage appearance for its old tuple and a growth appearance for the
new one — exactly how node ``u4``'s move from ``(f, 2)`` to ``(f, 1)``
is scored in the paper.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from .aggregation import AttributeTuple, EdgeKey, _node_tuple_table
from .graph import TemporalGraph
from .intervals import TimeSet
from .operators import difference, intersection, ordered_times
from ..errors import ValidationError

__all__ = [
    "EvolutionGraph",
    "EvolutionWeights",
    "EvolutionAggregate",
    "evolution",
    "aggregate_evolution",
]


@dataclass(frozen=True)
class EvolutionGraph:
    """The three-way overlay ``G_>`` between ``T1`` and ``T2``.

    ``stable``, ``shrunk`` and ``grown`` are the operator outputs named in
    Definition 2.7 (``G_∩``, ``G_-`` on ``T1 - T2`` and ``G_-`` on
    ``T2 - T1``); ``old_times`` / ``new_times`` record the intervals the
    overlay was built on.
    """

    old_times: TimeSet
    new_times: TimeSet
    stable: TemporalGraph
    shrunk: TemporalGraph
    grown: TemporalGraph

    def node_kinds(self) -> dict[Hashable, set[str]]:
        """Map each node to the event kinds it participates in.

        Kinds are ``"stability"``, ``"shrinkage"`` and ``"growth"``; a
        node may carry several (e.g. a surviving node that lost an edge is
        both stable and a member of the shrinkage component, per the
        second disjunct of Definition 2.5).
        """
        kinds: dict[Hashable, set[str]] = {}
        for node in self.stable.nodes:
            kinds.setdefault(node, set()).add("stability")
        for node in self.shrunk.nodes:
            kinds.setdefault(node, set()).add("shrinkage")
        for node in self.grown.nodes:
            kinds.setdefault(node, set()).add("growth")
        return kinds

    def edge_kinds(self) -> dict[tuple[Hashable, Hashable], set[str]]:
        """Map each edge to its event kinds (disjoint by construction:
        an edge is in exactly one of the three components)."""
        kinds: dict[tuple[Hashable, Hashable], set[str]] = {}
        for edge in self.stable.edges:
            kinds.setdefault(edge, set()).add("stability")
        for edge in self.shrunk.edges:
            kinds.setdefault(edge, set()).add("shrinkage")
        for edge in self.grown.edges:
            kinds.setdefault(edge, set()).add("growth")
        return kinds

    @property
    def n_nodes(self) -> int:
        """Distinct nodes across the three components (``|V_>|``)."""
        return len(self.node_kinds())

    @property
    def n_edges(self) -> int:
        return len(self.edge_kinds())


def evolution(
    graph: TemporalGraph,
    old_times: Iterable[Hashable],
    new_times: Iterable[Hashable],
) -> EvolutionGraph:
    """Build the evolution graph between two time sets (Definition 2.7)."""
    old = ordered_times(graph, old_times)
    new = ordered_times(graph, new_times)
    if not old or not new:
        raise ValidationError("evolution requires two non-empty time sets")
    return EvolutionGraph(
        old_times=old,
        new_times=new,
        stable=intersection(graph, old, new),
        shrunk=difference(graph, old, new),
        grown=difference(graph, new, old),
    )


@dataclass(frozen=True)
class EvolutionWeights:
    """The three event weights attached to one aggregate entity."""

    stability: int = 0
    growth: int = 0
    shrinkage: int = 0

    @property
    def total(self) -> int:
        return self.stability + self.growth + self.shrinkage

    def ratio(self, kind: str) -> float:
        """Share of one event kind in this entity's total (0.0 if empty).

        This is the "distribution of each entity w.r.t. stability, growth
        and shrinkage" plotted in the paper's Figure 12.
        """
        if kind not in ("stability", "growth", "shrinkage"):
            raise ValidationError(f"unknown event kind: {kind!r}")
        if self.total == 0:
            return 0.0
        return getattr(self, kind) / self.total


@dataclass(frozen=True)
class EvolutionAggregate:
    """Aggregation of an evolution graph: per-tuple event weights."""

    attributes: tuple[str, ...]
    old_times: TimeSet
    new_times: TimeSet
    node_weights: dict[AttributeTuple, EvolutionWeights]
    edge_weights: dict[EdgeKey, EvolutionWeights]

    def node(self, key: Sequence[Any]) -> EvolutionWeights:
        """Event weights of one aggregate node (zeros if absent)."""
        return self.node_weights.get(tuple(key), EvolutionWeights())

    def edge(self, source: Sequence[Any], target: Sequence[Any]) -> EvolutionWeights:
        """Event weights of one aggregate edge (zeros if absent)."""
        return self.edge_weights.get(
            (tuple(source), tuple(target)), EvolutionWeights()
        )

    def diff(self, other: "EvolutionAggregate") -> tuple[str, ...]:
        """Human-readable differences from another evolution aggregate.

        Empty when both carry the same attributes, intervals and the
        same (stability, growth, shrinkage) weights for every aggregate
        node and edge — the comparison unit of the differential fuzz
        oracle for Fig. 4b semantics.
        """
        problems: list[str] = []
        if self.attributes != other.attributes:
            problems.append(
                f"attributes differ: {self.attributes!r} != {other.attributes!r}"
            )
        if (self.old_times, self.new_times) != (other.old_times, other.new_times):
            problems.append(
                f"intervals differ: {(self.old_times, self.new_times)!r} != "
                f"{(other.old_times, other.new_times)!r}"
            )
        zero = EvolutionWeights()
        for kind, ours, theirs in (
            ("node", self.node_weights, other.node_weights),
            ("edge", self.edge_weights, other.edge_weights),
        ):
            for key in sorted(set(ours) | set(theirs), key=repr):
                a = ours.get(key, zero)  # type: ignore[arg-type]
                b = theirs.get(key, zero)  # type: ignore[arg-type]
                if a != b:
                    problems.append(f"{kind} weights {key!r}: {a} != {b}")
        return tuple(problems)

    def totals(self) -> EvolutionWeights:
        """Summed node weights across all aggregate nodes."""
        return EvolutionWeights(
            stability=sum(w.stability for w in self.node_weights.values()),
            growth=sum(w.growth for w in self.node_weights.values()),
            shrinkage=sum(w.shrinkage for w in self.node_weights.values()),
        )

    def edge_totals(self) -> EvolutionWeights:
        """Summed edge weights across all aggregate edges."""
        return EvolutionWeights(
            stability=sum(w.stability for w in self.edge_weights.values()),
            growth=sum(w.growth for w in self.edge_weights.values()),
            shrinkage=sum(w.shrinkage for w in self.edge_weights.values()),
        )


def _appearance_sets(
    graph: TemporalGraph,
    attributes: Sequence[str],
    times: TimeSet,
) -> tuple[
    set[tuple[Hashable, AttributeTuple]],
    set[tuple[tuple[Hashable, Hashable], EdgeKey]],
]:
    """Distinct (entity, tuple) appearances over a time window."""
    node_table = _node_tuple_table(graph, attributes, times)
    node_appearances = {(node, values) for node, _, values in node_table.rows}
    lookup = {(node, t): values for node, t, values in node_table.rows}
    edge_appearances: set[tuple[tuple[Hashable, Hashable], EdgeKey]] = set()
    time_positions = [graph.timeline.index_of(t) for t in times]
    presence = graph.edge_presence.values
    for row_idx, edge in enumerate(graph.edge_presence.row_labels):
        u, v = edge  # type: ignore[misc]
        for t, t_pos in zip(times, time_positions):
            if not presence[row_idx, t_pos]:
                continue
            source = lookup.get((u, t))
            target = lookup.get((v, t))
            if source is None or target is None:
                continue
            edge_appearances.add((edge, (source, target)))  # type: ignore[arg-type]
    return node_appearances, edge_appearances


def _weights_from_appearances(
    old: set[tuple[Any, Any]],
    new: set[tuple[Any, Any]],
) -> dict[Any, EvolutionWeights]:
    """Per-tuple event weights from two (entity, tuple) appearance sets.

    The unit of counting is the appearance: stability for pairs in both
    windows, growth for new-only, shrinkage for old-only, each keyed by
    the appearance's attribute tuple.  Shared by
    :func:`aggregate_evolution` and the delta-maintained
    :class:`repro.streaming.EvolutionView`, so both produce bit-identical
    weights from identical sets.
    """
    counters: dict[Any, dict[str, int]] = {}

    def bump(pairs: set[tuple[Any, Any]], kind: str) -> None:
        for _, key in pairs:
            counters.setdefault(
                key, {"stability": 0, "growth": 0, "shrinkage": 0}
            )[kind] += 1

    bump(old & new, "stability")
    bump(new - old, "growth")
    bump(old - new, "shrinkage")
    return {key: EvolutionWeights(**counts) for key, counts in counters.items()}


def aggregate_evolution(
    graph: TemporalGraph,
    old_times: Iterable[Hashable],
    new_times: Iterable[Hashable],
    attributes: Sequence[str],
) -> EvolutionAggregate:
    """Aggregate the evolution between two time sets (Fig. 4b semantics).

    An appearance ``(entity, attribute tuple)`` that occurs in both
    windows scores *stability* for its tuple; one occurring only in the
    old window scores *shrinkage*; only in the new window, *growth*.
    Counting is distinct (each appearance once), matching the weights the
    paper reads off Figures 4b and 12.
    """
    if not attributes:
        raise ValidationError("evolution aggregation needs at least one attribute")
    old = ordered_times(graph, old_times)
    new = ordered_times(graph, new_times)
    if not old or not new:
        raise ValidationError("evolution aggregation requires two non-empty time sets")
    old_nodes, old_edges = _appearance_sets(graph, attributes, old)
    new_nodes, new_edges = _appearance_sets(graph, attributes, new)
    node_weights = _weights_from_appearances(old_nodes, new_nodes)
    edge_weights = _weights_from_appearances(old_edges, new_edges)

    return EvolutionAggregate(
        attributes=tuple(attributes),
        old_times=old,
        new_times=new,
        node_weights=node_weights,
        edge_weights=edge_weights,
    )
