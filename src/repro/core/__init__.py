"""The GraphTempo model: temporal attributed graphs, temporal operators,
attribute aggregation and the evolution graph (Sections 2 and 4)."""

from .aggregation import (
    AggregateGraph,
    aggregate,
    aggregate_general,
    check_no_dangling_edges,
    validated_window,
)
from .derived import degree_class, with_degree_attribute, with_derived_attribute
from .evolution import (
    EvolutionAggregate,
    EvolutionGraph,
    EvolutionWeights,
    aggregate_evolution,
    evolution,
)
from .fast import AggregationEngine, aggregate_fast, aggregation_engines
from .filters import attribute_predicate, filter_appearances
from .graph import GraphIntegrityError, TemporalGraph, TemporalGraphBuilder
from .intervals import Interval, Timeline
from .measures import MEASURES, MeasureGraph, aggregate_edge_measure, aggregate_measure
from .granularity import TimeHierarchy, coarsen
from .operators import (
    difference,
    intersection,
    ordered_times,
    presence_signature,
    project,
    union,
)
from .updates import SnapshotUpdate, append_snapshot, snapshot_at, split_history

__all__ = [
    "TemporalGraph",
    "TemporalGraphBuilder",
    "GraphIntegrityError",
    "Interval",
    "Timeline",
    "project",
    "union",
    "intersection",
    "difference",
    "ordered_times",
    "presence_signature",
    "AggregateGraph",
    "aggregate",
    "aggregate_general",
    "aggregate_fast",
    "aggregation_engines",
    "AggregationEngine",
    "check_no_dangling_edges",
    "validated_window",
    "aggregate_measure",
    "aggregate_edge_measure",
    "MeasureGraph",
    "MEASURES",
    "EvolutionGraph",
    "EvolutionAggregate",
    "EvolutionWeights",
    "evolution",
    "aggregate_evolution",
    "filter_appearances",
    "attribute_predicate",
    "TimeHierarchy",
    "coarsen",
    "SnapshotUpdate",
    "append_snapshot",
    "snapshot_at",
    "split_history",
    "with_derived_attribute",
    "with_degree_attribute",
    "degree_class",
]
