"""Appearance-level filtering of temporal graphs.

The paper's qualitative study (Section 5.2, Figure 12) looks at "authors
with high activity (#Publications > 4)": the evolution graph is computed
over the sub-population of node *appearances* that satisfy a predicate on
attribute values at each time point.  :func:`filter_appearances` builds
that restricted graph: a node's presence cell at ``t`` survives only if
the predicate holds at ``t``, and an edge's cell survives only if both
endpoints' cells survived.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping
from typing import Any

from ..frames import LabeledFrame
from .graph import TemporalGraph

__all__ = ["filter_appearances", "attribute_predicate"]

#: A predicate over one node appearance: (node id, time point, attribute
#: values at that appearance) -> keep?
AppearancePredicate = Callable[[Hashable, Hashable, Mapping[str, Any]], bool]


def attribute_predicate(**conditions: Callable[[Any], bool]) -> AppearancePredicate:
    """Build an appearance predicate from per-attribute value conditions.

    Example: keep high-activity authors (the Fig. 12 filter)::

        keep = attribute_predicate(publications=lambda p: p is not None and p > 4)
        active = filter_appearances(graph, keep)
    """

    def predicate(
        node: Hashable, time: Hashable, values: Mapping[str, Any]
    ) -> bool:
        return all(check(values[name]) for name, check in conditions.items())

    return predicate


def filter_appearances(
    graph: TemporalGraph, predicate: AppearancePredicate
) -> TemporalGraph:
    """The subgraph of appearances satisfying ``predicate``.

    The node set, edge set and attribute arrays keep their full row sets
    (rows that end up all-zero remain, so downstream operators see a graph
    with the same shape); only presence cells are cleared.  Rows that are
    entirely zero are then dropped to keep the result compact.
    """
    times = graph.timeline.labels
    node_values = graph.node_presence.values.copy()
    static_names = graph.static_attribute_names
    varying_names = graph.varying_attribute_names
    static_values = graph.static_attrs.values
    varying_values = {name: graph.varying_attrs[name].values for name in varying_names}

    for row_idx, node in enumerate(graph.node_presence.row_labels):
        static_part = {
            name: static_values[row_idx, col]
            for col, name in enumerate(static_names)
        }
        for col_idx, t in enumerate(times):
            if not node_values[row_idx, col_idx]:
                continue
            values = dict(static_part)
            for name in varying_names:
                values[name] = varying_values[name][row_idx, col_idx]
            if not predicate(node, t, values):
                node_values[row_idx, col_idx] = 0

    node_pos = {n: i for i, n in enumerate(graph.node_presence.row_labels)}
    edge_values = graph.edge_presence.values.copy()
    for row_idx, edge in enumerate(graph.edge_presence.row_labels):
        u, v = edge  # type: ignore[misc]
        allowed = node_values[node_pos[u]].astype(bool) & node_values[
            node_pos[v]
        ].astype(bool)
        edge_values[row_idx] = edge_values[row_idx] * allowed

    node_presence = LabeledFrame(
        graph.node_presence.row_labels, times, node_values
    )
    edge_presence = LabeledFrame(
        graph.edge_presence.row_labels, times, edge_values
    )
    node_keep = node_presence.any_mask()
    edge_keep = edge_presence.any_mask()
    kept_nodes = [
        n for n, keep in zip(node_presence.row_labels, node_keep) if keep
    ]
    kept_edges = [
        e for e, keep in zip(edge_presence.row_labels, edge_keep) if keep
    ]
    filtered = TemporalGraph(
        timeline=graph.timeline,
        node_presence=node_presence,
        edge_presence=edge_presence,
        static_attrs=graph.static_attrs,
        varying_attrs=graph.varying_attrs,
        validate=False,
        edge_attrs=graph.edge_attrs,
    )
    return filtered.restricted(kept_nodes, kept_edges, times)
