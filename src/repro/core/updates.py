"""Appending new time points to a temporal graph.

Evolving graphs grow at the end of their timeline; re-generating the
whole graph per tick would defeat the paper's materialization story.
:func:`append_snapshot` extends a :class:`TemporalGraph` with one new
time point — new nodes, returning nodes, their time-varying values, and
the snapshot's edges — producing a new graph value (inputs are never
mutated).  :class:`repro.materialize.IncrementalStore` builds on this to
keep per-point aggregates and running union totals current as the graph
grows.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..frames import LabeledFrame
from .graph import EdgeId, NodeId, TemporalGraph
from .intervals import Timeline
from ..errors import UnknownLabelError, ValidationError

__all__ = ["SnapshotUpdate", "append_snapshot", "snapshot_at", "split_history"]


@dataclass(frozen=True)
class SnapshotUpdate:
    """One new time point's content.

    Parameters
    ----------
    time:
        The new time-point label; must not already be on the timeline.
    nodes:
        ``node id -> {varying attribute: value}`` for every node present
        at the new time point (an empty dict for nodes of a graph
        without time-varying attributes).
    static:
        Static attribute values for nodes appearing for the *first*
        time; values for known nodes are ignored (static values cannot
        change) but attribute *names* are always validated.
    edges:
        Directed edges active at the new time point.  Both endpoints
        must be present in ``nodes``.
    edge_attrs:
        Static edge-attribute values for edges appearing for the first
        time.  As with ``static``, names are validated for every entry;
        a graph without edge attributes rejects any supplied name.

    All fields are frozen into owned tuples/dicts on construction, so an
    update built from generators or shared mutable mappings stays
    replayable: appending it twice (or into two stores) sees identical
    content.
    """

    time: Hashable
    nodes: Mapping[NodeId, Mapping[str, Any]]
    static: Mapping[NodeId, Mapping[str, Any]] = field(default_factory=dict)
    edges: Iterable[EdgeId] = ()
    edge_attrs: Mapping[EdgeId, Mapping[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze every field into owned containers: a generator passed as
        # ``edges`` would otherwise be consumed on first use, so replaying
        # the same update into a second store (or retrying after a failed
        # append) would silently drop every edge.  Plain dicts/tuples (not
        # MappingProxyType) keep updates picklable for worker processes.
        object.__setattr__(self, "edges", tuple(self.edges))
        object.__setattr__(
            self, "nodes", {n: dict(v) for n, v in self.nodes.items()}
        )
        object.__setattr__(
            self, "static", {n: dict(v) for n, v in self.static.items()}
        )
        object.__setattr__(
            self, "edge_attrs", {e: dict(v) for e, v in self.edge_attrs.items()}
        )


def append_snapshot(graph: TemporalGraph, update: SnapshotUpdate) -> TemporalGraph:
    """A new graph whose timeline ends with the update's time point."""
    if update.time in graph.timeline:
        raise ValidationError(f"time point {update.time!r} already exists")
    new_times = graph.timeline.labels + (update.time,)

    known_nodes = set(graph.node_presence.row_labels)
    incoming = dict(update.nodes)
    new_node_ids = [n for n in incoming if n not in known_nodes]
    all_nodes = graph.node_presence.row_labels + tuple(new_node_ids)
    node_pos = {n: i for i, n in enumerate(all_nodes)}

    varying_names = graph.varying_attribute_names
    for node, values in incoming.items():
        unknown = set(values) - set(varying_names)
        if unknown:
            raise UnknownLabelError(
                f"unknown time-varying attributes for {node!r}: {sorted(unknown)}"
            )

    # Attribute *names* are validated for every entry the update carries,
    # not just first-appearance nodes/edges — values for known entities
    # are still ignored, but a misspelled name never passes silently.
    static_name_set = {str(c) for c in graph.static_attrs.col_labels}
    for node, provided in update.static.items():
        unknown = set(provided) - static_name_set
        if unknown:
            raise UnknownLabelError(
                f"unknown static attributes for {node!r}: {sorted(unknown)}"
            )
    edge_attr_names = (
        {str(c) for c in graph.edge_attrs.col_labels}
        if graph.edge_attrs is not None
        else set()
    )
    for edge, provided in update.edge_attrs.items():
        unknown = set(provided) - edge_attr_names
        if unknown:
            raise UnknownLabelError(
                f"unknown edge attributes for {edge!r}: {sorted(unknown)}"
            )

    edges = list(update.edges)
    for u, v in edges:
        if u not in incoming or v not in incoming:
            raise ValidationError(
                f"edge {(u, v)!r} references a node absent from the snapshot"
            )

    node_values = np.zeros((len(all_nodes), len(new_times)), dtype=np.uint8)
    node_values[: graph.n_nodes, :-1] = graph.node_presence.values
    for node in incoming:
        node_values[node_pos[node], -1] = 1
    node_presence = LabeledFrame(all_nodes, new_times, node_values)

    static_names = graph.static_attrs.col_labels
    static_values = np.empty((len(all_nodes), len(static_names)), dtype=object)
    static_values[: graph.n_nodes] = graph.static_attrs.values
    for i, node in enumerate(new_node_ids):
        provided = dict(update.static.get(node, {}))
        for col, name in enumerate(static_names):
            static_values[graph.n_nodes + i, col] = provided.get(str(name))
    static_attrs = LabeledFrame(all_nodes, static_names, static_values)

    varying_attrs: dict[str, LabeledFrame] = {}
    for name in varying_names:
        values = np.full((len(all_nodes), len(new_times)), None, dtype=object)
        values[: graph.n_nodes, :-1] = graph.varying_attrs[name].values
        for node, node_values_map in incoming.items():
            if name in node_values_map:
                values[node_pos[node], -1] = node_values_map[name]
        varying_attrs[name] = LabeledFrame(all_nodes, new_times, values)

    known_edges = graph.edge_presence.row_labels
    known_edge_set = set(known_edges)
    new_edge_ids = [e for e in dict.fromkeys(edges) if e not in known_edge_set]
    all_edges = known_edges + tuple(new_edge_ids)
    edge_pos = {e: i for i, e in enumerate(all_edges)}
    edge_values = np.zeros((len(all_edges), len(new_times)), dtype=np.uint8)
    edge_values[: graph.n_edges, :-1] = graph.edge_presence.values
    for edge in edges:
        edge_values[edge_pos[edge], -1] = 1
    edge_presence = LabeledFrame(all_edges, new_times, edge_values)

    edge_attr_frame: LabeledFrame | None = None
    if graph.edge_attrs is not None:
        names = graph.edge_attrs.col_labels
        attr_values = np.empty((len(all_edges), len(names)), dtype=object)
        attr_values[: graph.n_edges] = graph.edge_attrs.values
        for i, edge in enumerate(new_edge_ids):
            provided = dict(update.edge_attrs.get(edge, {}))
            for col, name in enumerate(names):
                attr_values[graph.n_edges + i, col] = provided.get(str(name))
        edge_attr_frame = LabeledFrame(all_edges, names, attr_values)

    return TemporalGraph(
        timeline=Timeline(new_times),
        node_presence=node_presence,
        edge_presence=edge_presence,
        static_attrs=static_attrs,
        varying_attrs=varying_attrs,
        validate=False,
        edge_attrs=edge_attr_frame,
        # Keep the input graph's backend *selection*.  The appended
        # graph is a fresh value over fresh arrays, so a columnar input
        # rebuilds its layout lazily — the published version stays
        # immutable and earlier versions keep their own backends.
        storage=graph.storage_name,
    )


def snapshot_at(graph: TemporalGraph, time: Hashable) -> SnapshotUpdate:
    """The :class:`SnapshotUpdate` that reconstructs one existing point.

    Raises :class:`~repro.errors.UnknownLabelError` for a time point not
    on the timeline.  Static values are included for *every* node present
    at the point (``append_snapshot`` ignores them for known nodes), so
    the update is replayable regardless of when each node first appeared.
    """
    pos = graph.timeline.index_of(time)
    varying_names = graph.varying_attribute_names
    nodes: dict[NodeId, dict[str, Any]] = {}
    node_values = graph.node_presence.values
    for row, node in enumerate(graph.node_presence.row_labels):
        if not node_values[row, pos]:
            continue
        values: dict[str, Any] = {}
        for name in varying_names:
            value = graph.varying_attrs[name].values[row, pos]
            if value is not None:
                values[name] = value
        nodes[node] = values

    static_names = [str(c) for c in graph.static_attrs.col_labels]
    static: dict[NodeId, dict[str, Any]] = {}
    for row, node in enumerate(graph.static_attrs.row_labels):
        if node not in nodes:
            continue
        static[node] = {
            name: graph.static_attrs.values[row, col]
            for col, name in enumerate(static_names)
        }

    edge_values = graph.edge_presence.values
    edges = tuple(
        edge
        for row, edge in enumerate(graph.edge_presence.row_labels)
        if edge_values[row, pos]
    )

    edge_attrs: dict[EdgeId, dict[str, Any]] = {}
    if graph.edge_attrs is not None:
        names = [str(c) for c in graph.edge_attrs.col_labels]
        edge_set = set(edges)
        for row, edge in enumerate(graph.edge_attrs.row_labels):
            if edge not in edge_set:
                continue
            edge_attrs[edge] = {  # type: ignore[index]
                name: graph.edge_attrs.values[row, col]
                for col, name in enumerate(names)
            }
    return SnapshotUpdate(
        time=time, nodes=nodes, static=static, edges=edges, edge_attrs=edge_attrs
    )


def split_history(
    graph: TemporalGraph,
) -> tuple[TemporalGraph, list[SnapshotUpdate]]:
    """Decompose a graph into its first point plus per-point updates.

    Replaying the updates through :func:`append_snapshot` (or feeding
    them to :meth:`repro.materialize.IncrementalStore.append`) rebuilds a
    graph observably equal to the input — the replay identity the
    differential fuzz oracle checks for the incremental store.
    """
    labels = graph.timeline.labels
    first = labels[0]
    initial = graph.restricted(
        graph.node_presence.rows_any([first]),
        graph.edge_presence.rows_any([first]),
        [first],
    )
    return initial, [snapshot_at(graph, t) for t in labels[1:]]
