"""NetworkX interoperability.

Section 2 of the paper notes the model "can also be adapted for any
graph model".  This module converts between :class:`TemporalGraph` and
networkx:

* :func:`to_networkx` — one directed snapshot (or window) as an
  ``nx.DiGraph`` with node attributes resolved at the chosen time;
* :func:`from_snapshots` — build a :class:`TemporalGraph` from a
  time-ordered mapping of ``nx.DiGraph`` snapshots;
* :func:`aggregate_to_networkx` — render an
  :class:`~repro.core.AggregateGraph` as a weighted ``nx.DiGraph`` for
  downstream analysis or drawing.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence

import networkx as nx

from ..core import AggregateGraph, TemporalGraph, TemporalGraphBuilder, union
from ..errors import ValidationError

__all__ = ["to_networkx", "from_snapshots", "aggregate_to_networkx"]


def to_networkx(
    graph: TemporalGraph,
    times: Iterable[Hashable] | None = None,
) -> nx.DiGraph:
    """The union window over ``times`` as a directed networkx graph.

    Node attributes carry the static attribute values plus, for each
    time-varying attribute, a dict ``{time: value}`` over the window.
    Edge attributes carry the presence times within the window.
    """
    if times is None:
        window = graph.timeline.labels
    else:
        window = tuple(times)
    sub = union(graph, window)
    out = nx.DiGraph()
    for node in sub.nodes:
        payload = dict(
            zip(sub.static_attrs.col_labels, sub.static_attrs.row(node))
        )
        for name, frame in sub.varying_attrs.items():
            payload[name] = {
                t: frame.cell(node, t)
                for t in sub.timeline.labels
                if frame.cell(node, t) is not None
            }
        payload["times"] = sub.node_times(node)
        out.add_node(node, **payload)
    for u, v in sub.edges:
        out.add_edge(u, v, times=sub.edge_times((u, v)))
    return out


def from_snapshots(
    snapshots: Mapping[Hashable, nx.DiGraph],
    static: Sequence[str] = (),
    varying: Sequence[str] = (),
) -> TemporalGraph:
    """Build a temporal attributed graph from per-time snapshots.

    ``snapshots`` maps each time point (in timeline order — dicts
    preserve insertion order) to a directed graph whose node attribute
    dicts carry the declared static and time-varying attribute values.
    Static values are taken from the first snapshot in which the node
    appears; later snapshots may omit them.
    """
    times = tuple(snapshots)
    if not times:
        raise ValidationError("at least one snapshot is required")
    builder = TemporalGraphBuilder(times, static=static, varying=varying)
    for time, snapshot in snapshots.items():
        for node, payload in snapshot.nodes(data=True):
            static_values = {
                name: payload[name] for name in static if name in payload
            }
            builder.add_node(node, static_values)
            varying_values = {
                name: payload[name] for name in varying if name in payload
            }
            builder.set_node_presence(node, time, **varying_values)
        for u, v in snapshot.edges():
            builder.add_edge(u, v, [time])
    return builder.build()


def aggregate_to_networkx(aggregate: AggregateGraph) -> nx.DiGraph:
    """Render an aggregate graph as a weighted directed networkx graph.

    Aggregate nodes are keyed by their attribute tuples and carry a
    ``weight`` attribute; aggregate edges likewise.
    """
    out = nx.DiGraph()
    for key, weight in aggregate.node_weights.items():
        out.add_node(key, weight=weight)
    for (source, target), weight in aggregate.edge_weights.items():
        if source not in out:
            out.add_node(source, weight=0)
        if target not in out:
            out.add_node(target, weight=0)
        out.add_edge(source, target, weight=weight)
    return out
