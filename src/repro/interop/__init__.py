"""Interoperability with external tools (networkx, graphviz DOT)."""

from .dot import aggregate_to_dot, evolution_to_dot, write_dot
from .networkx_adapter import aggregate_to_networkx, from_snapshots, to_networkx

__all__ = [
    "to_networkx",
    "from_snapshots",
    "aggregate_to_networkx",
    "aggregate_to_dot",
    "evolution_to_dot",
    "write_dot",
]
