"""Graphviz DOT export for aggregate and evolution graphs.

The paper presents aggregate and evolution graphs as drawings (Figures
2-4, 12).  These writers emit the same pictures as DOT text, renderable
with any graphviz install; no graphviz dependency is needed to produce
the files.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path
from typing import Any

from ..core import AggregateGraph, EvolutionAggregate

__all__ = ["aggregate_to_dot", "evolution_to_dot", "write_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _key_label(key: Sequence[Any]) -> str:
    return ",".join(str(v) for v in key)


def aggregate_to_dot(aggregate: AggregateGraph, name: str = "aggregate") -> str:
    """An aggregate graph as DOT: nodes labeled ``tuple (weight)``,
    edges labeled with their weights (the Fig. 3 rendering)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=ellipse];"]
    for key, weight in sorted(aggregate.node_weights.items(), key=str):
        node_id = _quote(_key_label(key))
        lines.append(
            f"  {node_id} [label={_quote(f'{_key_label(key)} ({weight})')}];"
        )
    for (source, target), weight in sorted(
        aggregate.edge_weights.items(), key=str
    ):
        lines.append(
            f"  {_quote(_key_label(source))} -> {_quote(_key_label(target))} "
            f"[label={_quote(str(weight))}];"
        )
    lines.append("}")
    return "\n".join(lines)


def evolution_to_dot(
    evolution: EvolutionAggregate, name: str = "evolution"
) -> str:
    """An aggregated evolution graph as DOT (the Fig. 4b rendering).

    Every aggregate entity is labeled with its St/Gr/Shr weights;
    color encodes the dominant event kind (stability green, growth
    blue, shrinkage red).
    """
    colors = {"stability": "forestgreen", "growth": "steelblue",
              "shrinkage": "firebrick"}

    def dominant(weights) -> str:
        ranked = sorted(
            ("stability", "growth", "shrinkage"),
            key=lambda kind: getattr(weights, kind),
            reverse=True,
        )
        return colors[ranked[0]]

    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=ellipse];"]
    for key, weights in sorted(evolution.node_weights.items(), key=str):
        label = (
            f"{_key_label(key)}\\nSt={weights.stability} "
            f"Gr={weights.growth} Shr={weights.shrinkage}"
        )
        lines.append(
            f"  {_quote(_key_label(key))} [label={_quote(label)} "
            f"color={dominant(weights)}];"
        )
    for (source, target), weights in sorted(
        evolution.edge_weights.items(), key=str
    ):
        label = (
            f"St={weights.stability} Gr={weights.growth} "
            f"Shr={weights.shrinkage}"
        )
        for endpoint in (source, target):
            if endpoint not in evolution.node_weights:
                lines.append(f"  {_quote(_key_label(endpoint))};")
        lines.append(
            f"  {_quote(_key_label(source))} -> {_quote(_key_label(target))} "
            f"[label={_quote(label)} color={dominant(weights)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(dot: str, path: str | Path) -> Path:
    """Write DOT text to disk and return the path."""
    path = Path(path)
    path.write_text(dot + "\n")
    return path
