"""GraphTempo — an aggregation framework for evolving graphs.

A from-scratch reproduction of the EDBT 2023 paper by Tsoukanara,
Koloniari and Pitoura.  The public API re-exports the model layer
(:mod:`repro.core`), exploration (:mod:`repro.exploration`), partial
materialization (:mod:`repro.materialize`) and datasets
(:mod:`repro.datasets`).
"""

from .errors import GraphTempoError
from .core import (
    AggregateGraph,
    EvolutionAggregate,
    EvolutionGraph,
    EvolutionWeights,
    GraphIntegrityError,
    Interval,
    TemporalGraph,
    TemporalGraphBuilder,
    Timeline,
    aggregate,
    aggregate_evolution,
    attribute_predicate,
    difference,
    evolution,
    filter_appearances,
    intersection,
    project,
    union,
)
from .serving import QueryServer, Served
from .session import GraphTempoSession
from .storage import (
    ColumnarBackend,
    DenseBackend,
    GraphStorageBackend,
    backend_names,
    get_backend,
)
from .streaming import (
    EdgeEvent,
    GraphVersion,
    NodeEvent,
    StreamingStore,
)

__version__ = "1.0.0"

__all__ = [
    "GraphTempoError",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "GraphIntegrityError",
    "Interval",
    "Timeline",
    "project",
    "union",
    "intersection",
    "difference",
    "aggregate",
    "AggregateGraph",
    "evolution",
    "EvolutionGraph",
    "EvolutionAggregate",
    "EvolutionWeights",
    "aggregate_evolution",
    "filter_appearances",
    "attribute_predicate",
    "GraphTempoSession",
    "QueryServer",
    "Served",
    "StreamingStore",
    "GraphVersion",
    "NodeEvent",
    "EdgeEvent",
    "GraphStorageBackend",
    "DenseBackend",
    "ColumnarBackend",
    "backend_names",
    "get_backend",
    "__version__",
]
