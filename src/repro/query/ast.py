"""Abstract syntax of the GraphTempo query language.

Every node is a frozen dataclass; the evaluator
(:mod:`repro.query.evaluator`) pattern-matches on these types.  Time
labels are stored as written (ints or strings) — binding against a
graph's timeline happens at evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

def _value_text(value: Any) -> str:
    """Render a value as query syntax (quote anything non-trivial)."""
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if text.isidentifier():
        return text
    return f"'{text}'"


__all__ = [
    "WindowExpr",
    "OperatorExpr",
    "AggregateExpr",
    "EvolutionExpr",
    "ExploreExpr",
    "QueryExpr",
]


@dataclass(frozen=True)
class WindowExpr:
    """A time window: a single point or an inclusive span."""

    start: Any
    stop: Any | None = None

    @property
    def is_point(self) -> bool:
        return self.stop is None

    def __str__(self) -> str:
        if self.is_point:
            return f"[{_value_text(self.start)}]"
        return f"[{_value_text(self.start)}..{_value_text(self.stop)}]"


@dataclass(frozen=True)
class OperatorExpr:
    """A temporal operator application.

    ``name`` is one of ``project``, ``union``, ``intersection``,
    ``difference``; ``windows`` holds one window (project, single-window
    union) or two.
    """

    name: str
    windows: tuple[WindowExpr, ...]

    def __str__(self) -> str:
        return f"{self.name} " + ", ".join(str(w) for w in self.windows)


@dataclass(frozen=True)
class AggregateExpr:
    """``aggregate <attrs> [distinct|all] over <operator>``."""

    attributes: tuple[str, ...]
    distinct: bool
    source: OperatorExpr

    def __str__(self) -> str:
        mode = "distinct" if self.distinct else "all"
        return (
            f"aggregate {', '.join(self.attributes)} {mode} over {self.source}"
        )


@dataclass(frozen=True)
class EvolutionExpr:
    """``evolution <old window> -> <new window> by <attrs>``."""

    old: WindowExpr
    new: WindowExpr
    attributes: tuple[str, ...]

    def __str__(self) -> str:
        return f"evolution {self.old} -> {self.new} by {', '.join(self.attributes)}"


@dataclass(frozen=True)
class ExploreExpr:
    """``explore <event> [minimal|maximal] [extend old|new] k <n>
    [on nodes|edges] [by <attrs> [key <tuple> [-> <tuple>]]]``."""

    event: str
    goal: str
    extend: str
    k: int
    entity: str
    attributes: tuple[str, ...]
    key: Any

    def __str__(self) -> str:
        """Render back into valid query syntax (round-trips via parse)."""
        parts = [
            f"explore {self.event} {self.goal} extend {self.extend} k {self.k}",
            f"on {self.entity}",
        ]
        if self.attributes:
            parts.append(f"by {', '.join(self.attributes)}")
        if self.key is not None:
            if self.entity == "edges":
                source, target = self.key
                parts.append(
                    "key "
                    + ", ".join(_value_text(v) for v in source)
                    + " -> "
                    + ", ".join(_value_text(v) for v in target)
                )
            else:
                parts.append(
                    "key " + ", ".join(_value_text(v) for v in self.key)
                )
        return " ".join(parts)


QueryExpr = OperatorExpr | AggregateExpr | EvolutionExpr | ExploreExpr
