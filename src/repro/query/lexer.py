"""Tokenizer for the GraphTempo query language.

The language is deliberately tiny — a readable, typed surface over the
library for interactive use (see :mod:`repro.query.parser` for the
grammar).  The lexer produces a flat token stream; all keyword
recognition happens in the parser so attribute names may collide with
keywords when quoted.

Token kinds:

``WORD``     bare identifiers / keywords (``union``, ``gender``)
``NUMBER``   integer literals (years, thresholds)
``STRING``   single- or double-quoted literals (``'May'``)
``PUNCT``    one of ``[ ] ( ) , ; ->`` and ``..``
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError

__all__ = ["Token", "QuerySyntaxError", "tokenize"]


class QuerySyntaxError(ValidationError):
    """The query text could not be tokenized or parsed."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str  # WORD | NUMBER | STRING | PUNCT | END
    text: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.position})"


_PUNCT_TWO = ("->", "..")
_PUNCT_ONE = "[](),;"


def tokenize(text: str) -> list[Token]:
    """Split query text into tokens; raises on unknown characters."""
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        two = text[i : i + 2]
        if two in _PUNCT_TWO:
            tokens.append(Token("PUNCT", two, i))
            i += 2
            continue
        if ch in _PUNCT_ONE:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        if ch in "'\"":
            end = text.find(ch, i + 1)
            if end < 0:
                raise QuerySyntaxError(
                    f"unterminated string starting at position {i}"
                )
            tokens.append(Token("STRING", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < length and text[i + 1].isdigit()):
            j = i + 1
            while j < length and text[j].isdigit():
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("WORD", text[i:j], i))
            i = j
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("END", "", length))
    return tokens
