"""Evaluation of parsed queries against a temporal graph.

:func:`run_query` binds time labels against the graph's timeline (an
integer label written in the query matches an integer time point; a
quoted/bare word matches a string label), dispatches on the AST node
type and returns the natural result object:

=================  ======================================
query              result
=================  ======================================
operator           :class:`~repro.core.TemporalGraph`
aggregate          :class:`~repro.core.AggregateGraph`
evolution          :class:`~repro.core.EvolutionAggregate`
explore            :class:`~repro.exploration.ExplorationResult`
=================  ======================================
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any

from ..core import (
    TemporalGraph,
    aggregate,
    aggregate_evolution,
    difference,
    intersection,
    project,
    union,
)
from ..exploration import EntityKind, EventType, ExtendSide, Goal, explore
from .ast import (
    AggregateExpr,
    EvolutionExpr,
    ExploreExpr,
    OperatorExpr,
    QueryExpr,
    WindowExpr,
)
from .parser import parse
from ..errors import InvalidTypeError, UnknownLabelError

__all__ = ["run_query", "evaluate", "bind_window", "QueryBindingError"]


class QueryBindingError(UnknownLabelError):
    """A query referenced a time point or attribute the graph lacks."""


def _bind_point(graph: TemporalGraph, label: Any) -> Hashable:
    """Match a written label against the timeline, trying str fallback."""
    if label in graph.timeline:
        return label
    as_text = str(label)
    if as_text in graph.timeline:
        return as_text
    raise QueryBindingError(
        f"time point {label!r} is not on the graph's timeline"
    )


def bind_window(graph: TemporalGraph, window: WindowExpr) -> tuple[Hashable, ...]:
    """Resolve a window expression to concrete time labels."""
    start = _bind_point(graph, window.start)
    if window.is_point:
        return (start,)
    stop = _bind_point(graph, window.stop)
    return graph.timeline.span(start, stop)


def _evaluate_operator(graph: TemporalGraph, expr: OperatorExpr) -> TemporalGraph:
    windows = [bind_window(graph, w) for w in expr.windows]
    if expr.name == "project":
        if len(windows) == 1:
            return project(graph, windows[0])
        return project(graph, windows[0] + windows[1])
    if expr.name == "union":
        if len(windows) == 1:
            return union(graph, windows[0])
        return union(graph, windows[0], windows[1])
    if expr.name == "intersection":
        return intersection(graph, windows[0], windows[1])
    return difference(graph, windows[0], windows[1])


def evaluate(graph: TemporalGraph, expr: QueryExpr) -> Any:
    """Evaluate a parsed query expression against a graph."""
    if isinstance(expr, OperatorExpr):
        return _evaluate_operator(graph, expr)
    if isinstance(expr, AggregateExpr):
        source = _evaluate_operator(graph, expr.source)
        return aggregate(source, list(expr.attributes), distinct=expr.distinct)
    if isinstance(expr, EvolutionExpr):
        return aggregate_evolution(
            graph,
            bind_window(graph, expr.old),
            bind_window(graph, expr.new),
            list(expr.attributes),
        )
    if isinstance(expr, ExploreExpr):
        return explore(
            graph,
            EventType(expr.event),
            Goal(expr.goal),
            ExtendSide(expr.extend),
            expr.k,
            entity=EntityKind(expr.entity),
            attributes=list(expr.attributes),
            key=expr.key,
        )
    raise InvalidTypeError(f"unknown query expression: {expr!r}")


def run_query(graph: TemporalGraph, text: str) -> Any:
    """Parse and evaluate one query string.

    Examples
    --------
    >>> from repro.datasets import paper_example
    >>> g = paper_example()
    >>> agg = run_query(g, "aggregate gender distinct over union [t0], [t1]")
    >>> agg.node_weight(("f",))
    3
    """
    return evaluate(graph, parse(text))
