"""Recursive-descent parser for the GraphTempo query language.

Grammar (EBNF; keywords case-insensitive, attribute/time labels as
written)::

    query      = operator | aggregate | evolution | explore ;
    operator   = op_name window [ "," window ] ;
    op_name    = "project" | "union" | "intersection" | "difference" ;
    aggregate  = "aggregate" attrs [ "distinct" | "all" ] "over" operator ;
    evolution  = "evolution" window "->" window "by" attrs ;
    explore    = "explore" event [ goal ] [ "extend" side ] "k" NUMBER
                 [ "on" entity ] [ "by" attrs [ "key" key ] ] ;
    event      = "stability" | "growth" | "shrinkage" ;
    goal       = "minimal" | "maximal" ;
    side       = "old" | "new" ;
    entity     = "nodes" | "edges" ;
    attrs      = NAME { "," NAME } ;
    key        = tuple [ "->" tuple ] ;
    tuple      = value { "," value } ;
    window     = "[" point [ ".." point ] "]" ;
    point      = NUMBER | STRING | NAME ;

Examples::

    union [2000..2003], [2010]
    aggregate gender, publications distinct over union [t0], [t1]
    evolution [2000..2009] -> [2010] by gender
    explore growth minimal extend new k 10 by gender key f -> f
"""

from __future__ import annotations

from typing import Any

from .ast import (
    AggregateExpr,
    EvolutionExpr,
    ExploreExpr,
    OperatorExpr,
    QueryExpr,
    WindowExpr,
)
from .lexer import QuerySyntaxError, Token, tokenize

__all__ = ["parse", "QuerySyntaxError"]

_OPERATORS = ("project", "union", "intersection", "difference")
_EVENTS = ("stability", "growth", "shrinkage")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def fail(self, message: str) -> QuerySyntaxError:
        token = self.current
        return QuerySyntaxError(
            f"{message} at position {token.position} (found {token.text!r})"
        )

    def at_word(self, *words: str) -> bool:
        return (
            self.current.kind == "WORD"
            and self.current.text.lower() in words
        )

    def expect_word(self, *words: str) -> str:
        if not self.at_word(*words):
            raise self.fail(f"expected one of {words!r}")
        return self.advance().text.lower()

    def expect_punct(self, text: str) -> None:
        if not (self.current.kind == "PUNCT" and self.current.text == text):
            raise self.fail(f"expected {text!r}")
        self.advance()

    def at_punct(self, text: str) -> bool:
        return self.current.kind == "PUNCT" and self.current.text == text

    # -- grammar --------------------------------------------------------

    def parse_query(self) -> QueryExpr:
        if self.at_word(*_OPERATORS):
            result: QueryExpr = self.parse_operator()
        elif self.at_word("aggregate"):
            result = self.parse_aggregate()
        elif self.at_word("evolution"):
            result = self.parse_evolution()
        elif self.at_word("explore"):
            result = self.parse_explore()
        else:
            raise self.fail(
                "expected project/union/intersection/difference/"
                "aggregate/evolution/explore"
            )
        if self.current.kind != "END":
            raise self.fail("unexpected trailing input")
        return result

    def parse_operator(self) -> OperatorExpr:
        name = self.expect_word(*_OPERATORS)
        windows = [self.parse_window()]
        if self.at_punct(","):
            self.advance()
            windows.append(self.parse_window())
        if name in ("intersection", "difference") and len(windows) != 2:
            raise self.fail(f"{name} requires two windows")
        return OperatorExpr(name, tuple(windows))

    def parse_aggregate(self) -> AggregateExpr:
        self.expect_word("aggregate")
        attributes = self.parse_names()
        distinct = True
        if self.at_word("distinct", "all"):
            distinct = self.advance().text.lower() == "distinct"
        self.expect_word("over")
        source = self.parse_operator()
        return AggregateExpr(tuple(attributes), distinct, source)

    def parse_evolution(self) -> EvolutionExpr:
        self.expect_word("evolution")
        old = self.parse_window()
        self.expect_punct("->")
        new = self.parse_window()
        self.expect_word("by")
        attributes = self.parse_names()
        return EvolutionExpr(old, new, tuple(attributes))

    def parse_explore(self) -> ExploreExpr:
        self.expect_word("explore")
        event = self.expect_word(*_EVENTS)
        goal = "minimal"
        if self.at_word("minimal", "maximal"):
            goal = self.advance().text.lower()
        extend = "new"
        if self.at_word("extend"):
            self.advance()
            extend = self.expect_word("old", "new")
        self.expect_word("k")
        if self.current.kind != "NUMBER":
            raise self.fail("expected a threshold number after 'k'")
        k = int(self.advance().text)
        entity = "edges"
        if self.at_word("on"):
            self.advance()
            entity = self.expect_word("nodes", "edges")
        attributes: tuple[str, ...] = ()
        key: Any = None
        if self.at_word("by"):
            self.advance()
            attributes = tuple(self.parse_names())
            if self.at_word("key"):
                self.advance()
                first = tuple(self.parse_values())
                if self.at_punct("->"):
                    self.advance()
                    second = tuple(self.parse_values())
                    key = (first, second)
                elif entity == "edges":
                    # "key f -> f" omitted target is an error; a single
                    # tuple on edges means source == target.
                    key = (first, first)
                else:
                    key = first
        return ExploreExpr(event, goal, extend, k, entity, attributes, key)

    def parse_names(self) -> list[str]:
        names = [self.parse_name()]
        while self.at_punct(","):
            self.advance()
            # A following keyword like 'distinct' ends the list only via
            # lookahead failure, so commas must be followed by names.
            names.append(self.parse_name())
        return names

    def parse_name(self) -> str:
        if self.current.kind not in ("WORD", "STRING"):
            raise self.fail("expected an attribute name")
        return self.advance().text

    def parse_values(self) -> list[Any]:
        values = [self.parse_value()]
        while self.at_punct(","):
            self.advance()
            values.append(self.parse_value())
        return values

    def parse_value(self) -> Any:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return int(token.text)
        if token.kind in ("WORD", "STRING"):
            self.advance()
            return token.text
        raise self.fail("expected a value")

    def parse_window(self) -> WindowExpr:
        self.expect_punct("[")
        start = self.parse_value()
        stop = None
        if self.at_punct(".."):
            self.advance()
            stop = self.parse_value()
        self.expect_punct("]")
        return WindowExpr(start, stop)


def parse(text: str) -> QueryExpr:
    """Parse one query; raises :class:`QuerySyntaxError` on bad input."""
    return _Parser(tokenize(text)).parse_query()
