"""A small declarative query language over temporal attributed graphs
(the T-GQL / TGraph lineage of the paper's related work)."""

from .ast import (
    AggregateExpr,
    EvolutionExpr,
    ExploreExpr,
    OperatorExpr,
    WindowExpr,
)
from .evaluator import QueryBindingError, bind_window, evaluate, run_query
from .lexer import QuerySyntaxError, tokenize
from .parser import parse

__all__ = [
    "run_query",
    "evaluate",
    "parse",
    "tokenize",
    "bind_window",
    "QuerySyntaxError",
    "QueryBindingError",
    "WindowExpr",
    "OperatorExpr",
    "AggregateExpr",
    "EvolutionExpr",
    "ExploreExpr",
]
