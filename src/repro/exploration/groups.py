"""Attribute-group exploration: which groups have interesting intervals?

The paper's exploration fixes one aggregate entity (e.g. female-female
edges) and searches intervals.  Its conclusions name the dual as future
work: "detect intervals *and attribute groups* of interest".  This
module implements it: a multi-group U-/I-Explore that walks each
reference point's extension chain **once**, computing event counts for
*every* aggregate group simultaneously (one ``bincount`` over
precomputed group ids per candidate pair instead of one full scan per
group), and reports per group the minimal/maximal pair at which it
crosses the threshold.

Only static grouping attributes are supported — group membership must
be time-invariant for a single per-entity group id to exist.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core import Interval, TemporalGraph
from .events import EntityKind, EventType
from .explore import ExtendSide, Goal, IntervalPairResult
from .lattice import Semantics, Side
from ..errors import ExplorationError

__all__ = ["GroupExplorationResult", "explore_groups"]


@dataclass(frozen=True)
class GroupExplorationResult:
    """Per-group interesting pairs for one exploration case."""

    event: EventType
    goal: Goal
    extend: ExtendSide
    k: int
    attributes: tuple[str, ...]
    #: group key -> the pairs found for that group (one per reference
    #: point, as in single-group exploration).
    pairs_by_group: dict[Any, tuple[IntervalPairResult, ...]]
    evaluations: int

    @property
    def interesting_groups(self) -> tuple[Any, ...]:
        """Groups with at least one qualifying pair, by best count."""
        scored = [
            (max(p.count for p in pairs), key)
            for key, pairs in self.pairs_by_group.items()
            if pairs
        ]
        return tuple(key for _, key in sorted(scored, reverse=True, key=lambda s: (s[0], str(s[1]))))

    def best_pair(self, key: Any) -> IntervalPairResult | None:
        pairs = self.pairs_by_group.get(key, ())
        if not pairs:
            return None
        return max(pairs, key=lambda p: p.count)


class _GroupCounter:
    """Presence matrices plus per-entity group ids for fast bincounts."""

    def __init__(
        self,
        graph: TemporalGraph,
        entity: EntityKind,
        attributes: Sequence[str],
    ) -> None:
        if not attributes:
            raise ExplorationError("group exploration needs grouping attributes")
        for name in attributes:
            if not graph.is_static(name):
                raise ExplorationError(
                    f"group exploration requires static attributes; "
                    f"{name!r} is time-varying"
                )
        self.graph = graph
        self.entity = entity
        positions = [graph.static_attrs.col_position(a) for a in attributes]
        values = graph.static_attrs.values
        node_tuples = {
            node: tuple(values[i, p] for p in positions)
            for i, node in enumerate(graph.node_presence.row_labels)
        }
        if entity is EntityKind.NODES:
            keys = [node_tuples[n] for n in graph.node_presence.row_labels]
            self.presence = graph.node_presence.values.astype(bool)
        else:
            keys = [
                (node_tuples[u], node_tuples[v])
                for u, v in graph.edge_presence.row_labels  # type: ignore[misc]
            ]
            self.presence = graph.edge_presence.values.astype(bool)
        self.group_keys: list[Any] = sorted(set(keys), key=str)
        index = {key: i for i, key in enumerate(self.group_keys)}
        self.group_ids = np.fromiter(
            (index[key] for key in keys), dtype=np.int64, count=len(keys)
        )

    def _qualify(self, side: Side) -> np.ndarray:
        window = self.presence[:, side.interval.start : side.interval.stop + 1]
        if side.semantics is Semantics.UNION:
            return window.any(axis=1)
        return window.all(axis=1)

    def counts(self, event: EventType, old: Side, new: Side) -> np.ndarray:
        """Event count per group id, in one vectorized pass."""
        old_mask = self._qualify(old)
        new_mask = self._qualify(new)
        if event is EventType.STABILITY:
            mask = old_mask & new_mask
        elif event is EventType.GROWTH:
            mask = new_mask & ~old_mask
        else:
            mask = old_mask & ~new_mask
        return np.bincount(
            self.group_ids[mask], minlength=len(self.group_keys)
        )


def explore_groups(
    graph: TemporalGraph,
    event: EventType,
    goal: Goal,
    extend: ExtendSide,
    k: int,
    attributes: Sequence[str],
    entity: EntityKind = EntityKind.EDGES,
) -> GroupExplorationResult:
    """Run one exploration case for every aggregate group at once.

    Semantics per group match :func:`repro.exploration.explore` with
    ``key=<group>`` exactly (tested against it); the difference is
    cost — one chain walk total instead of one per group.
    """
    if k < 1:
        raise ExplorationError(f"threshold k must be positive, got {k}")
    counter = _GroupCounter(graph, entity, attributes)
    n_times = len(graph.timeline)
    n_groups = len(counter.group_keys)
    semantics = Semantics.UNION if goal is Goal.MINIMAL else Semantics.INTERSECTION
    found: dict[int, list[IntervalPairResult]] = {g: [] for g in range(n_groups)}
    evaluations = 0

    for ref in range(n_times - 1):
        if extend is ExtendSide.NEW:
            chain = [
                (Side.point(ref), Side(Interval(ref + 1, stop), semantics))
                for stop in range(ref + 1, n_times)
            ]
        else:
            chain = [
                (Side(Interval(start, ref), semantics), Side.point(ref + 1))
                for start in range(ref, -1, -1)
            ]
        if goal is Goal.MINIMAL:
            active = np.ones(n_groups, dtype=bool)
            for old, new in chain:
                if not active.any():
                    break
                evaluations += 1
                counts = counter.counts(event, old, new)
                crossed = active & (counts >= k)
                for g in np.flatnonzero(crossed):
                    found[int(g)].append(
                        IntervalPairResult(old, new, int(counts[g]))
                    )
                active &= ~crossed
        else:
            # Definition 3.5: the maximal pair is the *longest* passing
            # extension.  Some Table-1 maximal cases are monotonically
            # increasing (a group can fail early yet pass at the longest
            # extension), so the whole chain is walked and the last
            # passing pair kept per group.
            candidate: dict[int, IntervalPairResult] = {}
            for old, new in chain:
                evaluations += 1
                counts = counter.counts(event, old, new)
                for g in np.flatnonzero(counts >= k):
                    candidate[int(g)] = IntervalPairResult(
                        old, new, int(counts[g])
                    )
            for g, pair in candidate.items():
                found[g].append(pair)

    pairs_by_group = {
        counter.group_keys[g]: tuple(pairs) for g, pairs in found.items()
    }
    return GroupExplorationResult(
        event=event,
        goal=goal,
        extend=extend,
        k=k,
        attributes=tuple(attributes),
        pairs_by_group=pairs_by_group,
        evaluations=evaluations,
    )
