"""Evolution exploration (Section 3): events, semi-lattices, U-Explore /
I-Explore and threshold initialization."""

from .drill import DrillResult, drill_explore
from .events import ChainEvaluator, ChainStep, EntityKind, EventCounter, EventType
from .explore import (
    ExplorationResult,
    ExtendSide,
    Goal,
    IntervalPairResult,
    exhaustive_explore,
    explore,
    i_explore,
    u_explore,
)
from .groups import GroupExplorationResult, explore_groups
from .lattice import Semantics, Side, left_chain, right_chain
from .two_sided import (
    TwoSidedPair,
    find_non_monotonic_path,
    two_sided_counts,
    two_sided_explore,
)
from .thresholds import (
    consecutive_event_counts,
    suggest_threshold,
    threshold_ladder,
)

__all__ = [
    "EventType",
    "EntityKind",
    "EventCounter",
    "ChainEvaluator",
    "ChainStep",
    "Semantics",
    "Side",
    "right_chain",
    "left_chain",
    "Goal",
    "ExtendSide",
    "IntervalPairResult",
    "ExplorationResult",
    "u_explore",
    "i_explore",
    "explore",
    "exhaustive_explore",
    "explore_groups",
    "GroupExplorationResult",
    "consecutive_event_counts",
    "suggest_threshold",
    "threshold_ladder",
    "TwoSidedPair",
    "two_sided_counts",
    "two_sided_explore",
    "find_non_monotonic_path",
    "drill_explore",
    "DrillResult",
]
