"""Hierarchical exploration: find coarse, then drill into base time.

On a long timeline, even the pruned strategies evaluate O(n) chains per
reference point.  The interactive workflow the paper's conclusion aims
at ("assist users navigate large graphs") suggests a two-stage search:

1. explore the **coarsened** graph (e.g. years -> half-decades) with a
   coarse threshold — cheap, few time points;
2. for every coarse hit, re-run the exploration at **base** granularity
   restricted to the window the hit covers (plus one unit of context on
   the open side), with the real threshold.

Because union-semantics coarsening preserves entity presence, a burst of
base-level events is visible at the coarse level too (with a coarse
threshold no larger than the fine one), so the drill narrows where to
look without hiding true positives of at least unit size.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from ..core import TemporalGraph
from ..core.granularity import TimeHierarchy, coarsen
from .events import EntityKind, EventType
from .explore import ExplorationResult, ExtendSide, Goal, IntervalPairResult, explore

__all__ = ["DrillResult", "drill_explore"]


@dataclass(frozen=True)
class DrillResult:
    """Outcome of a two-stage exploration."""

    coarse: ExplorationResult
    #: One fine-grained result per coarse hit, keyed by the coarse
    #: window (first unit label, last unit label).
    fine: dict[tuple[Any, Any], ExplorationResult]

    @property
    def total_evaluations(self) -> int:
        return self.coarse.evaluations + sum(
            r.evaluations for r in self.fine.values()
        )

    def all_fine_pairs(self) -> Iterator[IntervalPairResult]:
        """Every base-granularity pair found, across all drills."""
        for result in self.fine.values():
            yield from result.pairs


def _base_window(
    graph: TemporalGraph,
    hierarchy: TimeHierarchy,
    coarse_graph: TemporalGraph,
    first_unit_index: int,
    last_unit_index: int,
) -> list:
    """Base labels covered by a coarse unit-index range."""
    labels = []
    for index in range(first_unit_index, last_unit_index + 1):
        unit = coarse_graph.timeline.label_at(index)
        labels.extend(
            m for m in hierarchy.members(unit) if m in graph.timeline
        )
    return labels


def drill_explore(
    graph: TemporalGraph,
    hierarchy: TimeHierarchy,
    event: EventType,
    goal: Goal,
    extend: ExtendSide,
    k: int,
    coarse_k: int | None = None,
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
) -> DrillResult:
    """Two-stage exploration through a time hierarchy.

    ``coarse_k`` defaults to ``k`` (sound for union-coarsened presence:
    a base window with >= k events has >= k at the coarse level that
    covers it).  Each coarse hit is re-explored at base granularity on
    the restricted sub-timeline.
    """
    if coarse_k is None:
        coarse_k = k
    coarse_graph = coarsen(graph, hierarchy, "union")
    coarse_result = explore(
        coarse_graph, event, goal, extend, coarse_k,
        entity=entity, attributes=attributes, key=key,
    )
    fine: dict[tuple[Any, Any], ExplorationResult] = {}
    for pair in coarse_result.pairs:
        first = min(pair.old.interval.start, pair.new.interval.start)
        last = max(pair.old.interval.stop, pair.new.interval.stop)
        window = _base_window(graph, hierarchy, coarse_graph, first, last)
        if len(window) < 2:
            continue
        sub = graph.restricted(graph.nodes, graph.edges, window)
        coarse_key = (
            coarse_graph.timeline.label_at(first),
            coarse_graph.timeline.label_at(last),
        )
        if coarse_key in fine:
            continue
        fine[coarse_key] = explore(
            sub, event, goal, extend, k,
            entity=entity, attributes=attributes, key=key,
        )
    return DrillResult(coarse=coarse_result, fine=fine)
