"""Event definition and counting (``result(G)``, Section 3).

Three event kinds are derived from an ordered pair of sides
``(old, new)``:

* **stability** — entities qualifying on both sides (the intersection
  graph of the pair);
* **growth** — entities qualifying on the new side but not the old
  (``T_new - T_old``);
* **shrinkage** — entities qualifying on the old side but not the new
  (``T_old - T_new``).

``result(G)`` is the number of events of interest in the aggregate of the
event graph: either the total entity count, or — as in the paper's
Figures 13/14, which track female-female edges — the DIST weight of one
aggregate entity.  :class:`EventCounter` precomputes presence matrices
and (for static attributes) per-entity tuple matches, so a single count
is a handful of vectorized mask operations; exploration runs thousands
of counts.
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Sequence
from typing import Any

import numpy as np

from ..core import TemporalGraph
from ..core.aggregation import _node_tuple_table
from .lattice import Semantics, Side
from ..errors import ExplorationError

__all__ = ["EventType", "EntityKind", "EventCounter"]


class EventType(enum.Enum):
    """The three evolution event kinds (Section 3)."""

    STABILITY = "stability"
    GROWTH = "growth"
    SHRINKAGE = "shrinkage"

    def __str__(self) -> str:
        return self.value


class EntityKind(enum.Enum):
    """Which entities an exploration counts events over."""

    NODES = "nodes"
    EDGES = "edges"

    def __str__(self) -> str:
        return self.value


class EventCounter:
    """Counts events of one kind of entity between two sides.

    Parameters
    ----------
    graph:
        The temporal graph being explored.
    entity:
        Count node events or edge events.
    attributes:
        Aggregation attributes; empty means "count raw entities".
    key:
        The aggregate entity whose weight is the result.  For nodes, an
        attribute tuple (e.g. ``("f",)``); for edges, a
        ``(source tuple, target tuple)`` pair (e.g. ``(("f",), ("f",))``
        for female-female edges).  ``None`` counts all entities.

    Static-attribute keys are resolved once into a boolean per-entity
    match mask; time-varying attributes fall back to counting distinct
    ``(entity, tuple)`` appearances inside the event window.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        entity: EntityKind = EntityKind.EDGES,
        attributes: Sequence[str] = (),
        key: Any = None,
    ) -> None:
        self.graph = graph
        self.entity = entity
        self.attributes = tuple(attributes)
        self.key = key
        if key is not None and not self.attributes:
            raise ExplorationError("a key filter requires aggregation attributes")
        self._node_presence = graph.node_presence.values.astype(bool)
        self._edge_presence = graph.edge_presence.values.astype(bool)
        self._all_static = all(graph.is_static(a) for a in self.attributes)
        self._match_mask = self._build_match_mask() if self._all_static else None

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------

    def _static_node_tuples(self) -> dict[Hashable, tuple[Any, ...]]:
        positions = [
            self.graph.static_attrs.col_position(a) for a in self.attributes
        ]
        values = self.graph.static_attrs.values
        return {
            node: tuple(values[i, p] for p in positions)
            for i, node in enumerate(self.graph.node_presence.row_labels)
        }

    def _build_match_mask(self) -> np.ndarray | None:
        """Per-entity boolean: does this entity's static tuple match key?"""
        if self.key is None:
            return None
        tuples = self._static_node_tuples()
        if self.entity is EntityKind.NODES:
            wanted = tuple(self.key)
            return np.fromiter(
                (
                    tuples[node] == wanted
                    for node in self.graph.node_presence.row_labels
                ),
                dtype=bool,
                count=self.graph.n_nodes,
            )
        source_key, target_key = self.key
        source_key, target_key = tuple(source_key), tuple(target_key)
        return np.fromiter(
            (
                tuples[u] == source_key and tuples[v] == target_key
                for u, v in self.graph.edge_presence.row_labels  # type: ignore[misc]
            ),
            dtype=bool,
            count=self.graph.n_edges,
        )

    # ------------------------------------------------------------------
    # Side qualification
    # ------------------------------------------------------------------

    def _presence(self) -> np.ndarray:
        if self.entity is EntityKind.NODES:
            return self._node_presence
        return self._edge_presence

    def _qualify(self, side: Side) -> np.ndarray:
        """Boolean entity mask: qualifies on this side (ANY vs ALL)."""
        window = self._presence()[:, side.interval.start : side.interval.stop + 1]
        if side.semantics is Semantics.UNION:
            return window.any(axis=1)
        return window.all(axis=1)

    def event_mask(self, event: EventType, old: Side, new: Side) -> np.ndarray:
        """Boolean mask of entities participating in the event."""
        old_mask = self._qualify(old)
        new_mask = self._qualify(new)
        if event is EventType.STABILITY:
            return old_mask & new_mask
        if event is EventType.GROWTH:
            return new_mask & ~old_mask
        return old_mask & ~new_mask

    def event_entities(
        self, event: EventType, old: Side, new: Side
    ) -> tuple[Hashable, ...]:
        """The entity ids participating in the event."""
        mask = self.event_mask(event, old, new)
        labels = (
            self.graph.node_presence.row_labels
            if self.entity is EntityKind.NODES
            else self.graph.edge_presence.row_labels
        )
        return tuple(label for label, keep in zip(labels, mask) if keep)

    # ------------------------------------------------------------------
    # result(G)
    # ------------------------------------------------------------------

    def count(self, event: EventType, old: Side, new: Side) -> int:
        """``result(G)`` for the event graph of ``(old, new)``."""
        mask = self.event_mask(event, old, new)
        if self._match_mask is not None:
            return int((mask & self._match_mask).sum())
        if self._all_static:
            return int(mask.sum())
        return self._count_appearances(event, old, new, mask)

    def _event_window(self, event: EventType, old: Side, new: Side) -> list[Hashable]:
        """Time points whose attribute values define the event's tuples."""
        labels = self.graph.timeline.labels
        if event is EventType.GROWTH:
            interval = new.interval
        elif event is EventType.SHRINKAGE:
            interval = old.interval
        else:
            return [
                labels[i]
                for i in list(old.interval.indices()) + list(new.interval.indices())
            ]
        return [labels[i] for i in interval.indices()]

    def _count_appearances(
        self, event: EventType, old: Side, new: Side, mask: np.ndarray
    ) -> int:
        """Fallback for time-varying attributes: distinct (entity, tuple)
        appearances in the event window, optionally filtered by key."""
        window = self._event_window(event, old, new)
        node_table = _node_tuple_table(self.graph, self.attributes, tuple(window))
        if self.entity is EntityKind.NODES:
            kept_nodes = {
                node
                for node, keep in zip(self.graph.node_presence.row_labels, mask)
                if keep
            }
            appearances = {
                (node, values)
                for node, _, values in node_table.rows
                if node in kept_nodes
            }
            if self.key is None:
                return len(appearances)
            wanted = tuple(self.key)
            return sum(1 for _, values in appearances if values == wanted)
        lookup = {(node, t): values for node, t, values in node_table.rows}
        time_positions = [self.graph.timeline.index_of(t) for t in window]
        presence = self.graph.edge_presence.values
        appearances_edges: set[tuple[Any, Any]] = set()
        for row_idx, edge in enumerate(self.graph.edge_presence.row_labels):
            if not mask[row_idx]:
                continue
            u, v = edge  # type: ignore[misc]
            for t, t_pos in zip(window, time_positions):
                if not presence[row_idx, t_pos]:
                    continue
                source = lookup.get((u, t))
                target = lookup.get((v, t))
                if source is None or target is None:
                    continue
                appearances_edges.add((edge, (source, target)))
        if self.key is None:
            return len(appearances_edges)
        wanted_pair = (tuple(self.key[0]), tuple(self.key[1]))
        return sum(1 for _, pair in appearances_edges if pair == wanted_pair)
