"""Event definition and counting (``result(G)``, Section 3).

Three event kinds are derived from an ordered pair of sides
``(old, new)``:

* **stability** — entities qualifying on both sides (the intersection
  graph of the pair);
* **growth** — entities qualifying on the new side but not the old
  (``T_new - T_old``);
* **shrinkage** — entities qualifying on the old side but not the new
  (``T_old - T_new``).

``result(G)`` is the number of events of interest in the aggregate of the
event graph: either the total entity count, or — as in the paper's
Figures 13/14, which track female-female edges — the DIST weight of one
aggregate entity.  :class:`EventCounter` precomputes presence matrices,
per-entity tuple matches (static attributes) and integer tuple-code
matrices (time-varying attributes), so a single count is a handful of
vectorized mask operations; exploration runs thousands of counts.

:class:`ChainEvaluator` goes one step further for the exploration
workload itself: along one semi-lattice extension chain, consecutive
pairs differ by exactly one base time point, so the extended side's
qualification mask can be maintained with a single OR/AND per step
instead of re-reducing the whole growing window.
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core import Interval, TemporalGraph
from .lattice import ExtendSide, Semantics, Side
from ..errors import ExplorationError
from ..obs.metrics import get_metrics

__all__ = [
    "EventType",
    "EntityKind",
    "EventCounter",
    "ChainEvaluator",
    "ChainStep",
    "event_mask_from",
    "static_match_mask",
]

#: Sentinel tuple code for a key whose tuple never occurs in the graph:
#: distinct from every assigned code (>= 0) and from the "entity absent"
#: marker (-1), so comparisons against it match nothing.
_UNSEEN_CODE = -2


class EventType(enum.Enum):
    """The three evolution event kinds (Section 3)."""

    STABILITY = "stability"
    GROWTH = "growth"
    SHRINKAGE = "shrinkage"

    def __str__(self) -> str:
        return self.value


class EntityKind(enum.Enum):
    """Which entities an exploration counts events over."""

    NODES = "nodes"
    EDGES = "edges"

    def __str__(self) -> str:
        return self.value


def event_mask_from(
    event: EventType, old_mask: np.ndarray, new_mask: np.ndarray
) -> np.ndarray:
    """Combine two side-qualification masks into the event-entity mask.

    Public because it *is* the lattice-to-operator correspondence the
    metamorphic laws check: stability is the intersection mask, growth
    the ``new - old`` difference mask, shrinkage the reverse.
    """
    if event is EventType.STABILITY:
        return old_mask & new_mask
    if event is EventType.GROWTH:
        return new_mask & ~old_mask
    return old_mask & ~new_mask


def static_match_mask(
    graph: TemporalGraph,
    entity: EntityKind,
    attributes: Sequence[str],
    key: Any,
    entities: Sequence[Hashable] | None = None,
) -> np.ndarray:
    """Per-entity boolean mask: static attribute tuple matches ``key``.

    ``entities`` restricts the mask to a subset of entity ids (in the
    given order) — the delta path :class:`repro.streaming.ExplorationView`
    uses to extend its match mask with only the rows a snapshot append
    introduced, instead of rebuilding over the whole entity set.  With
    ``entities=None`` the mask covers every row of the entity's presence
    frame, in row order (what :class:`EventCounter` precomputes).
    """
    positions = [graph.static_attrs.col_position(a) for a in tuple(attributes)]
    values = graph.static_attrs.values
    tuples = {
        node: tuple(values[i, p] for p in positions)
        for i, node in enumerate(graph.node_presence.row_labels)
    }
    if entity is EntityKind.NODES:
        labels = (
            tuple(entities)
            if entities is not None
            else graph.node_presence.row_labels
        )
        wanted = tuple(key)
        return np.fromiter(
            (tuples[node] == wanted for node in labels),
            dtype=bool,
            count=len(labels),
        )
    edge_labels = (
        tuple(entities)
        if entities is not None
        else graph.edge_presence.row_labels
    )
    source_key, target_key = key
    source_key, target_key = tuple(source_key), tuple(target_key)
    return np.fromiter(
        (
            _endpoint_entry(tuples, (u, v), u) == source_key
            and _endpoint_entry(tuples, (u, v), v) == target_key
            for u, v in edge_labels  # type: ignore[misc]
        ),
        dtype=bool,
        count=len(edge_labels),
    )


def _endpoint_entry(
    mapping: dict[Hashable, Any], edge: Hashable, node: Hashable
) -> Any:
    """A per-node table entry for an edge endpoint; dangling edges raise
    from the taxonomy instead of leaking a bare ``KeyError``."""
    try:
        return mapping[node]
    except KeyError:
        raise ExplorationError(
            f"edge {edge!r} references node {node!r} absent from "
            "node presence; the graph has dangling edges"
        ) from None


class EventCounter:
    """Counts events of one kind of entity between two sides.

    Parameters
    ----------
    graph:
        The temporal graph being explored.
    entity:
        Count node events or edge events.
    attributes:
        Aggregation attributes; empty means "count raw entities".
    key:
        The aggregate entity whose weight is the result.  For nodes, an
        attribute tuple (e.g. ``("f",)``); for edges, a
        ``(source tuple, target tuple)`` pair (e.g. ``(("f",), ("f",))``
        for female-female edges).  ``None`` counts all entities.

    Static-attribute keys are resolved once into a boolean per-entity
    match mask.  Time-varying attributes fall back to counting distinct
    ``(entity, tuple)`` appearances inside the event window; to keep
    that path vectorized, the per-``(node, t)`` attribute tuples are
    factorized once at construction into an integer code matrix, so each
    count is a masked numpy reduction instead of a Python loop over
    entities x window.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        entity: EntityKind = EntityKind.EDGES,
        attributes: Sequence[str] = (),
        key: Any = None,
    ) -> None:
        self.graph = graph
        self.entity = entity
        self.attributes = tuple(attributes)
        self.key = key
        if key is not None and not self.attributes:
            raise ExplorationError("a key filter requires aggregation attributes")
        # Presence matrices come from the graph's storage backend, so
        # exploration (and every ChainEvaluator built on this counter)
        # reads whichever physical layout the graph selected.
        self._node_presence = graph.storage.presence_matrix("nodes")
        self._edge_presence = graph.storage.presence_matrix("edges")
        self._all_static = all(graph.is_static(a) for a in self.attributes)
        self._match_mask = self._build_match_mask() if self._all_static else None
        #: Integer tuple code per (entity row, time column); -1 marks an
        #: absent entity.  Only built for the time-varying fallback.
        self._entity_codes: np.ndarray | None = None
        #: Row stride for building distinct (entity, code) ids.
        self._code_stride = 1
        #: Resolved code of ``key`` (pair code for edges), or ``None``
        #: when no key applies on the time-varying path.
        self._key_code: int | None = None
        if self.attributes and not self._all_static:
            self._build_tuple_codes()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------

    def _build_match_mask(self) -> np.ndarray | None:
        """Per-entity boolean: does this entity's static tuple match key?"""
        if self.key is None:
            return None
        return static_match_mask(
            self.graph, self.entity, self.attributes, self.key
        )

    def _build_tuple_codes(self) -> None:
        """Factorize per-``(node, t)`` attribute tuples into integer codes.

        One pass over the node/time grid (the cost of a single
        ``_node_tuple_table`` call, amortized over every subsequent
        count) assigns each distinct attribute tuple an integer and
        stores the per-cell codes in a dense matrix.  For edge entities
        the endpoint codes are further combined into a single pair code
        per ``(edge, t)`` cell, so distinct-appearance counting is one
        ``np.unique`` over masked ids.
        """
        graph = self.graph
        n_nodes, n_times = self._node_presence.shape
        static_positions = {
            name: graph.static_attrs.col_position(name)
            for name in self.attributes
            if graph.is_static(name)
        }
        varying_values = {
            name: graph.varying_attrs[name].values
            for name in self.attributes
            if name not in static_positions
        }
        static_values = graph.static_attrs.values
        code_of: dict[tuple[Any, ...], int] = {}
        codes = np.full((n_nodes, n_times), -1, dtype=np.int64)
        for row in range(n_nodes):
            static_part = {
                name: static_values[row, pos]
                for name, pos in static_positions.items()
            }
            for col in range(n_times):
                if not self._node_presence[row, col]:
                    continue
                values = tuple(
                    static_part[name]
                    if name in static_part
                    else varying_values[name][row, col]
                    for name in self.attributes
                )
                code = code_of.setdefault(values, len(code_of))
                codes[row, col] = code
        base = max(1, len(code_of))
        if self.entity is EntityKind.NODES:
            self._entity_codes = codes
            self._code_stride = base
            if self.key is not None:
                self._key_code = code_of.get(tuple(self.key), _UNSEEN_CODE)
            return
        node_position = {
            node: i for i, node in enumerate(graph.node_presence.row_labels)
        }
        source_rows = np.fromiter(
            (
                _endpoint_entry(node_position, (u, v), u)
                for u, v in graph.edge_presence.row_labels  # type: ignore[misc]
            ),
            dtype=np.int64,
            count=graph.n_edges,
        )
        target_rows = np.fromiter(
            (
                _endpoint_entry(node_position, (u, v), v)
                for u, v in graph.edge_presence.row_labels  # type: ignore[misc]
            ),
            dtype=np.int64,
            count=graph.n_edges,
        )
        source_codes = codes[source_rows]
        target_codes = codes[target_rows]
        defined = (source_codes >= 0) & (target_codes >= 0)
        self._entity_codes = np.where(
            defined, source_codes * base + target_codes, -1
        )
        self._code_stride = base * base
        if self.key is not None:
            source_code = code_of.get(tuple(self.key[0]), -1)
            target_code = code_of.get(tuple(self.key[1]), -1)
            self._key_code = (
                source_code * base + target_code
                if source_code >= 0 and target_code >= 0
                else _UNSEEN_CODE
            )

    # ------------------------------------------------------------------
    # Side qualification
    # ------------------------------------------------------------------

    def _presence(self) -> np.ndarray:
        if self.entity is EntityKind.NODES:
            return self._node_presence
        return self._edge_presence

    def _qualify(self, side: Side) -> np.ndarray:
        """Boolean entity mask: qualifies on this side (ANY vs ALL)."""
        window = self._presence()[:, side.interval.start : side.interval.stop + 1]
        if side.semantics is Semantics.UNION:
            return window.any(axis=1)
        return window.all(axis=1)

    def event_mask(self, event: EventType, old: Side, new: Side) -> np.ndarray:
        """Boolean mask of entities participating in the event."""
        return event_mask_from(event, self._qualify(old), self._qualify(new))

    def event_entities(
        self, event: EventType, old: Side, new: Side
    ) -> tuple[Hashable, ...]:
        """The entity ids participating in the event."""
        mask = self.event_mask(event, old, new)
        labels = (
            self.graph.node_presence.row_labels
            if self.entity is EntityKind.NODES
            else self.graph.edge_presence.row_labels
        )
        return tuple(label for label, keep in zip(labels, mask) if keep)

    # ------------------------------------------------------------------
    # result(G)
    # ------------------------------------------------------------------

    def count(self, event: EventType, old: Side, new: Side) -> int:
        """``result(G)`` for the event graph of ``(old, new)``."""
        return self.count_for_mask(
            event, old, new, self.event_mask(event, old, new)
        )

    def count_for_mask(
        self, event: EventType, old: Side, new: Side, mask: np.ndarray
    ) -> int:
        """``result(G)`` given a precomputed event-entity mask.

        The mask must be the one :meth:`event_mask` would return for the
        same pair; :class:`ChainEvaluator` maintains it incrementally
        along extension chains instead of recomputing it per pair.
        """
        if self._match_mask is not None:
            return int((mask & self._match_mask).sum())
        if self._all_static:
            return int(mask.sum())
        return self._count_appearances(event, old, new, mask)

    def _event_window_indices(
        self, event: EventType, old: Side, new: Side
    ) -> list[int]:
        """Timeline indices whose attribute values define the event's
        tuples, deduplicated (overlapping stability sides would repeat
        indices) and in timeline order."""
        if event is EventType.GROWTH:
            return list(new.interval.indices())
        if event is EventType.SHRINKAGE:
            return list(old.interval.indices())
        return sorted(set(old.interval.indices()) | set(new.interval.indices()))

    def _event_window(self, event: EventType, old: Side, new: Side) -> list[Hashable]:
        """Time points whose attribute values define the event's tuples."""
        labels = self.graph.timeline.labels
        return [labels[i] for i in self._event_window_indices(event, old, new)]

    def _count_appearances(
        self, event: EventType, old: Side, new: Side, mask: np.ndarray
    ) -> int:
        """Fallback for time-varying attributes: distinct (entity, tuple)
        appearances in the event window, optionally filtered by key.

        Pure masked numpy reductions over the precomputed tuple-code
        matrix: a key count is one equality + ``any`` per entity row, a
        keyless count one ``np.unique`` over the masked (entity, code)
        ids.
        """
        codes = self._entity_codes
        if codes is None:  # pragma: no cover - guarded by count_for_mask
            raise ExplorationError("tuple codes were not built for this counter")
        window = self._event_window_indices(event, old, new)
        window_codes = codes[:, window]
        valid = (
            self._presence()[:, window]
            & (window_codes >= 0)
            & mask[:, None]
        )
        if self.key is not None:
            hits = valid & (window_codes == self._key_code)
            return int(hits.any(axis=1).sum())
        rows, cols = np.nonzero(valid)
        ids = rows * self._code_stride + window_codes[rows, cols]
        return int(np.unique(ids).size)


@dataclass(frozen=True)
class ChainStep:
    """One evaluated interval pair along an extension chain."""

    old: Side
    new: Side
    count: int
    #: The event-entity mask the count was reduced from (parity-tested
    #: against :meth:`EventCounter.event_mask`).
    mask: np.ndarray


class ChainEvaluator:
    """Incremental ``result(G)`` evaluation along semi-lattice chains.

    One exploration run evaluates thousands of interval pairs, but the
    pairs are not independent: along one extension chain the reference
    side never changes and the extended side grows by exactly one base
    time point per step.  The evaluator exploits both facts —

    * the reference side's qualification mask is computed **once per
      chain** instead of once per pair;
    * the extended side's mask is maintained **incrementally**: each
      semi-lattice extension is a single OR (union semantics) or AND
      (intersection semantics) with one presence column, O(entities)
      instead of O(entities x span).

    ``incremental=False`` recomputes both side masks from scratch at
    every step — the naive per-pair path the seed implementation used.
    Both modes produce bit-identical masks and counts (asserted by the
    parity suite); the flag exists for parity testing and for the
    old-vs-new rows of ``benchmarks/bench_exploration_scaling.py``.
    """

    def __init__(
        self,
        counter: EventCounter,
        event: EventType,
        incremental: bool = True,
    ) -> None:
        self.counter = counter
        self.event = event
        self.incremental = incremental

    # ------------------------------------------------------------------
    # Mask primitives (also used by the two-sided explorer)
    # ------------------------------------------------------------------

    def _presence(self) -> np.ndarray:
        return self.counter._presence()

    def point_mask(self, index: int) -> np.ndarray:
        """The presence column of one base time point."""
        return self._presence()[:, index]

    def side_mask(self, side: Side) -> np.ndarray:
        """A side's qualification mask, reduced from scratch."""
        return self.counter._qualify(side)

    def extend_side_mask(
        self, mask: np.ndarray, index: int, semantics: Semantics
    ) -> np.ndarray:
        """The mask of a side extended by the base point ``index`` —
        one OR/AND with a single presence column."""
        column = self.point_mask(index)
        if semantics is Semantics.UNION:
            return mask | column
        return mask & column

    def _step(
        self,
        old: Side,
        new: Side,
        old_mask: np.ndarray | None,
        new_mask: np.ndarray | None,
    ) -> ChainStep:
        if not self.incremental or old_mask is None or new_mask is None:
            old_mask = self.counter._qualify(old)
            new_mask = self.counter._qualify(new)
        mask = event_mask_from(self.event, old_mask, new_mask)
        count = self.counter.count_for_mask(self.event, old, new, mask)
        get_metrics().inc("exploration.chain_steps")
        return ChainStep(old, new, count, mask)

    def pair_count(
        self,
        old: Side,
        new: Side,
        old_mask: np.ndarray | None = None,
        new_mask: np.ndarray | None = None,
    ) -> int:
        """``result(G)`` for one explicit pair, reusing caller-maintained
        side masks when given (the two-sided explorer's entry point)."""
        return self._step(old, new, old_mask, new_mask).count

    # ------------------------------------------------------------------
    # Chain walks (the Table-1 strategies' inner loops)
    # ------------------------------------------------------------------

    def chain(
        self, reference: int, extend: ExtendSide, semantics: Semantics
    ) -> Iterator[ChainStep]:
        """The extension chain of one reference point, lazily evaluated.

        Extending NEW: the reference is the old point ``reference`` and
        the new side runs ``[reference+1]``, ``[reference+1..reference+2]``,
        ...  Extending OLD: the reference is the new point
        ``reference + 1`` and the old side runs ``[reference]``,
        ``[reference-1..reference]``, ...  Laziness matters: U-Explore
        and I-Explore prune the tail of the chain, and no pruned step is
        ever evaluated.
        """
        presence = self._presence()
        n_times = presence.shape[1]
        if not 0 <= reference < n_times - 1:
            raise ExplorationError(
                f"chain reference {reference} out of range 0..{n_times - 2}"
            )
        get_metrics().inc("exploration.chains")
        if extend is ExtendSide.NEW:
            old = Side.point(reference)
            reference_mask = presence[:, reference]
            extended = presence[:, reference + 1]
            for stop in range(reference + 1, n_times):
                if stop > reference + 1:
                    extended = self.extend_side_mask(extended, stop, semantics)
                yield self._step(
                    old,
                    Side(Interval(reference + 1, stop), semantics),
                    reference_mask,
                    extended,
                )
        else:
            new = Side.point(reference + 1)
            reference_mask = presence[:, reference + 1]
            extended = presence[:, reference]
            for start in range(reference, -1, -1):
                if start < reference:
                    extended = self.extend_side_mask(extended, start, semantics)
                yield self._step(
                    Side(Interval(start, reference), semantics),
                    new,
                    extended,
                    reference_mask,
                )

    def consecutive(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[ChainStep]:
        """Consecutive point pairs ``(T_i, T_{i+1})`` — threshold
        initialization (Section 3.5) and the degenerate minimal cases.
        Each presence column is sliced once and shared by its two pairs.
        ``start``/``stop`` bound the reference indices ``i`` (defaults:
        every pair), letting the parallel explorer hand each chunk a
        slice of the references."""
        presence = self._presence()
        last = presence.shape[1] - 1 if stop is None else stop
        for i in range(start, last):
            yield self._step(
                Side.point(i),
                Side.point(i + 1),
                presence[:, i],
                presence[:, i + 1],
            )

    def longest(
        self, extend: ExtendSide, start: int = 0, stop: int | None = None
    ) -> Iterator[ChainStep]:
        """Per reference point, the longest intersection-semantics
        extension — the degenerate maximal cases of Table 1.  The
        prefix/suffix ANDs are accumulated incrementally, one column per
        reference, instead of re-reducing each full-length window.

        ``start``/``stop`` bound the reference indices.  A ranged call
        seeds the prefix (and trims the suffix precomputation) with the
        same left-to-right / right-to-left column order as the full
        walk, so every step's mask is bit-identical to the serial one.
        """
        presence = self._presence()
        n_times = presence.shape[1]
        last = n_times - 1 if stop is None else stop
        if extend is ExtendSide.OLD:
            accumulated = presence[:, 0] if n_times else None
            if accumulated is not None:
                for column in range(1, start + 1):
                    accumulated = accumulated & presence[:, column]
            for i in range(start, last):
                if i > start and accumulated is not None:
                    accumulated = accumulated & presence[:, i]
                yield self._step(
                    Side(Interval(0, i), Semantics.INTERSECTION),
                    Side.point(i + 1),
                    accumulated,
                    presence[:, i + 1],
                )
        else:
            suffix: list[np.ndarray | None] = [None] * n_times
            if self.incremental and n_times > 1:
                running = presence[:, n_times - 1]
                suffix[n_times - 1] = running
                for column in range(n_times - 2, start, -1):
                    running = presence[:, column] & running
                    suffix[column] = running
            for i in range(start, last):
                yield self._step(
                    Side.point(i),
                    Side(Interval(i + 1, n_times - 1), Semantics.INTERSECTION),
                    presence[:, i],
                    suffix[i + 1],
                )
