"""Initialization of the exploration threshold ``k`` (Section 3.5).

The starting value ``w_th`` is the minimum or maximum event count over
all pairs of *consecutive* time points: the intersection graphs for
stability, the appropriate difference graphs for growth and shrinkage.
For a monotonically increasing exploration one starts from the minimum
and raises ``k``; for a decreasing one, from the maximum, lowering it —
this is how the paper derives the ``k1 <= k2 <= k3`` ladders of its
Figures 13 and 14.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..core import TemporalGraph
from .events import ChainEvaluator, EntityKind, EventCounter, EventType
from ..errors import ExplorationError

__all__ = ["consecutive_event_counts", "suggest_threshold", "threshold_ladder"]


def consecutive_event_counts(
    graph: TemporalGraph,
    event: EventType,
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
) -> list[int]:
    """Event counts for every consecutive time-point pair ``(T_i, T_i+1)``."""
    counter = EventCounter(graph, entity=entity, attributes=attributes, key=key)
    evaluator = ChainEvaluator(counter, event)
    return [step.count for step in evaluator.consecutive()]


def suggest_threshold(
    graph: TemporalGraph,
    event: EventType,
    mode: str = "max",
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
) -> int:
    """The paper's initial threshold ``w_th``.

    ``mode`` is ``"max"`` (start high and decrease — the right start for
    monotonically decreasing explorations) or ``"min"`` (start low and
    increase).  Counts of zero are ignored when they are not the only
    value, so a single empty pair does not collapse the suggestion; when
    *every* count is zero the suggestion is floored at 1, the smallest
    threshold :func:`repro.exploration.explore` accepts.
    """
    if mode not in ("max", "min"):
        raise ExplorationError(f"mode must be 'max' or 'min', got {mode!r}")
    counts = consecutive_event_counts(
        graph, event, entity=entity, attributes=attributes, key=key
    )
    positive = [c for c in counts if c > 0]
    pool = positive or counts
    if not pool:
        raise ExplorationError("graph has fewer than two time points")
    return max(1, max(pool) if mode == "max" else min(pool))


def threshold_ladder(w_th: int, factors: Sequence[float]) -> list[int]:
    """Derive a ladder of thresholds from ``w_th``.

    The paper reports results at three thresholds obtained by scaling
    ``w_th`` (e.g. ``k3 = w_th, k2 = w_th/2, k1 = w_th/86`` for
    MovieLens stability).  Values are floored to at least 1.
    """
    ladder = []
    for factor in factors:
        if factor <= 0:
            raise ExplorationError(f"ladder factors must be positive, got {factor}")
        ladder.append(max(1, round(w_th * factor)))
    return ladder
