"""Union / intersection semi-lattices over consecutive intervals (§3.1).

The exploration strategies never consider arbitrary time sets: starting
from pairs of consecutive base time points they repeatedly extend one
side of the pair with its *child* in the union or intersection
semi-lattice — i.e. the span grown by one adjacent base interval.  A
:class:`Side` is such a span together with the semantics that give it
meaning as a graph:

* ``Semantics.UNION`` — an entity qualifies on the side if it exists at
  *any* covered time point (the relaxed view; monotonically increasing);
* ``Semantics.INTERSECTION`` — the entity must exist at *every* covered
  time point (the strict view; monotonically decreasing).
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass

from ..core import Interval, Timeline
from ..core.intervals import TimeSet
from ..errors import ExplorationError

__all__ = ["Semantics", "Side", "ExtendSide", "right_chain", "left_chain"]


class Semantics(enum.Enum):
    """How a multi-point span selects entities."""

    UNION = "union"
    INTERSECTION = "intersection"

    def __str__(self) -> str:
        return self.value


class ExtendSide(enum.Enum):
    """Which end of the pair is extended; the other is the reference."""

    OLD = "old"
    NEW = "new"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Side:
    """One side of an interval pair: a span plus its semantics.

    A single time point is the same graph under either semantics; spans
    of length > 1 differ.
    """

    interval: Interval
    semantics: Semantics = Semantics.UNION

    @classmethod
    def point(cls, index: int) -> "Side":
        """A single-time-point side (semantics irrelevant)."""
        return cls(Interval.point(index), Semantics.UNION)

    @property
    def is_point(self) -> bool:
        return self.interval.is_point

    def extend_right(self) -> "Side":
        """The right child in this side's semi-lattice."""
        return Side(self.interval.extend_right(), self.semantics)

    def extend_left(self) -> "Side":
        """The left child in this side's semi-lattice."""
        return Side(self.interval.extend_left(), self.semantics)

    def labels(self, timeline: Timeline) -> TimeSet:
        """The time-point labels this side spans on a concrete timeline.

        This is the bridge from lattice coordinates to operator time
        sets: under union semantics the side *is* ``union(labels)``,
        under intersection semantics ``project(labels)`` — the
        correspondence the metamorphic exploration laws exercise.
        """
        return timeline.labels_for(self.interval)

    def __str__(self) -> str:
        if self.is_point:
            return str(self.interval)
        return f"{self.interval}({self.semantics})"


def right_chain(start: int, last: int, semantics: Semantics) -> Iterator[Side]:
    """Sides ``[start..start]``, ``[start..start+1]``, ... ``[start..last]``.

    The extension chain U-Explore / I-Explore walk when growing the right
    (newer) end of a pair.
    """
    if last < start:
        raise ExplorationError(f"chain end {last} precedes start {start}")
    for stop in range(start, last + 1):
        yield Side(Interval(start, stop), semantics)


def left_chain(stop: int, first: int, semantics: Semantics) -> Iterator[Side]:
    """Sides ``[stop..stop]``, ``[stop-1..stop]``, ... ``[first..stop]``.

    The extension chain walked when growing the left (older) end.
    """
    if first > stop:
        raise ExplorationError(f"chain start {first} exceeds end {stop}")
    for start in range(stop, first - 1, -1):
        yield Side(Interval(start, stop), semantics)
