"""Two-sided exploration: extending both ends of an interval pair.

Section 3.3 closes with a warning: "When we extend both T_new and
T_old, difference is non-monotonous irrespectively to the semantics
(union or intersection) used" — which is why the paper's strategies fix
one reference point.  This module makes the consequence concrete:

* :func:`two_sided_counts` enumerates the full two-sided candidate
  space (every pair of non-overlapping spans) and its event counts;
* :func:`find_non_monotonic_path` exhibits a concrete violation — a
  chain of pairwise-nested pairs whose counts go up and then down — the
  empirical content of the paper's claim (tested on both datasets);
* :func:`two_sided_explore` is the honest fallback when both sides must
  vary: exhaustive search over the (quadratic) space with an explicit
  size guard, returning all pairs meeting the threshold that are
  minimal/maximal under pairwise span inclusion.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core import Interval, TemporalGraph
from .events import ChainEvaluator, EntityKind, EventCounter, EventType
from .explore import Goal
from .lattice import Semantics, Side
from ..errors import ExplorationError

__all__ = [
    "TwoSidedPair",
    "two_sided_counts",
    "find_non_monotonic_path",
    "two_sided_explore",
]


@dataclass(frozen=True)
class TwoSidedPair:
    """A candidate pair where both sides may be intervals."""

    old: Interval
    new: Interval
    count: int

    def contains(self, other: "TwoSidedPair") -> bool:
        """Span-wise containment (both sides)."""
        return self.old.contains(other.old) and self.new.contains(other.new)


def two_sided_counts(
    graph: TemporalGraph,
    event: EventType,
    semantics: Semantics,
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
    max_pairs: int = 20_000,
) -> list[TwoSidedPair]:
    """Counts for every non-overlapping (old span, new span) pair.

    The candidate space is O(n^4) in the number of time points; its size
    — the number of index quadruples ``a <= b < c <= d``, i.e.
    ``C(n+2, 4)`` — is computed arithmetically *before* anything is
    enumerated, so the ``max_pairs`` guard fails fast on a long timeline
    instead of materializing the doomed pair list first.

    Both sides' qualification masks are maintained incrementally through
    :class:`~repro.exploration.events.ChainEvaluator`: the old side's
    mask extends by one column per ``old_stop`` step and is shared by
    every new span evaluated against it.
    """
    n = len(graph.timeline)
    total = math.comb(n + 2, 4)
    if total > max_pairs:
        raise ExplorationError(
            f"two-sided space has {total} pairs (> {max_pairs}); "
            "shorten the timeline or raise max_pairs explicitly"
        )
    counter = EventCounter(graph, entity=entity, attributes=attributes, key=key)
    evaluator = ChainEvaluator(counter, event)
    results = []
    for old_start in range(n):
        old_mask: np.ndarray | None = None
        for old_stop in range(old_start, n - 1):
            old_mask = (
                evaluator.point_mask(old_start)
                if old_mask is None
                else evaluator.extend_side_mask(old_mask, old_stop, semantics)
            )
            old = Interval(old_start, old_stop)
            old_side = Side(old, semantics)
            for new_start in range(old_stop + 1, n):
                new_mask: np.ndarray | None = None
                for new_stop in range(new_start, n):
                    new_mask = (
                        evaluator.point_mask(new_start)
                        if new_mask is None
                        else evaluator.extend_side_mask(
                            new_mask, new_stop, semantics
                        )
                    )
                    new = Interval(new_start, new_stop)
                    count = evaluator.pair_count(
                        old_side, Side(new, semantics), old_mask, new_mask
                    )
                    results.append(TwoSidedPair(old, new, count))
    return results


def find_non_monotonic_path(
    graph: TemporalGraph,
    event: EventType,
    semantics: Semantics,
    entity: EntityKind = EntityKind.EDGES,
) -> tuple[TwoSidedPair, TwoSidedPair, TwoSidedPair] | None:
    """A nested chain ``a ⊂ b ⊂ c`` whose counts are not monotone.

    Returns the witness (or ``None`` if the graph happens to be
    monotone, which finite data may be).  The existence of witnesses on
    ordinary data is the paper's justification for single-sided
    exploration.
    """
    pairs = two_sided_counts(graph, event, semantics, entity=entity)
    by_spans = {(p.old, p.new): p for p in pairs}
    for a in pairs:
        # Grow the old side, then the new side (one concrete nesting).
        if a.old.start == 0:
            continue
        b_spans = (a.old.extend_left(), a.new)
        b = by_spans.get(b_spans)
        if b is None:
            continue
        if b.new.stop + 1 >= len(graph.timeline):
            continue
        c = by_spans.get((b.old, b.new.extend_right()))
        if c is None:
            continue
        ups_then_down = a.count < b.count > c.count
        down_then_up = a.count > b.count < c.count
        if ups_then_down or down_then_up:
            return (a, b, c)
    return None


def two_sided_explore(
    graph: TemporalGraph,
    event: EventType,
    goal: Goal,
    k: int,
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
    max_pairs: int = 20_000,
) -> list[TwoSidedPair]:
    """Exhaustive two-sided exploration with pairwise-inclusion pruning.

    Returns the passing pairs that are *minimal* (no passing pair is
    span-contained in them) or *maximal* (no passing pair contains
    them).  Without monotonicity no search-space pruning is sound, so
    this is a filter over the full enumeration — the price the paper's
    reference-point restriction avoids.
    """
    if k < 1:
        raise ExplorationError(f"threshold k must be positive, got {k}")
    semantics = Semantics.UNION if goal is Goal.MINIMAL else Semantics.INTERSECTION
    passing = [
        p
        for p in two_sided_counts(
            graph, event, semantics,
            entity=entity, attributes=attributes, key=key, max_pairs=max_pairs,
        )
        if p.count >= k
    ]
    kept = []
    for candidate in passing:
        if goal is Goal.MINIMAL:
            dominated = any(
                other is not candidate and candidate.contains(other)
                for other in passing
            )
        else:
            dominated = any(
                other is not candidate and other.contains(candidate)
                for other in passing
            )
        if not dominated:
            kept.append(candidate)
    return kept
