"""U-Explore, I-Explore and the eight exploration cases of Table 1.

The exploration problem (Definition 3.6): given a threshold ``k``, find
the *minimal* (under union-semantics extension) or *maximal* (under
intersection-semantics extension) interval pairs between which at least
``k`` events of one kind occurred.

Every case fixes one end of the pair as a reference time point and
extends the other end through the appropriate semi-lattice:

===========  =======  ===========  ==================  =================
Event        Goal     Extended     Monotonicity        Strategy
===========  =======  ===========  ==================  =================
stability    minimal  old or new   increasing          U-Explore
stability    maximal  old or new   decreasing          I-Explore
growth       minimal  new (∪)      increasing          U-Explore
growth       minimal  old (∪)      decreasing          consecutive pairs
growth       maximal  old (∩)      increasing          longest interval
growth       maximal  new (∩)      decreasing          I-Explore
shrinkage    minimal  old (∪)      increasing          U-Explore
shrinkage    minimal  new (∪)      decreasing          consecutive pairs
shrinkage    maximal  new (∩)      increasing          longest interval
shrinkage    maximal  old (∩)      decreasing          I-Explore
===========  =======  ===========  ==================  =================

The two degenerate strategies are the paper's shortcuts: when extension
can only lower the count, only the shortest pairs can be minimal (steps
1-2 of U-Explore); when extension can only raise it, only the longest
extension can be maximal.

All strategies run through :class:`~repro.exploration.events.ChainEvaluator`,
which maintains the extended side's qualification mask incrementally
along each chain; pass ``incremental=False`` to force the naive
re-reduce-every-pair path (bit-identical results, used by the parity
suite and the scaling benchmark).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from ..core import TemporalGraph
from ..parallel import InlineExecutor, get_executor, plan_chunks
from .events import ChainEvaluator, ChainStep, EntityKind, EventCounter, EventType
from .lattice import ExtendSide, Semantics, Side
from ..errors import ExplorationError
from ..obs.metrics import get_metrics
from ..obs.trace import trace_span

__all__ = [
    "Goal",
    "ExtendSide",
    "IntervalPairResult",
    "ExplorationResult",
    "u_explore",
    "i_explore",
    "explore",
    "exhaustive_explore",
]


class Goal(enum.Enum):
    """Minimal pairs (union-semantics extension) or maximal pairs
    (intersection-semantics extension)."""

    MINIMAL = "minimal"
    MAXIMAL = "maximal"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class IntervalPairResult:
    """One reported interval pair and its event count."""

    old: Side
    new: Side
    count: int

    def __str__(self) -> str:
        return f"({self.old}, {self.new}): {self.count}"


@dataclass(frozen=True)
class ExplorationResult:
    """The outcome of one exploration run.

    ``evaluations`` counts how many ``result(G)`` computations were
    performed — the cost metric the monotonicity pruning reduces (used by
    the pruning-ablation benchmark).
    """

    event: EventType
    goal: Goal
    extend: ExtendSide
    k: int
    pairs: tuple[IntervalPairResult, ...]
    evaluations: int

    def best(self) -> IntervalPairResult | None:
        """The pair with the highest count (ties: first)."""
        if not self.pairs:
            return None
        return max(self.pairs, key=lambda pair: pair.count)

    def diff(self, other: "ExplorationResult") -> tuple[str, ...]:
        """Human-readable differences from another exploration result.

        Compares the problem parameters and the *set* of reported
        ``(old, new, count)`` pairs; ``evaluations`` is deliberately
        ignored — it is the cost metric strategies legitimately differ
        on, not part of the answer the differential oracle diffs.
        """
        problems: list[str] = []
        for field_name in ("event", "goal", "extend", "k"):
            ours = getattr(self, field_name)
            theirs = getattr(other, field_name)
            if ours != theirs:
                problems.append(f"{field_name} differs: {ours} != {theirs}")
        mine = {(str(p.old), str(p.new)): p.count for p in self.pairs}
        yours = {(str(p.old), str(p.new)): p.count for p in other.pairs}
        for key in sorted(set(mine) | set(yours)):
            a = mine.get(key)
            b = yours.get(key)
            if a != b:
                problems.append(f"pair {key!r}: count {a} != {b}")
        return tuple(problems)

    def __str__(self) -> str:
        pairs = ", ".join(str(p) for p in self.pairs) or "none"
        return (
            f"{self.event}/{self.goal} extending {self.extend} with k={self.k}: "
            f"{pairs} [{self.evaluations} evaluations]"
        )


def _pair(step: ChainStep) -> IntervalPairResult:
    return IntervalPairResult(step.old, step.new, step.count)


def _chain_capacity(n_times: int, reference: int, extend: ExtendSide) -> int:
    """How many pairs the full (unpruned) chain of a reference holds."""
    if extend is ExtendSide.NEW:
        return n_times - 1 - reference
    return reference + 1


def _record_pruning(
    n_times: int, reference: int, extend: ExtendSide, taken: int
) -> None:
    """Credit the monotonicity pruning with the chain steps it skipped."""
    skipped = _chain_capacity(n_times, reference, extend) - taken
    if skipped > 0:
        get_metrics().inc("exploration.pruned_steps", skipped)


# ----------------------------------------------------------------------
# Ranged chunk workers
#
# Each Table-1 strategy iterates independent reference points, so its
# loop body runs unchanged over any slice ``[start, stop)`` of the
# reference range.  The serial path executes the same worker over the
# full range ``(0, references)`` — parallel and serial results are the
# same function applied to a partition vs. the whole, concatenated in
# chunk order, hence bit-identical.  Workers return
# ``(pairs, evaluations)``; pruning/chain metrics accumulate in the
# worker registry and are merged back by the pool.
# ----------------------------------------------------------------------

#: ``(counter, event, extend, k, incremental)`` — shared with every chunk.
_StrategyPayload = tuple[EventCounter, EventType, ExtendSide, int, bool]
#: One slice ``(start, stop)`` of chain reference indices.
_ReferenceRange = tuple[int, int]
_ChunkResult = tuple[list[IntervalPairResult], int]


def _u_chunk(payload: _StrategyPayload, task: _ReferenceRange) -> _ChunkResult:
    """U-Explore over one slice of reference points."""
    counter, event, extend, k, incremental = payload
    start, stop = task
    evaluator = ChainEvaluator(counter, event, incremental=incremental)
    n_times = len(counter.graph.timeline)
    pairs: list[IntervalPairResult] = []
    evaluations = 0
    for reference in range(start, stop):
        taken = 0
        for step in evaluator.chain(reference, extend, Semantics.UNION):
            taken += 1
            evaluations += 1
            if step.count >= k:
                pairs.append(_pair(step))
                break
        _record_pruning(n_times, reference, extend, taken)
    return pairs, evaluations


def _i_chunk(payload: _StrategyPayload, task: _ReferenceRange) -> _ChunkResult:
    """I-Explore over one slice of reference points."""
    counter, event, extend, k, incremental = payload
    start, stop = task
    evaluator = ChainEvaluator(counter, event, incremental=incremental)
    n_times = len(counter.graph.timeline)
    pairs: list[IntervalPairResult] = []
    evaluations = 0
    for reference in range(start, stop):
        candidate: IntervalPairResult | None = None
        taken = 0
        for step in evaluator.chain(reference, extend, Semantics.INTERSECTION):
            taken += 1
            evaluations += 1
            if step.count >= k:
                candidate = _pair(step)
            else:
                break
        _record_pruning(n_times, reference, extend, taken)
        if candidate is not None:
            pairs.append(candidate)
    return pairs, evaluations


def _consecutive_chunk(
    payload: _StrategyPayload, task: _ReferenceRange
) -> _ChunkResult:
    """Consecutive-pairs strategy over one slice of reference points."""
    counter, event, _extend, k, incremental = payload
    start, stop = task
    evaluator = ChainEvaluator(counter, event, incremental=incremental)
    pairs: list[IntervalPairResult] = []
    evaluations = 0
    for step in evaluator.consecutive(start, stop):
        evaluations += 1
        if step.count >= k:
            pairs.append(_pair(step))
    return pairs, evaluations


def _longest_chunk(
    payload: _StrategyPayload, task: _ReferenceRange
) -> _ChunkResult:
    """Longest-extension strategy over one slice of reference points."""
    counter, event, extend, k, incremental = payload
    start, stop = task
    evaluator = ChainEvaluator(counter, event, incremental=incremental)
    pairs: list[IntervalPairResult] = []
    evaluations = 0
    for step in evaluator.longest(extend, start, stop):
        evaluations += 1
        if step.count >= k:
            pairs.append(_pair(step))
    return pairs, evaluations


def _run_strategy(
    chunk_fn: Any,
    payload: Any,
    counter: EventCounter,
    parallelism: int | str | None,
) -> tuple[tuple[IntervalPairResult, ...], int]:
    """Run a ranged chunk worker over every reference point.

    Serial executors get one call over the full range; pools get the
    range partitioned by the chunk planner and the slices' results
    concatenated in chunk order.
    """
    n_times = len(counter.graph.timeline)
    references = max(0, n_times - 1)
    n_rows = (
        counter.graph.n_nodes
        if counter.entity is EntityKind.NODES
        else counter.graph.n_edges
    )
    executor = get_executor(
        parallelism, task_hint=references * n_times * max(1, n_rows)
    )
    if isinstance(executor, InlineExecutor):
        pairs, evaluations = chunk_fn(payload, (0, references))
        return tuple(pairs), evaluations
    tasks = [
        (chunk.start, chunk.stop)
        for chunk in plan_chunks(references, executor.workers)
    ]
    results = executor.map(chunk_fn, tasks, payload)
    pairs = []
    evaluations = 0
    for chunk_pairs, chunk_evaluations in results:
        pairs.extend(chunk_pairs)
        evaluations += chunk_evaluations
    return tuple(pairs), evaluations


def u_explore(
    counter: EventCounter,
    event: EventType,
    extend: ExtendSide,
    k: int,
    *,
    incremental: bool = True,
    parallelism: int | str | None = None,
) -> ExplorationResult:
    """Union Exploration (Section 3.2): minimal pairs with >= k events.

    The extended side walks its union semi-lattice; counts are
    monotonically increasing along the chain, so the first pair reaching
    ``k`` is the minimal one for its reference point and the rest of the
    chain is pruned.  Reference points are independent, so a pool
    distributes them without touching the per-chain pruning.
    """
    pairs, evaluations = _run_strategy(
        _u_chunk, (counter, event, extend, k, incremental), counter, parallelism
    )
    return ExplorationResult(event, Goal.MINIMAL, extend, k, pairs, evaluations)


def i_explore(
    counter: EventCounter,
    event: EventType,
    extend: ExtendSide,
    k: int,
    *,
    incremental: bool = True,
    parallelism: int | str | None = None,
) -> ExplorationResult:
    """Intersection Exploration (Section 3.2): maximal pairs with >= k.

    The extended side walks its intersection semi-lattice; counts are
    monotonically decreasing, so each extension that still passes
    replaces its predecessor in the candidate set, and the chain stops at
    the first failure.  References whose shortest pair already fails are
    pruned entirely (step 2 of the paper's algorithm).
    """
    pairs, evaluations = _run_strategy(
        _i_chunk, (counter, event, extend, k, incremental), counter, parallelism
    )
    return ExplorationResult(event, Goal.MAXIMAL, extend, k, pairs, evaluations)


def _consecutive_only(
    counter: EventCounter,
    event: EventType,
    extend: ExtendSide,
    k: int,
    *,
    incremental: bool = True,
    parallelism: int | str | None = None,
) -> ExplorationResult:
    """Degenerate minimal case: the operator is monotonically decreasing
    under the requested extension, so only consecutive point pairs can be
    minimal (Sections 3.3/3.4)."""
    pairs, evaluations = _run_strategy(
        _consecutive_chunk,
        (counter, event, extend, k, incremental),
        counter,
        parallelism,
    )
    return ExplorationResult(event, Goal.MINIMAL, extend, k, pairs, evaluations)


def _longest_only(
    counter: EventCounter,
    event: EventType,
    extend: ExtendSide,
    k: int,
    *,
    incremental: bool = True,
    parallelism: int | str | None = None,
) -> ExplorationResult:
    """Degenerate maximal case: the operator is monotonically increasing
    under the requested extension, so for each reference the longest
    extension is the only candidate maximal pair."""
    pairs, evaluations = _run_strategy(
        _longest_chunk,
        (counter, event, extend, k, incremental),
        counter,
        parallelism,
    )
    return ExplorationResult(event, Goal.MAXIMAL, extend, k, pairs, evaluations)


def explore(
    graph: TemporalGraph,
    event: EventType,
    goal: Goal,
    extend: ExtendSide,
    k: int,
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
    *,
    incremental: bool = True,
    parallelism: int | str | None = None,
) -> ExplorationResult:
    """Run one of the eight Table-1 exploration cases.

    Parameters
    ----------
    graph:
        The temporal graph to explore.
    event, goal, extend:
        Which Table-1 row to run.
    k:
        The event-count threshold (see
        :func:`repro.exploration.thresholds.suggest_threshold`).
    entity, attributes, key:
        What to count — e.g. ``entity=EDGES, attributes=["gender"],
        key=(("f",), ("f",))`` counts female-female edges as in the
        paper's Figures 13/14.
    incremental:
        Evaluate chains incrementally (the default) or naively per pair;
        the results are identical, only the cost differs.
    parallelism:
        ``None`` (ambient default — see :mod:`repro.parallel`), a worker
        count, or ``"auto"``.  Chains are distributed over reference
        points; the per-chain U-/I-Explore pruning is untouched and the
        result is bit-identical to a serial run.
    """
    if k < 1:
        raise ExplorationError(f"threshold k must be positive, got {k}")
    get_metrics().inc("exploration.runs")
    with trace_span(
        "explore", event=str(event), goal=str(goal), extend=str(extend), k=k
    ):
        counter = EventCounter(graph, entity=entity, attributes=attributes, key=key)
        kwargs: dict[str, Any] = {
            "incremental": incremental,
            "parallelism": parallelism,
        }
        if event is EventType.STABILITY:
            if goal is Goal.MINIMAL:
                return u_explore(counter, event, extend, k, **kwargs)
            return i_explore(counter, event, extend, k, **kwargs)
        if event is EventType.GROWTH:
            if goal is Goal.MINIMAL:
                if extend is ExtendSide.NEW:
                    return u_explore(counter, event, extend, k, **kwargs)
                return _consecutive_only(counter, event, extend, k, **kwargs)
            if extend is ExtendSide.OLD:
                return _longest_only(counter, event, extend, k, **kwargs)
            return i_explore(counter, event, extend, k, **kwargs)
        # Shrinkage mirrors growth with the sides swapped.
        if goal is Goal.MINIMAL:
            if extend is ExtendSide.OLD:
                return u_explore(counter, event, extend, k, **kwargs)
            return _consecutive_only(counter, event, extend, k, **kwargs)
        if extend is ExtendSide.NEW:
            return _longest_only(counter, event, extend, k, **kwargs)
        return i_explore(counter, event, extend, k, **kwargs)


def _exhaustive_chunk(
    payload: tuple[EventCounter, EventType, Goal, ExtendSide, int, bool],
    task: _ReferenceRange,
) -> _ChunkResult:
    """The oracle explorer's unpruned walk over one reference slice."""
    counter, event, goal, extend, k, incremental = payload
    start, stop = task
    evaluator = ChainEvaluator(counter, event, incremental=incremental)
    semantics = Semantics.UNION if goal is Goal.MINIMAL else Semantics.INTERSECTION
    pairs: list[IntervalPairResult] = []
    evaluations = 0
    for reference in range(start, stop):
        passing: list[IntervalPairResult] = []
        for step in evaluator.chain(reference, extend, semantics):
            evaluations += 1
            if step.count >= k:
                passing.append(_pair(step))
        if not passing:
            continue
        if goal is Goal.MINIMAL:
            # Definition 3.4: the shortest passing extension — no proper
            # sub-extension passes.  Chains yield in increasing length,
            # so that is the first passing pair.
            pairs.append(passing[0])
        else:
            # Definition 3.5: the longest passing extension — no proper
            # super-extension passes.  That is the last passing pair.
            pairs.append(passing[-1])
    return pairs, evaluations


def exhaustive_explore(
    graph: TemporalGraph,
    event: EventType,
    goal: Goal,
    extend: ExtendSide,
    k: int,
    entity: EntityKind = EntityKind.EDGES,
    attributes: Sequence[str] = (),
    key: Any = None,
    *,
    incremental: bool = True,
    parallelism: int | str | None = None,
) -> ExplorationResult:
    """Oracle explorer: evaluates *every* pair in the case's candidate
    space and selects minimal/maximal pairs by definition.

    Used to validate the pruned strategies in tests, and as the baseline
    of the pruning-ablation benchmark.  The semantics of the extended
    side follow the goal (union for minimal, intersection for maximal),
    exactly as in :func:`explore`.
    """
    if k < 1:
        raise ExplorationError(f"threshold k must be positive, got {k}")
    get_metrics().inc("exploration.runs")
    with trace_span(
        "explore.exhaustive",
        event=str(event),
        goal=str(goal),
        extend=str(extend),
        k=k,
    ):
        counter = EventCounter(graph, entity=entity, attributes=attributes, key=key)
        pairs, evaluations = _run_strategy(
            _exhaustive_chunk,
            (counter, event, goal, extend, k, incremental),
            counter,
            parallelism,
        )
        return ExplorationResult(event, goal, extend, k, pairs, evaluations)
