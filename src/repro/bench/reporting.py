"""Text rendering of experiment series: tables and ASCII charts.

Every figure of the paper's evaluation is a set of series (time or
speedup against time points / interval lengths).  The harness renders
them as aligned tables plus a compact ASCII chart, so a terminal run of
the CLI or an example reproduces the figure's *shape* at a glance.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["format_table", "ascii_chart", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render rows as an aligned, pipe-separated table."""
    text_rows = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max([len(str(h))] + [len(row[i]) for row in text_rows])
        for i, h in enumerate(headers)
    ]
    lines = [
        " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[Any],
    height: int = 10,
    title: str = "",
) -> str:
    """A compact multi-series ASCII line chart.

    Each series gets a distinct mark; values are scaled to a shared
    y-axis.  Intended for eyeballing figure shapes in the terminal, not
    publication graphics.
    """
    marks = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title or "(no data)"
    top = max(all_values)
    bottom = min(0.0, min(all_values))
    span = (top - bottom) or 1.0
    width = len(x_labels)
    grid = [[" "] * width for _ in range(height)]
    for mark, (name, values) in zip(marks, series.items()):
        for x, value in enumerate(values[:width]):
            y = int((value - bottom) / span * (height - 1))
            row = height - 1 - y
            grid[row][x] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{top:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    if height > 1:
        lines.append(f"{bottom:10.3g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + "".join("^" if i % max(1, width // 8) == 0 else " " for i in range(width))
    )
    legend = "   ".join(
        f"{mark}={name}" for mark, name in zip(marks, series.keys())
    )
    lines.append(" " * 12 + f"x: {x_labels[0]} .. {x_labels[-1]}   {legend}")
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[Any],
    x_name: str = "x",
    value_name: str = "time (s)",
    title: str = "",
    chart: bool = True,
) -> str:
    """Table + optional chart for a family of series."""
    headers = [x_name] + [f"{name} {value_name}" for name in series]
    rows = []
    for i, x in enumerate(x_labels):
        rows.append([x] + [values[i] if i < len(values) else "" for values in series.values()])
    parts = []
    if title:
        parts.append(title)
    parts.append(format_table(headers, rows))
    if chart:
        parts.append(ascii_chart(series, x_labels))
    return "\n\n".join(parts)
