"""Experiment drivers for every performance figure of Section 5.1.

Each ``fig*`` function reproduces one figure of the paper: it sweeps the
figure's x-axis (time points or interval lengths), times the relevant
operator/aggregation combination, and returns an
:class:`ExperimentSeries` whose series mirror the figure's lines.  The
CLI and the example scripts render these; the pytest-benchmark suite in
``benchmarks/`` measures the same operations with statistical rigor.

Interval conventions follow the paper: interval sweeps anchor at the
first time point and extend right one base point at a time; for the
difference figures the reference point ``T_new`` is the last time point.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..core import TemporalGraph, aggregate, difference, project, union
from ..errors import ConfigurationError
from ..materialize import MaterializedStore
from ..parallel import get_executor
from .timing import measure

__all__ = [
    "ExperimentSeries",
    "SweepSpec",
    "run_sweep",
    "run_sweeps",
    "fig5_timepoint_aggregation",
    "fig6_union_aggregation",
    "fig7_intersection_aggregation",
    "fig8_difference_old_new",
    "fig9_difference_new_old",
    "fig10_materialized_union_speedup",
    "fig11_attribute_rollup_speedup",
]


@dataclass
class ExperimentSeries:
    """One figure's data: named series over shared x labels."""

    name: str
    x_name: str
    x_labels: list[Any]
    series: dict[str, list[float]] = field(default_factory=dict)
    value_name: str = "time (s)"

    def add(self, series_name: str, value: float) -> None:
        self.series.setdefault(series_name, []).append(value)


def _series_label(attributes: Sequence[str], distinct: bool | None = None) -> str:
    label = "+".join(attributes)
    if distinct is None:
        return label
    return f"{label} ({'DIST' if distinct else 'ALL'})"


def fig5_timepoint_aggregation(
    graph: TemporalGraph,
    attribute_sets: Sequence[Sequence[str]],
    repeats: int = 1,
) -> ExperimentSeries:
    """Figure 5: aggregation time per attribute (set) on each time point."""
    result = ExperimentSeries(
        "fig5: time-point aggregation",
        "time point",
        list(graph.timeline.labels),
    )
    for time in graph.timeline.labels:
        for attributes in attribute_sets:
            timing = measure(
                lambda: aggregate(graph, attributes, distinct=True, times=[time]),
                repeats=repeats,
            )
            result.add(_series_label(attributes), timing.best)
    return result


def _interval_spans(graph: TemporalGraph) -> list[tuple[Hashable, ...]]:
    """Anchored spans [t0], [t0..t1], ... [t0..tn-1]."""
    labels = graph.timeline.labels
    return [labels[: i + 1] for i in range(len(labels))]


def fig6_union_aggregation(
    graph: TemporalGraph,
    attribute_sets: Sequence[Sequence[str]],
    distinct_modes: Sequence[bool] = (True, False),
    repeats: int = 1,
    split: bool = False,
) -> ExperimentSeries:
    """Figure 6: union + aggregation time while the interval extends.

    With ``split=True`` the operator and aggregation times are reported
    as separate series (the paper's per-attribute time-split panels);
    otherwise each series is the total.
    """
    spans = _interval_spans(graph)
    result = ExperimentSeries(
        "fig6: union + aggregation",
        "interval end",
        [span[-1] for span in spans],
    )
    for span in spans:
        op_timing = measure(lambda: union(graph, span), repeats=repeats)
        for attributes in attribute_sets:
            for distinct in distinct_modes:
                agg_timing = measure(
                    lambda: aggregate(
                        op_timing.result, attributes, distinct=distinct
                    ),
                    repeats=repeats,
                )
                label = _series_label(attributes, distinct)
                if split:
                    result.add(f"{label} op", op_timing.best)
                    result.add(f"{label} agg", agg_timing.best)
                else:
                    result.add(label, op_timing.best + agg_timing.best)
    return result


def _strict_span_limit(graph: TemporalGraph) -> int:
    """Longest anchored span over which at least one common edge exists
    (the paper truncates Fig. 7 at [2000, 2017] for this reason)."""
    labels = graph.timeline.labels
    limit = 1
    for end in range(1, len(labels)):
        if not graph.edge_presence.all_mask(labels[: end + 1]).any():
            break
        limit = end + 1
    return limit


def fig7_intersection_aggregation(
    graph: TemporalGraph,
    attribute_sets: Sequence[Sequence[str]],
    repeats: int = 1,
    split: bool = False,
) -> ExperimentSeries:
    """Figure 7: intersection (strict span) + DIST aggregation time.

    The intersection of an anchored span keeps entities present at every
    covered point; the sweep stops at the longest span that still has a
    common edge, as in the paper.
    """
    labels = graph.timeline.labels
    limit = _strict_span_limit(graph)
    spans = [labels[: i + 1] for i in range(limit)]
    result = ExperimentSeries(
        "fig7: intersection + aggregation",
        "interval end",
        [span[-1] for span in spans],
    )
    for span in spans:
        op_timing = measure(lambda: project(graph, span), repeats=repeats)
        for attributes in attribute_sets:
            agg_timing = measure(
                lambda: aggregate(op_timing.result, attributes, distinct=True),
                repeats=repeats,
            )
            label = _series_label(attributes)
            if split:
                result.add(f"{label} op", op_timing.best)
                result.add(f"{label} agg", agg_timing.best)
            else:
                result.add(label, op_timing.best + agg_timing.best)
    return result


def _difference_sweep(
    graph: TemporalGraph,
    attribute_sets: Sequence[Sequence[str]],
    new_minus_old: bool,
    distinct_modes: Sequence[bool],
    repeats: int,
    split: bool,
    name: str,
) -> ExperimentSeries:
    """Shared sweep for Figures 8 and 9: ``T_old`` extends under union
    semantics while ``T_new`` is the (fixed) last time point."""
    labels = graph.timeline.labels
    new_times = (labels[-1],)
    old_spans = [labels[: i + 1] for i in range(len(labels) - 1)]
    result = ExperimentSeries(name, "old interval end", [s[-1] for s in old_spans])
    for old_span in old_spans:
        if new_minus_old:
            op_timing = measure(
                lambda: difference(graph, new_times, old_span), repeats=repeats
            )
        else:
            op_timing = measure(
                lambda: difference(graph, old_span, new_times), repeats=repeats
            )
        for attributes in attribute_sets:
            for distinct in distinct_modes:
                agg_timing = measure(
                    lambda: aggregate(
                        op_timing.result, attributes, distinct=distinct
                    ),
                    repeats=repeats,
                )
                label = _series_label(attributes, distinct)
                if split:
                    result.add(f"{label} op", op_timing.best)
                    result.add(f"{label} agg", agg_timing.best)
                else:
                    result.add(label, op_timing.best + agg_timing.best)
    return result


def fig8_difference_old_new(
    graph: TemporalGraph,
    attribute_sets: Sequence[Sequence[str]],
    distinct_modes: Sequence[bool] = (True, False),
    repeats: int = 1,
    split: bool = False,
) -> ExperimentSeries:
    """Figure 8: ``T_old(∪) - T_new`` + aggregation while ``T_old``
    extends (deletions relative to the latest time point)."""
    return _difference_sweep(
        graph,
        attribute_sets,
        new_minus_old=False,
        distinct_modes=distinct_modes,
        repeats=repeats,
        split=split,
        name="fig8: difference T_old(∪) - T_new",
    )


def fig9_difference_new_old(
    graph: TemporalGraph,
    attribute_sets: Sequence[Sequence[str]],
    distinct_modes: Sequence[bool] = (True, False),
    repeats: int = 1,
    split: bool = False,
) -> ExperimentSeries:
    """Figure 9: ``T_new - T_old(∪)`` + aggregation while ``T_old``
    extends (additions at the latest time point)."""
    return _difference_sweep(
        graph,
        attribute_sets,
        new_minus_old=True,
        distinct_modes=distinct_modes,
        repeats=repeats,
        split=split,
        name="fig9: difference T_new - T_old(∪)",
    )


def fig10_materialized_union_speedup(
    graph: TemporalGraph,
    attribute_sets: Sequence[Sequence[str]],
    repeats: int = 1,
) -> ExperimentSeries:
    """Figure 10: speedup of the T-distributive union(ALL) derivation.

    For each anchored span, from-scratch time (union operator + ALL
    aggregation) divided by the time to sum precomputed per-point
    aggregates from a warm :class:`MaterializedStore`.
    """
    spans = _interval_spans(graph)[1:]  # speedup needs length >= 2
    result = ExperimentSeries(
        "fig10: materialized union speedup",
        "interval end",
        [span[-1] for span in spans],
        value_name="speedup (x)",
    )
    for attributes in attribute_sets:
        store = MaterializedStore(graph)
        store.precompute(attributes, distinct=False)
        label = _series_label(attributes)
        for span in spans:
            scratch = measure(
                lambda: aggregate(union(graph, span), attributes, distinct=False),
                repeats=repeats,
            )
            derived = measure(
                lambda: store.union_aggregate(attributes, span), repeats=repeats
            )
            result.series.setdefault(label, []).append(
                scratch.best / derived.best if derived.best > 0 else float("inf")
            )
    return result


@dataclass(frozen=True)
class SweepSpec:
    """One figure sweep to run: the driver's name and its kwargs.

    Specs are plain picklable data, so a list of them can be fanned out
    over a process pool (:func:`run_sweeps`) — each worker re-runs the
    named ``fig*`` driver against the shared graph payload.  ``kwargs``
    is stored as a sorted item tuple to keep the spec hashable and its
    repr stable.
    """

    figure: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, figure: str, **kwargs: Any) -> "SweepSpec":
        return cls(figure, tuple(sorted(kwargs.items())))


def run_sweep(graph: TemporalGraph, spec: SweepSpec) -> ExperimentSeries:
    """Run one named figure sweep against ``graph``."""
    driver = _SWEEP_DRIVERS.get(spec.figure)
    if driver is None:
        raise ConfigurationError(
            f"unknown sweep figure {spec.figure!r}; "
            f"known: {sorted(_SWEEP_DRIVERS)}"
        )
    return driver(graph, **dict(spec.kwargs))


def _sweep_task(payload: TemporalGraph, task: SweepSpec) -> ExperimentSeries:
    """Chunk worker: one sweep per task, graph shared as the payload."""
    return run_sweep(payload, task)


def run_sweeps(
    graph: TemporalGraph,
    specs: Sequence[SweepSpec],
    parallelism: int | str | None = None,
) -> list[ExperimentSeries]:
    """Run several figure sweeps, optionally concurrently.

    Results come back in spec order regardless of completion order.
    Note the caveat that does *not* apply elsewhere in the parallel
    layer: sweeps measure wall time, so running them concurrently on a
    loaded machine perturbs the timings themselves — use pools to
    shorten exploratory iterations, and serial runs for publishable
    numbers (see ``docs/parallelism.md``).
    """
    for spec in specs:  # validate before paying for any sweep
        if spec.figure not in _SWEEP_DRIVERS:
            raise ConfigurationError(
                f"unknown sweep figure {spec.figure!r}; "
                f"known: {sorted(_SWEEP_DRIVERS)}"
            )
    executor = get_executor(parallelism, chunk_size=1)
    return executor.map(_sweep_task, list(specs), graph)


def fig11_attribute_rollup_speedup(
    graph: TemporalGraph,
    superset: Sequence[str],
    subsets: Sequence[Sequence[str]],
    repeats: int = 1,
    distinct: bool = True,
) -> ExperimentSeries:
    """Figure 11: speedup of D-distributive attribute roll-up per time
    point — deriving each subset aggregate from the materialized
    superset aggregate vs. computing it from scratch."""
    result = ExperimentSeries(
        "fig11: attribute roll-up speedup",
        "time point",
        list(graph.timeline.labels),
        value_name="speedup (x)",
    )
    store = MaterializedStore(graph)
    for time in graph.timeline.labels:
        store.timepoint_aggregate(superset, time, distinct=distinct)
    for subset in subsets:
        label = f"{_series_label(subset)} from {_series_label(superset)}"
        for time in graph.timeline.labels:
            scratch = measure(
                lambda: aggregate(graph, subset, distinct=distinct, times=[time]),
                repeats=repeats,
            )
            derived = measure(
                lambda: store.rollup_aggregate(superset, subset, time, distinct=distinct),
                repeats=repeats,
            )
            result.series.setdefault(label, []).append(
                scratch.best / derived.best if derived.best > 0 else float("inf")
            )
    return result


#: Figure name -> driver, the dispatch table :class:`SweepSpec` names.
_SWEEP_DRIVERS: Mapping[str, Any] = {
    "fig5": fig5_timepoint_aggregation,
    "fig6": fig6_union_aggregation,
    "fig7": fig7_intersection_aggregation,
    "fig8": fig8_difference_old_new,
    "fig9": fig9_difference_new_old,
    "fig10": fig10_materialized_union_speedup,
    "fig11": fig11_attribute_rollup_speedup,
}
