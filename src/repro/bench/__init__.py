"""Benchmark/reporting harness: timing helpers, series rendering and the
per-figure experiment drivers of Section 5.1."""

from .experiments import (
    ExperimentSeries,
    SweepSpec,
    run_sweep,
    run_sweeps,
    fig5_timepoint_aggregation,
    fig6_union_aggregation,
    fig7_intersection_aggregation,
    fig8_difference_old_new,
    fig9_difference_new_old,
    fig10_materialized_union_speedup,
    fig11_attribute_rollup_speedup,
)
from .reporting import ascii_chart, format_series, format_table
from .timing import Measurement, measure, speedup

__all__ = [
    "Measurement",
    "measure",
    "speedup",
    "format_table",
    "format_series",
    "ascii_chart",
    "ExperimentSeries",
    "SweepSpec",
    "run_sweep",
    "run_sweeps",
    "fig5_timepoint_aggregation",
    "fig6_union_aggregation",
    "fig7_intersection_aggregation",
    "fig8_difference_old_new",
    "fig9_difference_new_old",
    "fig10_materialized_union_speedup",
    "fig11_attribute_rollup_speedup",
]
