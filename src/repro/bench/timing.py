"""Small timing utilities shared by the benchmark harness and the CLI.

pytest-benchmark handles the statistically careful measurements; these
helpers cover the places where the paper's figures need *relative*
numbers computed inside one process — e.g. the speedup figures (10/11),
which divide a from-scratch time by a materialized-derivation time.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any
from ..errors import ValidationError

__all__ = ["Measurement", "measure", "speedup"]


@dataclass(frozen=True)
class Measurement:
    """Wall-clock result of repeated calls to one function."""

    best: float
    mean: float
    repeats: int
    result: Any

    def __str__(self) -> str:
        return f"{self.best * 1000:.2f} ms (best of {self.repeats})"


def measure(fn: Callable[[], Any], repeats: int = 3) -> Measurement:
    """Call ``fn`` ``repeats`` times, keeping best and mean wall time.

    The function's last return value is kept so correctness checks can
    piggyback on the timed computation.
    """
    if repeats < 1:
        raise ValidationError("repeats must be at least 1")
    durations = []
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        durations.append(time.perf_counter() - start)
    return Measurement(
        best=min(durations),
        mean=sum(durations) / len(durations),
        repeats=repeats,
        result=result,
    )


def speedup(baseline: Measurement, optimized: Measurement) -> float:
    """``baseline / optimized`` on best times — the paper's speedup metric
    (Figures 10 and 11)."""
    if optimized.best <= 0:
        return float("inf")
    return baseline.best / optimized.best
