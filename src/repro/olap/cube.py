"""A temporal graph cube: OLAP queries answered from partial
materialization.

Ties Section 4.3 together: the cube owns a
:class:`~repro.materialize.MaterializedStore`, knows the cuboid lattice
over its attribute dimensions and the time hierarchy over its timeline,
and answers every cuboid query by the cheapest legal route:

1. an exact materialized hit;
2. a D-distributive roll-up from a materialized superset cuboid
   (always legal for ALL; legal for DIST on a single time point);
3. a T-distributive sum of per-time-point cuboids (ALL + union
   semantics only);
4. computing from the base temporal graph (and caching the result).

``CubeStats`` records which route served each query, so the Figure
10/11 benchmarks and the view-selection policy can observe reuse.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from ..core import AggregateGraph, TemporalGraph, aggregate, union
from ..core.granularity import TimeHierarchy
from .lattice import Cuboid, canonical, smallest_superset
from .operations import dice_aggregate, slice_aggregate
from ..errors import UnknownLabelError, ValidationError

__all__ = ["TemporalGraphCube", "CubeStats"]


@dataclass
class CubeStats:
    """Which route answered each cuboid query."""

    exact_hits: int = 0
    attribute_rollups: int = 0
    time_rollups: int = 0
    base_computations: int = 0

    @property
    def queries(self) -> int:
        return (
            self.exact_hits
            + self.attribute_rollups
            + self.time_rollups
            + self.base_computations
        )


class TemporalGraphCube:
    """OLAP cube over a temporal attributed graph.

    Parameters
    ----------
    graph:
        The base temporal graph.
    dimensions:
        The attribute dimensions (defaults to all of the graph's
        attributes).
    hierarchy:
        Optional time hierarchy; coarse unit labels then become valid
        ``times`` arguments alongside base labels.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        dimensions: Sequence[str] | None = None,
        hierarchy: TimeHierarchy | None = None,
    ) -> None:
        self.graph = graph
        self.dimensions = tuple(
            dimensions if dimensions is not None else graph.attribute_names
        )
        for dim in self.dimensions:
            graph.is_static(dim)  # validates the name
        self.hierarchy = hierarchy
        self.stats = CubeStats()
        self._cache: dict[
            tuple[Cuboid, tuple[Hashable, ...], bool], AggregateGraph
        ] = {}

    # ------------------------------------------------------------------
    # Time resolution
    # ------------------------------------------------------------------

    def _resolve_times(
        self, times: Iterable[Hashable] | None
    ) -> tuple[Hashable, ...]:
        """Expand unit labels through the hierarchy; default to the
        whole timeline."""
        if times is None:
            return self.graph.timeline.labels
        resolved: list[Hashable] = []
        for label in times:
            if label in self.graph.timeline:
                resolved.append(label)
            elif self.hierarchy is not None and label in self.hierarchy.unit_labels:
                resolved.extend(
                    m
                    for m in self.hierarchy.members(label)
                    if m in self.graph.timeline
                )
            else:
                raise UnknownLabelError(f"unknown time point or unit: {label!r}")
        return tuple(dict.fromkeys(resolved))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(
        self,
        attributes: Sequence[str],
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
        per_time_point: bool = False,
    ) -> None:
        """Precompute one cuboid (optionally one per base time point).

        Per-time-point materialization is the paper's recommended base
        (it feeds the T-distributive route); whole-window cuboids feed
        exact hits and attribute roll-ups.
        """
        cuboid = canonical(attributes, self.dimensions)
        window = self._resolve_times(times)
        if per_time_point:
            for t in window:
                self._compute_and_cache(cuboid, (t,), distinct)
        else:
            self._compute_and_cache(cuboid, window, distinct)

    def _compute_and_cache(
        self, cuboid: Cuboid, window: tuple[Hashable, ...], distinct: bool
    ) -> AggregateGraph:
        key = (cuboid, window, distinct)
        if key not in self._cache:
            base = (
                aggregate(self.graph, list(cuboid), distinct=distinct, times=window)
                if len(window) == 1
                else aggregate(
                    union(self.graph, window), list(cuboid), distinct=distinct
                )
            )
            self._cache[key] = base
        return self._cache[key]

    @property
    def materialized_count(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def cuboid(
        self,
        attributes: Sequence[str],
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """The aggregate graph for an attribute set over a time window.

        Served from the cheapest route available (see module docs); the
        result is cached, so repeated queries are exact hits.
        """
        cuboid = canonical(attributes, self.dimensions)
        window = self._resolve_times(times)
        key = (cuboid, window, distinct)

        cached = self._cache.get(key)
        if cached is not None:
            self.stats.exact_hits += 1
            return cached

        # Route 2: attribute roll-up from a materialized superset over
        # the same window.  DIST roll-ups are only exact on one point.
        if not distinct or len(window) == 1:
            candidates = [
                c
                for (c, w, d) in self._cache
                if w == window and d == distinct and set(cuboid) < set(c)
            ]
            best = smallest_superset(cuboid, candidates)
            if best is not None:
                result = self._cache[(best, window, distinct)].rollup(cuboid)
                self._cache[key] = result
                self.stats.attribute_rollups += 1
                return result

        # Route 3: T-distributive sum of per-point cuboids (ALL only).
        if not distinct and len(window) > 1:
            points = [(cuboid, (t,), False) for t in window]
            if all(p in self._cache for p in points):
                total: AggregateGraph | None = None
                for p in points:
                    part = self._cache[p]
                    total = part if total is None else total.combine(part)
                assert total is not None
                self._cache[key] = total
                self.stats.time_rollups += 1
                return total

        # Route 4: compute from the base graph.
        self.stats.base_computations += 1
        return self._compute_and_cache(cuboid, window, distinct)

    # ------------------------------------------------------------------
    # OLAP verbs
    # ------------------------------------------------------------------

    def rollup(
        self,
        attributes: Sequence[str],
        remove: str,
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """One roll-up step: drop ``remove`` from the attribute set."""
        cuboid = canonical(attributes, self.dimensions)
        if remove not in cuboid:
            raise UnknownLabelError(f"{remove!r} is not part of {cuboid!r}")
        target = tuple(a for a in cuboid if a != remove)
        if not target:
            raise ValidationError("cannot roll up the last attribute away")
        return self.cuboid(target, times=times, distinct=distinct)

    def drill_down(
        self,
        attributes: Sequence[str],
        add: str,
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """One drill-down step: add ``add`` to the attribute set."""
        cuboid = canonical(attributes, self.dimensions)
        if add in cuboid:
            raise UnknownLabelError(f"{add!r} is already part of {cuboid!r}")
        return self.cuboid(
            canonical(set(cuboid) | {add}, self.dimensions),
            times=times,
            distinct=distinct,
        )

    def slice(
        self,
        attributes: Sequence[str],
        attribute: str,
        value: Any,
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """Slice: fix one attribute to a value and drop it."""
        base = self.cuboid(attributes, times=times, distinct=distinct)
        return slice_aggregate(base, attribute, value)

    def dice(
        self,
        attributes: Sequence[str],
        selections: dict[str, Iterable[Any]],
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """Dice: restrict attributes to value sets, keeping the layout."""
        base = self.cuboid(attributes, times=times, distinct=distinct)
        return dice_aggregate(base, selections)
