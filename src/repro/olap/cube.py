"""A temporal graph cube: OLAP queries answered from partial
materialization.

Ties Section 4.3 together: the cube owns its cuboid cache, knows the
cuboid lattice over its attribute dimensions and the time hierarchy over
its timeline, and answers every cuboid query by the cheapest legal
route:

1. an exact cached hit;
2. a D-distributive roll-up from a cached superset cuboid
   (always legal for ALL; legal for DIST on a single time point);
3. a T-distributive sum of per-time-point cuboids (ALL + union
   semantics only);
4. computing from the base temporal graph (and caching the result).

Route selection is cost-based: :meth:`TemporalGraphCube.plan_routes`
enumerates every legal route with an estimated cost (group counts for
derivations, entity-rows x window size for base evaluation) and
:meth:`TemporalGraphCube.cuboid` executes the cheapest.  The serving
layer (:mod:`repro.serving`) plans through the same API, so the cube and
the query planner can never disagree about what a route costs.

``CubeStats`` records which route served each query, so the Figure
10/11 benchmarks and the view-selection policy can observe reuse.

Cache keys normalize windows to timeline order (a window has union
semantics, so ``(t2, t1)`` and ``(t1, t2)`` are the same query), and
deliberately materialized views are tracked separately from incidentally
cached query results.  A cube can :meth:`~TemporalGraphCube.bind_store`
itself to a :class:`~repro.streaming.StreamingStore` so appends drop its
cache instead of leaving it serving a superseded version.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..core import AggregateGraph, TemporalGraph, aggregate, union
from ..core.granularity import TimeHierarchy
from ..obs.metrics import get_metrics
from .lattice import Cuboid, canonical
from .operations import dice_aggregate, slice_aggregate
from ..errors import UnknownLabelError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..streaming import GraphVersion, StreamingStore

__all__ = ["TemporalGraphCube", "CubeStats", "CubeRoute"]

#: ``(cuboid, window, distinct)`` — the unit of cube caching.  Windows
#: are stored in timeline order, so caller order can never split the
#: cache (the union semantics of a window are order-insensitive).
CacheKey = tuple[Cuboid, tuple[Hashable, ...], bool]

#: Route kinds, in preference order for cost ties.
ROUTE_EXACT = "exact"
ROUTE_ROLLUP = "rollup"
ROUTE_TIME_SUM = "time_sum"
ROUTE_BASE = "base"

_ROUTE_RANK = {
    ROUTE_EXACT: 0,
    ROUTE_ROLLUP: 1,
    ROUTE_TIME_SUM: 2,
    ROUTE_BASE: 3,
}


@dataclass
class CubeStats:
    """Which route answered each cuboid query."""

    exact_hits: int = 0
    attribute_rollups: int = 0
    time_rollups: int = 0
    base_computations: int = 0

    @property
    def queries(self) -> int:
        return (
            self.exact_hits
            + self.attribute_rollups
            + self.time_rollups
            + self.base_computations
        )


@dataclass(frozen=True)
class CubeRoute:
    """One legal way to answer a cuboid query, with its estimated cost.

    ``cost`` is in abstract work units (aggregate groups touched for
    derivations, entity-rows scanned for base evaluation); only the
    relative order matters.  ``source`` names the cached superset cuboid
    for roll-up routes.
    """

    kind: str
    key: CacheKey
    cost: float
    source: Cuboid | None = None

    @property
    def rank(self) -> tuple[float, int]:
        """Sort key: cheapest first, stable preference on ties."""
        return (self.cost, _ROUTE_RANK[self.kind])

    def describe(self) -> str:
        cuboid, window, distinct = self.key
        mode = "DIST" if distinct else "ALL"
        text = f"{self.kind} {mode} {'/'.join(cuboid)} over {len(window)} point(s)"
        if self.source is not None:
            text += f" from {'/'.join(self.source)}"
        return text


class TemporalGraphCube:
    """OLAP cube over a temporal attributed graph.

    Parameters
    ----------
    graph:
        The base temporal graph.
    dimensions:
        The attribute dimensions (defaults to all of the graph's
        attributes).
    hierarchy:
        Optional time hierarchy; coarse unit labels then become valid
        ``times`` arguments alongside base labels.

    The cube is safe to share between threads: cache bookkeeping happens
    under an internal lock while aggregate computation runs outside it
    (concurrent misses may duplicate work, never corrupt state, and the
    results are deterministic so last-write-wins is harmless).
    """

    def __init__(
        self,
        graph: TemporalGraph,
        dimensions: Sequence[str] | None = None,
        hierarchy: TimeHierarchy | None = None,
    ) -> None:
        self.graph = graph
        self.dimensions = tuple(
            dimensions if dimensions is not None else graph.attribute_names
        )
        for dim in self.dimensions:
            graph.is_static(dim)  # validates the name
        self.hierarchy = hierarchy
        self.stats = CubeStats()
        self._lock = threading.RLock()
        self._cache: dict[CacheKey, AggregateGraph] = {}
        #: Keys the user deliberately materialized, as opposed to results
        #: the query routes cached incidentally — the distinction the
        #: view-selection policy and Figure 10/11 stats report on.
        self._materialized: set[CacheKey] = set()
        self._unbind: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Time resolution
    # ------------------------------------------------------------------

    def _resolve_times(
        self, times: Iterable[Hashable] | None
    ) -> tuple[Hashable, ...]:
        """Expand unit labels through the hierarchy and normalize to
        timeline order; default to the whole timeline.

        Normalization is what makes cache keys caller-order-insensitive:
        ``times=(t2, t1)`` and ``(t1, t2)`` describe the same
        union-semantics window and must map to the same key.
        """
        if times is None:
            return self.graph.timeline.labels
        resolved: set[Hashable] = set()
        for label in times:
            if label in self.graph.timeline:
                resolved.add(label)
            elif self.hierarchy is not None and label in self.hierarchy.unit_labels:
                resolved.update(
                    m
                    for m in self.hierarchy.members(label)
                    if m in self.graph.timeline
                )
            else:
                raise UnknownLabelError(f"unknown time point or unit: {label!r}")
        return tuple(t for t in self.graph.timeline.labels if t in resolved)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(
        self,
        attributes: Sequence[str],
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
        per_time_point: bool = False,
    ) -> None:
        """Precompute one cuboid (optionally one per base time point).

        Per-time-point materialization is the paper's recommended base
        (it feeds the T-distributive route); whole-window cuboids feed
        exact hits and attribute roll-ups.
        """
        cuboid = canonical(attributes, self.dimensions)
        window = self._resolve_times(times)
        keys = (
            [(cuboid, (t,), distinct) for t in window]
            if per_time_point
            else [(cuboid, window, distinct)]
        )
        for key in keys:
            self._compute_and_cache(key)
            with self._lock:
                self._materialized.add(key)

    def _compute_and_cache(self, key: CacheKey) -> AggregateGraph:
        cuboid, window, distinct = key
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        base = (
            aggregate(self.graph, list(cuboid), distinct=distinct, times=window)
            if len(window) == 1
            else aggregate(
                union(self.graph, window), list(cuboid), distinct=distinct
            )
        )
        with self._lock:
            return self._cache.setdefault(key, base)

    @property
    def materialized_count(self) -> int:
        """How many cuboids were deliberately materialized.

        Incidentally cached query results (route 4 and derivation
        outputs) are *not* counted — see :attr:`cached_count`.
        """
        with self._lock:
            return len(self._materialized)

    @property
    def cached_count(self) -> int:
        """Every cached cuboid: materialized views plus query results."""
        with self._lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, graph: TemporalGraph | None = None) -> None:
        """Drop every cached cuboid, optionally rebinding to a new graph.

        The materialized set is dropped too: a materialized view over a
        superseded graph is exactly the stale state invalidation exists
        to remove.  Re-materialize against the new graph if the warm set
        is still wanted.
        """
        with self._lock:
            if graph is not None:
                for dim in self.dimensions:
                    graph.is_static(dim)  # the new graph must keep the dims
                self.graph = graph
            self._cache.clear()
            self._materialized.clear()
        get_metrics().inc("olap.cube_invalidations")

    def bind_store(self, store: "StreamingStore") -> Callable[[], None]:
        """Follow a streaming store: every published version rebinds the
        cube and drops its cache, so appends can never serve stale
        cuboids.  Returns an unsubscribe callable (also idempotently
        invoked by a later :meth:`bind_store`).

        The subscription is atomic with respect to appends: the cube is
        rebound to the version current at registration, and every later
        publication reaches the hook.
        """

        def _on_append(version: "GraphVersion") -> None:
            self.invalidate(version.graph)

        with self._lock:
            if self._unbind is not None:
                self._unbind()
            current, unsubscribe = store.subscribe(_on_append)
            self._unbind = unsubscribe
        self.invalidate(current.graph)
        return unsubscribe

    # ------------------------------------------------------------------
    # Route planning
    # ------------------------------------------------------------------

    def plan_routes(
        self,
        attributes: Sequence[str],
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> list[CubeRoute]:
        """Every legal route for a cuboid query, cheapest first.

        Always non-empty (base evaluation is always legal).  The cost
        model: an exact hit is free, a derivation costs the aggregate
        groups it reads, base evaluation costs entity-rows times window
        size.  Ties break toward the more derived route.
        """
        cuboid = canonical(attributes, self.dimensions)
        window = self._resolve_times(times)
        key: CacheKey = (cuboid, window, distinct)
        routes: list[CubeRoute] = []
        with self._lock:
            cached = dict(self._cache)
        if key in cached:
            routes.append(CubeRoute(ROUTE_EXACT, key, 0.0))
        # D-distributive attribute roll-up from a cached superset over
        # the same window.  DIST roll-ups are only exact on one point.
        if not distinct or len(window) == 1:
            wanted = set(cuboid)
            for (c, w, d), agg in cached.items():
                if w == window and d == distinct and wanted < set(c):
                    routes.append(
                        CubeRoute(
                            ROUTE_ROLLUP,
                            key,
                            float(agg.n_aggregate_nodes + agg.n_aggregate_edges),
                            source=c,
                        )
                    )
        # T-distributive sum of per-point cuboids (ALL only).
        if not distinct and len(window) > 1:
            points = [(cuboid, (t,), False) for t in window]
            if all(p in cached for p in points):
                cost = float(
                    sum(
                        cached[p].n_aggregate_nodes + cached[p].n_aggregate_edges
                        for p in points
                    )
                )
                routes.append(CubeRoute(ROUTE_TIME_SUM, key, cost))
        base_cost = float(
            (self.graph.n_nodes + self.graph.n_edges) * max(len(window), 1)
        )
        routes.append(CubeRoute(ROUTE_BASE, key, base_cost))
        routes.sort(key=lambda r: r.rank)
        return routes

    def execute_route(self, route: CubeRoute) -> AggregateGraph:
        """Execute one planned route, caching the result and recording
        which route served the query in :attr:`stats`.

        If the key landed in the cache since planning (another thread, or
        an earlier step of the same request), the cached result is served
        as an exact hit instead of redoing the work.
        """
        key = route.key
        cuboid, window, distinct = key
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.exact_hits += 1
                return cached
        if route.kind == ROUTE_ROLLUP and route.source is not None:
            source_key = (route.source, window, distinct)
            with self._lock:
                source = self._cache.get(source_key)
            if source is not None:
                result = source.rollup(cuboid)
                with self._lock:
                    result = self._cache.setdefault(key, result)
                    self.stats.attribute_rollups += 1
                return result
            # The superset vanished (invalidation race): fall through.
        if route.kind == ROUTE_TIME_SUM:
            points = [(cuboid, (t,), False) for t in window]
            with self._lock:
                parts = [self._cache.get(p) for p in points]
            if all(part is not None for part in parts):
                total: AggregateGraph | None = None
                for part in parts:
                    assert part is not None
                    total = part if total is None else total.combine(part)
                assert total is not None
                with self._lock:
                    total = self._cache.setdefault(key, total)
                    self.stats.time_rollups += 1
                return total
        # Base evaluation (also the fallback when a derivation's inputs
        # disappeared between planning and execution).
        result = self._compute_and_cache(key)
        with self._lock:
            self.stats.base_computations += 1
        return result

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def cuboid(
        self,
        attributes: Sequence[str],
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """The aggregate graph for an attribute set over a time window.

        Served from the cheapest legal route (see module docs); the
        result is cached, so repeated queries are exact hits.
        """
        routes = self.plan_routes(attributes, times=times, distinct=distinct)
        return self.execute_route(routes[0])

    # ------------------------------------------------------------------
    # OLAP verbs
    # ------------------------------------------------------------------

    def rollup(
        self,
        attributes: Sequence[str],
        remove: str,
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """One roll-up step: drop ``remove`` from the attribute set."""
        cuboid = canonical(attributes, self.dimensions)
        if remove not in cuboid:
            raise UnknownLabelError(f"{remove!r} is not part of {cuboid!r}")
        target = tuple(a for a in cuboid if a != remove)
        if not target:
            raise ValidationError("cannot roll up the last attribute away")
        return self.cuboid(target, times=times, distinct=distinct)

    def drill_down(
        self,
        attributes: Sequence[str],
        add: str,
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """One drill-down step: add ``add`` to the attribute set."""
        cuboid = canonical(attributes, self.dimensions)
        if add in cuboid:
            raise UnknownLabelError(f"{add!r} is already part of {cuboid!r}")
        return self.cuboid(
            canonical(set(cuboid) | {add}, self.dimensions),
            times=times,
            distinct=distinct,
        )

    def slice(
        self,
        attributes: Sequence[str],
        attribute: str,
        value: Any,
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """Slice: fix one attribute to a value and drop it."""
        base = self.cuboid(attributes, times=times, distinct=distinct)
        return slice_aggregate(base, attribute, value)

    def dice(
        self,
        attributes: Sequence[str],
        selections: dict[str, Iterable[Any]],
        times: Iterable[Hashable] | None = None,
        distinct: bool = False,
    ) -> AggregateGraph:
        """Dice: restrict attributes to value sets, keeping the layout."""
        base = self.cuboid(attributes, times=times, distinct=distinct)
        return dice_aggregate(base, selections)
