"""Graph OLAP over temporal graphs: cuboid lattice, slice/dice,
partially materialized cubes and greedy view selection (Section 4.3 and
the graph-OLAP lineage of the paper's related work)."""

from .cube import CubeStats, TemporalGraphCube
from .lattice import (
    all_cuboids,
    canonical,
    children,
    parents,
    smallest_superset,
    supersets_of,
)
from .operations import dice_aggregate, drill_across, slice_aggregate
from .views import ViewSelection, estimate_cuboid_sizes, greedy_view_selection

__all__ = [
    "TemporalGraphCube",
    "CubeStats",
    "canonical",
    "all_cuboids",
    "parents",
    "children",
    "supersets_of",
    "smallest_superset",
    "slice_aggregate",
    "dice_aggregate",
    "drill_across",
    "estimate_cuboid_sizes",
    "greedy_view_selection",
    "ViewSelection",
]
