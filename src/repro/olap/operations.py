"""OLAP operations over aggregate graphs: slice, dice, drill-across.

Roll-up lives on :class:`~repro.core.AggregateGraph` itself
(``rollup``); slice and dice are selections on the aggregate's key
space, as in graph OLAP systems (GraphCube et al., the paper's related
work).  An aggregate edge survives a slice/dice only if *both* endpoint
tuples satisfy the selection, keeping the result a well-formed aggregate
graph over the restricted key space.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from ..core import AggregateGraph
from ..errors import UnknownLabelError, ValidationError

__all__ = ["slice_aggregate", "dice_aggregate", "drill_across"]


def _position(aggregate: AggregateGraph, attribute: str) -> int:
    try:
        return aggregate.attributes.index(attribute)
    except ValueError:
        raise UnknownLabelError(
            f"attribute {attribute!r} is not part of this aggregate "
            f"({aggregate.attributes!r})"
        ) from None


def dice_aggregate(
    aggregate: AggregateGraph,
    selections: Mapping[str, Iterable[Any]],
) -> AggregateGraph:
    """Keep aggregate entities whose values fall in the given sets.

    ``selections`` maps attribute name to the allowed values; attributes
    not mentioned are unrestricted.  The diced aggregate keeps the same
    attribute tuple layout.
    """
    allowed = {
        _position(aggregate, name): set(values)
        for name, values in selections.items()
    }

    def keep(key: tuple[Any, ...]) -> bool:
        return all(key[pos] in values for pos, values in allowed.items())

    node_weights = {
        key: weight for key, weight in aggregate.node_weights.items() if keep(key)
    }
    edge_weights = {
        (source, target): weight
        for (source, target), weight in aggregate.edge_weights.items()
        if keep(source) and keep(target)
    }
    return AggregateGraph(
        aggregate.attributes, node_weights, edge_weights,
        distinct=aggregate.distinct,
    )


def slice_aggregate(
    aggregate: AggregateGraph, attribute: str, value: Any
) -> AggregateGraph:
    """Fix one attribute to a single value and drop it from the keys.

    The classic OLAP slice: ``slice(gender='f')`` of a
    (gender, publications) aggregate yields a publications-keyed
    aggregate of the female population only.
    """
    position = _position(aggregate, attribute)
    remaining = tuple(a for a in aggregate.attributes if a != attribute)

    def project(key: tuple[Any, ...]) -> tuple[Any, ...]:
        return tuple(v for i, v in enumerate(key) if i != position)

    node_weights: dict[tuple[Any, ...], int] = {}
    for key, weight in aggregate.node_weights.items():
        if key[position] != value:
            continue
        projected = project(key)
        node_weights[projected] = node_weights.get(projected, 0) + weight
    edge_weights: dict[tuple[tuple[Any, ...], tuple[Any, ...]], int] = {}
    for (source, target), weight in aggregate.edge_weights.items():
        if source[position] != value or target[position] != value:
            continue
        projected = (project(source), project(target))
        edge_weights[projected] = edge_weights.get(projected, 0) + weight
    return AggregateGraph(
        remaining, node_weights, edge_weights, distinct=aggregate.distinct
    )


def drill_across(
    left: AggregateGraph, right: AggregateGraph
) -> dict[tuple[Any, ...], tuple[int, int]]:
    """Compare two aggregates over the same attributes key by key.

    Returns ``key -> (left weight, right weight)`` for the union of
    their aggregate nodes — the "queries between aggregated graphs"
    operation GraphCube adds to OLAP, useful for before/after
    comparisons (e.g. the diversity-action scenario of Section 1).
    """
    if left.attributes != right.attributes:
        raise ValidationError(
            f"cannot drill across aggregates on {left.attributes!r} and "
            f"{right.attributes!r}"
        )
    keys = set(left.node_weights) | set(right.node_weights)
    return {
        key: (left.node_weight(key), right.node_weight(key)) for key in keys
    }
