"""The attribute-set (cuboid) lattice.

Section 4.3 frames full materialization as computing "all possible
combinations of dimensions" — the classic data-cube lattice whose
elements are attribute subsets, ordered by inclusion.  COUNT aggregation
is D-distributive, so any cuboid can be served from any materialized
*superset* cuboid by rolling up.  This module provides the lattice
bookkeeping the cube and the view-selection policy share.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from ..errors import UnknownLabelError

__all__ = [
    "canonical",
    "all_cuboids",
    "parents",
    "children",
    "supersets_of",
    "smallest_superset",
]

Cuboid = tuple[str, ...]


def canonical(attributes: Iterable[str], dimensions: Sequence[str]) -> Cuboid:
    """The canonical form of an attribute set: dimension order, deduped.

    Raises ``KeyError`` for attributes outside the cube's dimensions so
    a typo fails at the boundary rather than producing an empty cuboid.
    """
    wanted = set(attributes)
    unknown = wanted - set(dimensions)
    if unknown:
        raise UnknownLabelError(
            f"attributes {sorted(unknown)!r} are not cube dimensions "
            f"{list(dimensions)!r}"
        )
    return tuple(d for d in dimensions if d in wanted)


def all_cuboids(dimensions: Sequence[str]) -> list[Cuboid]:
    """Every non-empty attribute subset, most aggregated first.

    The apex (all dimensions) comes last; single-attribute cuboids come
    first.  2^n - 1 entries, so keep ``n`` modest (the paper's datasets
    have 2 and 4 dimensions).
    """
    cuboids: list[Cuboid] = []
    for size in range(1, len(dimensions) + 1):
        for combo in itertools.combinations(dimensions, size):
            cuboids.append(combo)
    return cuboids


def parents(cuboid: Cuboid, dimensions: Sequence[str]) -> list[Cuboid]:
    """Cuboids one attribute *larger* (the drill-down targets)."""
    present = set(cuboid)
    result = []
    for dim in dimensions:
        if dim not in present:
            result.append(canonical(present | {dim}, dimensions))
    return result


def children(cuboid: Cuboid) -> list[Cuboid]:
    """Cuboids one attribute *smaller* (the roll-up targets)."""
    if len(cuboid) <= 1:
        return []
    return [
        tuple(a for a in cuboid if a != removed) for removed in cuboid
    ]


def supersets_of(cuboid: Cuboid, candidates: Iterable[Cuboid]) -> list[Cuboid]:
    """Candidates that contain ``cuboid`` (and so can serve it)."""
    wanted = set(cuboid)
    return [c for c in candidates if wanted <= set(c)]


def smallest_superset(
    cuboid: Cuboid,
    candidates: Iterable[Cuboid],
    size_of: dict[Cuboid, float] | None = None,
) -> Cuboid | None:
    """The cheapest materialized cuboid that can serve ``cuboid``.

    With ``size_of`` given, cheapest means smallest estimated size;
    otherwise, fewest attributes.  Returns ``None`` when no candidate
    qualifies.
    """
    options = supersets_of(cuboid, candidates)
    if not options:
        return None
    if size_of is not None:
        return min(options, key=lambda c: (size_of.get(c, float("inf")), len(c)))
    return min(options, key=len)
