"""Greedy materialized-view selection over the cuboid lattice.

Section 4.3 opens with the observation that materializing *every*
aggregation is "quite unrealistic as it requires excessive storage
space" and proposes partial materialization.  This module implements the
classic greedy view-selection policy (Harinarayan-Rajaraman-Ullman) for
choosing *which* cuboids to materialize under a budget: each candidate
view's benefit is the total query-cost reduction it brings to every
cuboid it can serve, and views are picked greedily until the budget is
exhausted.

Cuboid sizes are estimated from the actual attribute domains of the
graph (product of per-attribute distinct-value counts, capped by the
number of entities), so the policy adapts to skew like MovieLens's
21-value occupation dimension.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core import TemporalGraph
from .lattice import Cuboid, all_cuboids, supersets_of
from ..errors import ValidationError

__all__ = ["estimate_cuboid_sizes", "greedy_view_selection", "ViewSelection"]


def estimate_cuboid_sizes(
    graph: TemporalGraph, dimensions: Sequence[str]
) -> dict[Cuboid, float]:
    """Estimated aggregate-node counts for every cuboid.

    The size of a cuboid is min(product of its attributes' distinct
    value counts, number of nodes) — the standard independence
    estimate, capped because an aggregate cannot have more groups than
    entities.
    """
    domain_sizes: dict[str, int] = {}
    for name in dimensions:
        if graph.is_static(name):
            values = {
                v for v in graph.static_attrs.column(name) if v is not None
            }
        else:
            values = {
                v
                for v in graph.varying_attrs[name].values.ravel()
                if v is not None
            }
        domain_sizes[name] = max(1, len(values))
    sizes: dict[Cuboid, float] = {}
    for cuboid in all_cuboids(dimensions):
        product = 1.0
        for name in cuboid:
            product *= domain_sizes[name]
        sizes[cuboid] = min(product, float(graph.n_nodes))
    return sizes


@dataclass(frozen=True)
class ViewSelection:
    """The outcome of a greedy selection run."""

    selected: tuple[Cuboid, ...]
    total_benefit: float
    query_costs: dict[Cuboid, float]

    def serves(self, cuboid: Cuboid) -> Cuboid | None:
        """The cheapest selected view able to serve a cuboid, if any."""
        options = supersets_of(cuboid, self.selected)
        if not options:
            return None
        return min(options, key=lambda c: self.query_costs[c])


def greedy_view_selection(
    graph: TemporalGraph,
    dimensions: Sequence[str],
    budget: int,
    always_include_apex: bool = True,
) -> ViewSelection:
    """Choose up to ``budget`` cuboids to materialize.

    The apex cuboid (all dimensions) is included first by default — it
    can serve every query, bounding worst-case cost — then views are
    added greedily by total benefit: for each cuboid ``q``, its current
    cost is the size of the smallest selected superset (or the base
    graph size if none); materializing view ``v`` lowers the cost of
    every ``q ⊆ v`` to ``size(v)`` when that is an improvement.
    """
    if budget < 1:
        raise ValidationError("budget must allow at least one view")
    sizes = estimate_cuboid_sizes(graph, dimensions)
    lattice = all_cuboids(dimensions)
    base_cost = float(graph.n_nodes) + float(graph.n_edges)

    selected: list[Cuboid] = []
    costs: dict[Cuboid, float] = {q: base_cost for q in lattice}

    def benefit(view: Cuboid) -> float:
        gain = 0.0
        view_size = sizes[view]
        wanted = set(view)
        for q in lattice:
            if set(q) <= wanted and costs[q] > view_size:
                gain += costs[q] - view_size
        return gain

    def select(view: Cuboid) -> float:
        gain = benefit(view)
        selected.append(view)
        view_size = sizes[view]
        wanted = set(view)
        for q in lattice:
            if set(q) <= wanted and costs[q] > view_size:
                costs[q] = view_size
        return gain

    total = 0.0
    apex = tuple(dimensions)
    if always_include_apex and budget >= 1:
        total += select(apex)
    while len(selected) < budget:
        remaining = [v for v in lattice if v not in selected]
        if not remaining:
            break
        best = max(remaining, key=benefit)
        if benefit(best) <= 0:
            break
        total += select(best)
    return ViewSelection(
        selected=tuple(selected), total_benefit=total, query_costs=costs
    )
