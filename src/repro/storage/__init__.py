"""Pluggable columnar storage substrate (ROADMAP item 2).

``repro.storage`` separates GraphTempo's logical graph model from its
physical layout.  The :class:`GraphStorageBackend` contract defines the
four primitives every reader needs (presence reductions, time slicing,
attribute columns, adjacency scans) plus a lossless ``to_frames``
round-trip; two implementations ship:

* :class:`DenseBackend` — the existing :class:`~repro.frames.LabeledFrame`
  arrays, wrapped without copies (bit-exact with the pre-substrate code
  by construction);
* :class:`ColumnarBackend` — bit-packed presence (``np.packbits``),
  time-sorted event CSR indices, factorized attribute codes, CSR-style
  adjacency, and optional ``np.memmap`` on-disk persistence.

Select a backend per graph (``TemporalGraph(storage="columnar")``), per
session (``GraphTempoSession(storage=...)``) or process-wide via the
``REPRO_STORAGE_BACKEND`` environment variable.  Registering a new
backend (``@register_backend``) automatically subjects it to the
conformance suite in ``tests/test_storage_conformance.py`` and the
``backend-storage`` fuzz law — see ``docs/storage.md``.
"""

from __future__ import annotations

from .base import (
    ENV_BACKEND,
    GraphStorageBackend,
    StorageFrames,
    backend_names,
    frames_of,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from .columnar import ColumnarBackend
from .dense import DenseBackend

__all__ = [
    "ENV_BACKEND",
    "ColumnarBackend",
    "DenseBackend",
    "GraphStorageBackend",
    "StorageFrames",
    "backend_names",
    "frames_of",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]
