"""The dense backend: the existing ``LabeledFrame`` path, unchanged.

This backend *is* the Section-4 layout — it wraps the graph's frames
without copying and delegates every primitive to the frame methods the
operators have always used, so it is bit-exact with the pre-substrate
behavior by construction.  It exists to anchor the conformance suite:
every other backend is measured against this one.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence
from typing import Any, ClassVar

import numpy as np

from ..errors import LabelError, StorageError
from .base import GraphStorageBackend, StorageFrames, register_backend

__all__ = ["DenseBackend"]


@register_backend
class DenseBackend(GraphStorageBackend):
    """Dense row-major presence matrices and object attribute arrays."""

    name: ClassVar[str] = "dense"

    def __init__(self, frames: StorageFrames) -> None:
        self._frames = frames
        self._node_index = {
            label: row for row, label in enumerate(frames.node_presence.row_labels)
        }

    # ------------------------------------------------------------------
    # Construction / round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_frames(cls, frames: StorageFrames) -> "DenseBackend":
        return cls(frames)

    def to_frames(self) -> StorageFrames:
        frames = self._frames
        return StorageFrames(
            times=frames.times,
            node_presence=frames.node_presence,
            edge_presence=frames.edge_presence,
            static_attrs=frames.static_attrs,
            varying_attrs=dict(frames.varying_attrs),
            edge_attrs=frames.edge_attrs,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def times(self) -> tuple[Hashable, ...]:
        return self._frames.times

    @property
    def node_labels(self) -> tuple[Hashable, ...]:
        return self._frames.node_presence.row_labels

    @property
    def edge_labels(self) -> tuple[Hashable, ...]:
        return self._frames.edge_presence.row_labels

    # ------------------------------------------------------------------
    # Physical primitives
    # ------------------------------------------------------------------

    def _presence_frame(self, entity: str) -> Any:
        if entity == "nodes":
            return self._frames.node_presence
        if entity == "edges":
            return self._frames.edge_presence
        raise StorageError(
            f"unknown entity {entity!r}; expected 'nodes' or 'edges'"
        )

    def presence_mask(
        self,
        entity: str,
        times: Sequence[Hashable] | None = None,
        mode: str = "any",
    ) -> np.ndarray:
        self._check_mode(mode)
        frame = self._presence_frame(entity)
        if mode == "any":
            return frame.any_mask(times)
        if mode == "all":
            return frame.all_mask(times)
        return frame.none_mask(times)

    def presence_matrix(self, entity: str) -> np.ndarray:
        return self._presence_frame(entity).values.astype(bool)

    def slice_time(self, times: Sequence[Hashable]) -> "DenseBackend":
        frames = self._frames
        return DenseBackend(
            StorageFrames(
                times=tuple(times),
                node_presence=frames.node_presence.restrict_cols(times),
                edge_presence=frames.edge_presence.restrict_cols(times),
                static_attrs=frames.static_attrs,
                varying_attrs={
                    name: frame.restrict_cols(times)
                    for name, frame in frames.varying_attrs.items()
                },
                edge_attrs=frames.edge_attrs,
            )
        )

    def attribute_column(
        self, name: str, time: Hashable | None = None
    ) -> np.ndarray:
        frames = self._frames
        if name in frames.varying_attrs:
            if time is None:
                raise StorageError(
                    f"attribute {name!r} is time-varying; a time point is required"
                )
            return frames.varying_attrs[name].column(time)
        if frames.static_attrs.has_col(name):
            if time is not None:
                raise StorageError(
                    f"attribute {name!r} is static; time must be None"
                )
            return frames.static_attrs.column(name)
        raise LabelError(f"unknown attribute {name!r}")

    def adjacency_scan(self) -> Iterator[tuple[Any, int, int]]:
        index = self._node_index
        for edge in self._frames.edge_presence.row_labels:
            if isinstance(edge, tuple) and len(edge) == 2:
                yield edge, index.get(edge[0], -1), index.get(edge[1], -1)
            else:
                yield edge, -1, -1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        frames = self._frames
        total = int(frames.node_presence.values.nbytes)
        total += int(frames.edge_presence.values.nbytes)
        total += _object_array_nbytes(frames.static_attrs.values)
        for frame in frames.varying_attrs.values():
            total += _object_array_nbytes(frame.values)
        if frames.edge_attrs is not None:
            total += _object_array_nbytes(frames.edge_attrs.values)
        return total


def _object_array_nbytes(values: np.ndarray) -> int:
    """Array payload plus the boxed objects the cells point to.

    An ``object`` array's ``nbytes`` counts only the pointers; the boxed
    values dominate the resident footprint, so each *distinct* boxed
    object is counted once via ``sys.getsizeof`` — interning shared by
    the columnar pool is thereby credited to both layouts consistently.
    """
    import sys

    total = int(values.nbytes)
    if values.dtype == object:
        seen: set[int] = set()
        for value in values.ravel():
            if value is not None and id(value) not in seen:
                seen.add(id(value))
                total += sys.getsizeof(value)
    return total
