"""The compressed columnar backend (ROADMAP item 2).

Physical layout, per graph:

* **presence** — bit-packed boolean matrices (``np.packbits``, one bit
  per ``(entity, time)`` cell, 8x smaller than the dense ``uint8``
  arrays) *plus* a time-sorted event index in CSR form: ``time_indptr``
  (length ``T + 1``) delimits, inside the flat ``entity_idx`` array, the
  entities present at each time point.  Window reductions
  (:meth:`ColumnarBackend.presence_mask`) bincount the event slices of
  the window's columns — O(events in window), not O(entities x window) —
  and time slicing locates columns by binary search over the index;
* **adjacency** — per-edge source/target node rows resolved once into
  two integer arrays (``-1`` marks a dangling or malformed endpoint), so
  aggregation's dangling-edge scan and endpoint grouping never touch a
  Python dict;
* **attributes** — object values factorized into narrow integer code
  matrices (``int8``/``int16``/``int32``, the smallest the pool fits in)
  plus small per-column object pools (``-1`` encodes the absent cells of
  Table 2), replacing 8-byte pointers per cell with 1-4 byte codes;
* **persistence** — :meth:`ColumnarBackend.save` writes every numeric
  array as a ``.npy`` file; :meth:`ColumnarBackend.open` reloads them
  with ``mmap_mode="r"``, so graphs larger than RAM load lazily and the
  mapping is enforced read-only.  A memmapped backend pickles as its
  *path* and reopens on unpickle, so ``repro.parallel`` workers — forked
  or spawned — share the same pages instead of copying arrays (the
  GT007 fork-safety contract).

Every primitive is bit-exact with :class:`~repro.storage.dense.DenseBackend`;
the conformance suite (``tests/test_storage_conformance.py``) and the
``backend-storage`` fuzz law hold it to that.
"""

from __future__ import annotations

import pickle
from collections.abc import Hashable, Iterator, Sequence
from pathlib import Path
from typing import Any, ClassVar

import numpy as np

from ..errors import LabelError, StorageError
from ..frames import LabeledFrame
from .base import GraphStorageBackend, StorageFrames, register_backend
from .dense import _object_array_nbytes

__all__ = ["ColumnarBackend"]

#: Layout version stamped into saved directories; bumped on any change
#: to the file set or array meanings.
_LAYOUT_VERSION = 1


def _code_dtype(pool_size: int) -> type:
    """The narrowest signed dtype holding codes ``-1 .. pool_size - 1``."""
    if pool_size < 2**7:
        return np.int8
    if pool_size < 2**15:
        return np.int16
    return np.int32


def _encode_column(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factorize one object column/matrix into integer codes + a pool.

    ``None`` cells (the "-" of Table 2) become code ``-1``.  Codes are
    downcast to the narrowest signed dtype the pool fits in (a 4-8x
    footprint win over the 8-byte object pointers they replace).
    Unhashable values fall back to one pool slot per occurrence —
    correctness over compression.
    """
    flat = values.ravel()
    codes = np.empty(flat.shape[0], dtype=np.int32)
    pool: list[Any] = []
    code_of: dict[Any, int] = {}
    for i, value in enumerate(flat):
        if value is None:
            codes[i] = -1
            continue
        try:
            code = code_of.get(value)
        except TypeError:
            code = None
        if code is None:
            code = len(pool)
            pool.append(value)
            try:
                code_of[value] = code
            except TypeError:
                pass
        codes[i] = code
    pool_array = np.empty(len(pool), dtype=object)
    for i, value in enumerate(pool):
        pool_array[i] = value
    narrow = codes.astype(_code_dtype(len(pool)))
    return narrow.reshape(values.shape), pool_array


def _decode(codes: np.ndarray, pool: np.ndarray) -> np.ndarray:
    """The object array a code matrix + pool factorized from."""
    out = np.empty(codes.shape, dtype=object)
    mask = np.asarray(codes) >= 0
    if pool.shape[0]:
        out[mask] = pool[np.asarray(codes)[mask]]
    return out


def _event_index(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Time-sorted event CSR of a boolean presence matrix.

    Returns ``(time_indptr, entity_idx)``: entities present at time
    column ``t`` are ``entity_idx[time_indptr[t]:time_indptr[t + 1]]``.
    """
    n_times = matrix.shape[1]
    tcols, rows = np.nonzero(matrix.T)
    time_indptr = np.searchsorted(tcols, np.arange(n_times + 1))
    return time_indptr.astype(np.int64), rows.astype(np.int32)


def _pack(matrix: np.ndarray) -> np.ndarray:
    packed = np.packbits(matrix.astype(bool), axis=1)
    packed.flags.writeable = False
    return packed


def _freeze(array: np.ndarray) -> np.ndarray:
    if array.flags.writeable:
        array.flags.writeable = False
    return array


@register_backend
class ColumnarBackend(GraphStorageBackend):
    """Bit-packed, time-indexed, factorized columnar layout."""

    name: ClassVar[str] = "columnar"

    def __init__(
        self,
        times: tuple[Hashable, ...],
        node_labels: tuple[Hashable, ...],
        edge_labels: tuple[Hashable, ...],
        node_packed: np.ndarray,
        edge_packed: np.ndarray,
        node_index_arrays: tuple[np.ndarray, np.ndarray],
        edge_index_arrays: tuple[np.ndarray, np.ndarray],
        src_rows: np.ndarray,
        dst_rows: np.ndarray,
        static_names: tuple[str, ...],
        static_codes: np.ndarray,
        static_pools: tuple[np.ndarray, ...],
        varying_names: tuple[str, ...],
        varying_codes: dict[str, np.ndarray],
        varying_pools: dict[str, np.ndarray],
        edge_attr_names: tuple[str, ...] | None,
        edge_attr_codes: np.ndarray | None,
        edge_attr_pools: tuple[np.ndarray, ...],
        path: str | None = None,
        mmap: bool = False,
    ) -> None:
        self._times = times
        self._node_labels = node_labels
        self._edge_labels = edge_labels
        self._time_index = {t: i for i, t in enumerate(times)}
        self._node_index = {n: i for i, n in enumerate(node_labels)}
        self._node_packed = _freeze(node_packed)
        self._edge_packed = _freeze(edge_packed)
        self._node_indptr, self._node_idx = (
            _freeze(node_index_arrays[0]),
            _freeze(node_index_arrays[1]),
        )
        self._edge_indptr, self._edge_idx = (
            _freeze(edge_index_arrays[0]),
            _freeze(edge_index_arrays[1]),
        )
        self._src_rows = _freeze(src_rows)
        self._dst_rows = _freeze(dst_rows)
        self._static_names = static_names
        self._static_codes = _freeze(static_codes)
        self._static_pools = static_pools
        self._varying_names = varying_names
        self._varying_codes = {
            name: _freeze(codes) for name, codes in varying_codes.items()
        }
        self._varying_pools = dict(varying_pools)
        self._edge_attr_names = edge_attr_names
        self._edge_attr_codes = (
            _freeze(edge_attr_codes) if edge_attr_codes is not None else None
        )
        self._edge_attr_pools = edge_attr_pools
        #: Directory this backend was opened from (memmapped backends
        #: pickle as their path and reopen, so workers share pages).
        self._path = path
        self._mmap = mmap

    # ------------------------------------------------------------------
    # Construction / round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_frames(cls, frames: StorageFrames) -> "ColumnarBackend":
        node_bool = frames.node_presence.values.astype(bool)
        edge_bool = frames.edge_presence.values.astype(bool)
        node_labels = frames.node_presence.row_labels
        edge_labels = frames.edge_presence.row_labels

        node_index = {n: i for i, n in enumerate(node_labels)}
        src = np.empty(len(edge_labels), dtype=np.int32)
        dst = np.empty(len(edge_labels), dtype=np.int32)
        for row, edge in enumerate(edge_labels):
            if isinstance(edge, tuple) and len(edge) == 2:
                src[row] = node_index.get(edge[0], -1)
                dst[row] = node_index.get(edge[1], -1)
            else:
                src[row] = dst[row] = -1

        static_names = tuple(str(c) for c in frames.static_attrs.col_labels)
        static_values = frames.static_attrs.values
        static_codes = np.empty(
            (len(node_labels), len(static_names)), dtype=np.int32
        )
        static_pools: list[np.ndarray] = []
        for col in range(len(static_names)):
            codes, pool = _encode_column(static_values[:, col])
            static_codes[:, col] = codes
            static_pools.append(pool)

        varying_codes: dict[str, np.ndarray] = {}
        varying_pools: dict[str, np.ndarray] = {}
        for vname, frame in frames.varying_attrs.items():
            codes, pool = _encode_column(frame.values)
            varying_codes[vname] = codes
            varying_pools[vname] = pool

        edge_attr_names: tuple[str, ...] | None = None
        edge_attr_codes: np.ndarray | None = None
        edge_attr_pools: list[np.ndarray] = []
        if frames.edge_attrs is not None:
            edge_attr_names = tuple(
                str(c) for c in frames.edge_attrs.col_labels
            )
            edge_attr_codes = np.empty(
                (len(edge_labels), len(edge_attr_names)), dtype=np.int32
            )
            for col in range(len(edge_attr_names)):
                codes, pool = _encode_column(frames.edge_attrs.values[:, col])
                edge_attr_codes[:, col] = codes
                edge_attr_pools.append(pool)

        return cls(
            times=frames.times,
            node_labels=node_labels,
            edge_labels=edge_labels,
            node_packed=_pack(node_bool),
            edge_packed=_pack(edge_bool),
            node_index_arrays=_event_index(node_bool),
            edge_index_arrays=_event_index(edge_bool),
            src_rows=src,
            dst_rows=dst,
            static_names=static_names,
            static_codes=static_codes,
            static_pools=tuple(static_pools),
            varying_names=tuple(varying_codes),
            varying_codes=varying_codes,
            varying_pools=varying_pools,
            edge_attr_names=edge_attr_names,
            edge_attr_codes=edge_attr_codes,
            edge_attr_pools=tuple(edge_attr_pools),
        )

    def to_frames(self) -> StorageFrames:
        times = self._times
        node_presence = LabeledFrame(
            self._node_labels, times, self.presence_matrix("nodes").astype(np.uint8)
        )
        edge_presence = LabeledFrame(
            self._edge_labels, times, self.presence_matrix("edges").astype(np.uint8)
        )
        static_values = np.empty(
            (len(self._node_labels), len(self._static_names)), dtype=object
        )
        for col, pool in enumerate(self._static_pools):
            static_values[:, col] = _decode(self._static_codes[:, col], pool)
        static_attrs = LabeledFrame(
            self._node_labels, self._static_names, static_values
        )
        varying_attrs = {
            name: LabeledFrame(
                self._node_labels,
                times,
                _decode(self._varying_codes[name], self._varying_pools[name]),
            )
            for name in self._varying_names
        }
        edge_attrs: LabeledFrame | None = None
        if self._edge_attr_names is not None:
            assert self._edge_attr_codes is not None
            attr_values = np.empty(
                (len(self._edge_labels), len(self._edge_attr_names)),
                dtype=object,
            )
            for col, pool in enumerate(self._edge_attr_pools):
                attr_values[:, col] = _decode(
                    self._edge_attr_codes[:, col], pool
                )
            edge_attrs = LabeledFrame(
                self._edge_labels, self._edge_attr_names, attr_values
            )
        return StorageFrames(
            times=times,
            node_presence=node_presence,
            edge_presence=edge_presence,
            static_attrs=static_attrs,
            varying_attrs=varying_attrs,
            edge_attrs=edge_attrs,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def times(self) -> tuple[Hashable, ...]:
        return self._times

    @property
    def node_labels(self) -> tuple[Hashable, ...]:
        return self._node_labels

    @property
    def edge_labels(self) -> tuple[Hashable, ...]:
        return self._edge_labels

    @property
    def path(self) -> str | None:
        """Directory this backend is persisted at (``None`` = in-RAM)."""
        return self._path

    @property
    def is_memmapped(self) -> bool:
        return self._mmap

    # ------------------------------------------------------------------
    # Physical primitives
    # ------------------------------------------------------------------

    def _time_position(self, label: Hashable) -> int:
        try:
            return self._time_index[label]
        except KeyError:
            raise LabelError(f"unknown column label: {label!r}") from None

    def _entity_arrays(
        self, entity: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        if entity == "nodes":
            return (
                self._node_packed,
                self._node_indptr,
                self._node_idx,
                len(self._node_labels),
            )
        if entity == "edges":
            return (
                self._edge_packed,
                self._edge_indptr,
                self._edge_idx,
                len(self._edge_labels),
            )
        raise StorageError(
            f"unknown entity {entity!r}; expected 'nodes' or 'edges'"
        )

    def presence_mask(
        self,
        entity: str,
        times: Sequence[Hashable] | None = None,
        mode: str = "any",
    ) -> np.ndarray:
        self._check_mode(mode)
        _, indptr, idx, n = self._entity_arrays(entity)
        if times is None:
            positions: Sequence[int] = range(len(self._times))
        else:
            positions = [self._time_position(t) for t in times]
        # Duplicate window labels reduce identically to their set under
        # any/all/none, matching the dense elementwise semantics.
        unique = sorted(set(positions))
        if not unique:
            if mode == "any":
                return np.zeros(n, dtype=bool)
            return np.ones(n, dtype=bool)
        parts = [idx[indptr[p] : indptr[p + 1]] for p in unique]
        events = np.concatenate(parts) if len(parts) > 1 else parts[0]
        counts = np.bincount(events, minlength=n)
        if mode == "all":
            return counts == len(unique)
        any_mask = counts > 0
        return any_mask if mode == "any" else ~any_mask

    def presence_matrix(self, entity: str) -> np.ndarray:
        packed, _, _, n = self._entity_arrays(entity)
        n_times = len(self._times)
        if n == 0 or n_times == 0:
            return np.zeros((n, n_times), dtype=bool)
        return np.unpackbits(
            np.asarray(packed), axis=1, count=n_times
        ).astype(bool)

    def slice_time(self, times: Sequence[Hashable]) -> "ColumnarBackend":
        positions = [self._time_position(t) for t in times]
        node_bool = self.presence_matrix("nodes")[:, positions]
        edge_bool = self.presence_matrix("edges")[:, positions]
        varying_codes = {
            name: np.ascontiguousarray(
                np.asarray(self._varying_codes[name])[:, positions]
            )
            for name in self._varying_names
        }
        return ColumnarBackend(
            times=tuple(times),
            node_labels=self._node_labels,
            edge_labels=self._edge_labels,
            node_packed=_pack(node_bool),
            edge_packed=_pack(edge_bool),
            node_index_arrays=_event_index(node_bool),
            edge_index_arrays=_event_index(edge_bool),
            src_rows=np.asarray(self._src_rows).copy(),
            dst_rows=np.asarray(self._dst_rows).copy(),
            static_names=self._static_names,
            static_codes=np.asarray(self._static_codes).copy(),
            static_pools=self._static_pools,
            varying_names=self._varying_names,
            varying_codes=varying_codes,
            varying_pools=dict(self._varying_pools),
            edge_attr_names=self._edge_attr_names,
            edge_attr_codes=(
                np.asarray(self._edge_attr_codes).copy()
                if self._edge_attr_codes is not None
                else None
            ),
            edge_attr_pools=self._edge_attr_pools,
        )

    def attribute_column(
        self, name: str, time: Hashable | None = None
    ) -> np.ndarray:
        if name in self._varying_codes:
            if time is None:
                raise StorageError(
                    f"attribute {name!r} is time-varying; a time point is required"
                )
            pos = self._time_position(time)
            return _decode(
                np.asarray(self._varying_codes[name])[:, pos],
                self._varying_pools[name],
            )
        if name in self._static_names:
            if time is not None:
                raise StorageError(
                    f"attribute {name!r} is static; time must be None"
                )
            col = self._static_names.index(name)
            return _decode(
                np.asarray(self._static_codes)[:, col], self._static_pools[col]
            )
        raise LabelError(f"unknown attribute {name!r}")

    def adjacency_scan(self) -> Iterator[tuple[Any, int, int]]:
        src = np.asarray(self._src_rows)
        dst = np.asarray(self._dst_rows)
        for row, edge in enumerate(self._edge_labels):
            yield edge, int(src[row]), int(dst[row])

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        arrays = [
            self._node_packed,
            self._edge_packed,
            self._node_indptr,
            self._node_idx,
            self._edge_indptr,
            self._edge_idx,
            self._src_rows,
            self._dst_rows,
            self._static_codes,
            *self._varying_codes.values(),
        ]
        if self._edge_attr_codes is not None:
            arrays.append(self._edge_attr_codes)
        total = sum(int(np.asarray(a).nbytes) for a in arrays)
        for pool in (
            *self._static_pools,
            *self._varying_pools.values(),
            *self._edge_attr_pools,
        ):
            total += _object_array_nbytes(pool)
        return total

    # ------------------------------------------------------------------
    # Persistence (np.memmap)
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist the layout into a directory; returns the directory.

        Numeric arrays become individual ``.npy`` files (so
        :meth:`open` can memory-map each one); labels, names and the
        small object pools travel in a pickled sidecar.
        """
        target = Path(path)
        target.mkdir(parents=True, exist_ok=True)
        numeric = self._numeric_arrays()
        for fname, array in numeric.items():
            np.save(target / f"{fname}.npy", np.asarray(array))
        meta = {
            "layout_version": _LAYOUT_VERSION,
            "times": self._times,
            "node_labels": self._node_labels,
            "edge_labels": self._edge_labels,
            "static_names": self._static_names,
            "static_pools": self._static_pools,
            "varying_names": self._varying_names,
            "varying_pools": self._varying_pools,
            "edge_attr_names": self._edge_attr_names,
            "edge_attr_pools": self._edge_attr_pools,
            "has_edge_attr_codes": self._edge_attr_codes is not None,
            "numeric_files": tuple(numeric),
        }
        with (target / "meta.pkl").open("wb") as handle:
            pickle.dump(meta, handle)
        return target

    @classmethod
    def open(cls, path: str | Path, mmap: bool = True) -> "ColumnarBackend":
        """Reopen a saved layout, memory-mapping the numeric arrays.

        With ``mmap=True`` every numeric array is a read-only
        ``np.memmap`` view — pages load lazily and are shared between
        processes mapping the same files; writes raise.
        """
        source = Path(path)
        try:
            with (source / "meta.pkl").open("rb") as handle:
                meta = pickle.load(handle)
        except (OSError, pickle.UnpicklingError) as exc:
            raise StorageError(
                f"cannot open columnar graph at {source}: {exc}"
            ) from None
        if meta.get("layout_version") != _LAYOUT_VERSION:
            raise StorageError(
                f"columnar layout at {source} has version "
                f"{meta.get('layout_version')!r}; this build reads "
                f"{_LAYOUT_VERSION}"
            )
        mode = "r" if mmap else None
        arrays: dict[str, np.ndarray] = {}
        for fname in meta["numeric_files"]:
            try:
                arrays[fname] = np.load(source / f"{fname}.npy", mmap_mode=mode)
            except (OSError, ValueError) as exc:
                raise StorageError(
                    f"cannot load array {fname!r} at {source}: {exc}"
                ) from None
        varying_codes = {
            name: arrays[f"varying_codes_{i}"]
            for i, name in enumerate(meta["varying_names"])
        }
        return cls(
            times=meta["times"],
            node_labels=meta["node_labels"],
            edge_labels=meta["edge_labels"],
            node_packed=arrays["node_packed"],
            edge_packed=arrays["edge_packed"],
            node_index_arrays=(arrays["node_indptr"], arrays["node_idx"]),
            edge_index_arrays=(arrays["edge_indptr"], arrays["edge_idx"]),
            src_rows=arrays["src_rows"],
            dst_rows=arrays["dst_rows"],
            static_names=meta["static_names"],
            static_codes=arrays["static_codes"],
            static_pools=meta["static_pools"],
            varying_names=meta["varying_names"],
            varying_codes=varying_codes,
            varying_pools=meta["varying_pools"],
            edge_attr_names=meta["edge_attr_names"],
            edge_attr_codes=(
                arrays["edge_attr_codes"]
                if meta["has_edge_attr_codes"]
                else None
            ),
            edge_attr_pools=meta["edge_attr_pools"],
            path=str(source),
            mmap=mmap,
        )

    def _numeric_arrays(self) -> dict[str, np.ndarray]:
        numeric: dict[str, np.ndarray] = {
            "node_packed": self._node_packed,
            "edge_packed": self._edge_packed,
            "node_indptr": self._node_indptr,
            "node_idx": self._node_idx,
            "edge_indptr": self._edge_indptr,
            "edge_idx": self._edge_idx,
            "src_rows": self._src_rows,
            "dst_rows": self._dst_rows,
            "static_codes": self._static_codes,
        }
        for i, name in enumerate(self._varying_names):
            numeric[f"varying_codes_{i}"] = self._varying_codes[name]
        if self._edge_attr_codes is not None:
            numeric["edge_attr_codes"] = self._edge_attr_codes
        return numeric

    # ------------------------------------------------------------------
    # Pickling (fork/spawn worker transport, GT007)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        if self._path is not None:
            # A persisted backend ships as its path: the receiving
            # process maps the same files instead of copying arrays.
            return {"path": self._path, "mmap": self._mmap}
        state = dict(self.__dict__)
        # Materialize any views so the pickle is self-contained.
        state["_node_packed"] = np.asarray(self._node_packed).copy()
        state["_edge_packed"] = np.asarray(self._edge_packed).copy()
        return {"state": state}

    def __setstate__(self, payload: dict[str, Any]) -> None:
        if "path" in payload:
            reopened = type(self).open(payload["path"], mmap=payload["mmap"])
            self.__dict__.update(reopened.__dict__)
            return
        self.__dict__.update(payload["state"])
